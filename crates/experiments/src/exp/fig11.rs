//! Fig. 11: size of the private part vs number of private matrices.
//!
//! PuPPIeS' private part grows linearly (88 bytes per 11-bit 64-entry
//! matrix); P3's private part is a whole coefficient image per photo and
//! does not depend on the matrix count — flat lines at dataset-dependent
//! heights.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;
use puppies_jpeg::{CoeffImage, EncodeOptions};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 11: private-part size vs number of private matrices");
    let p3_sizes: Vec<(&str, Stats)> = [super::pascal(ctx), super::inria(ctx)]
        .into_iter()
        .map(|profile| {
            let images = load(profile, ctx.seed);
            let sizes = par_map(&images, |li| {
                let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
                puppies_p3::P3Split::of(&coeff)
                    .private_bytes(&EncodeOptions::default())
                    .expect("encode") as f64
            });
            (profile.name(), Stats::of(&sizes))
        })
        .collect();

    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "#matrices", "PuPPIeS (bytes)", "P3-PASCAL", "P3-INRIA"
    );
    for n in (2..=32).step_by(4) {
        // Each matrix is ceil(64*11/8) = 88 bytes (§VI-A's 11-bit entries).
        let puppies = n * 88;
        println!(
            "{:>10} {:>16} {:>16.0} {:>16.0}",
            n, puppies, p3_sizes[0].1.mean, p3_sizes[1].1.mean
        );
    }
    println!(
        "\nP3 means over {}/{} images; paper: PuPPIeS smaller than P3-PASCAL below ~26 \
         matrices and >93% smaller than P3-INRIA throughout",
        p3_sizes[0].1.n, p3_sizes[1].1.n
    );
}
