//! One module per reproduced table/figure; see the crate docs and
//! DESIGN.md's experiment index.

pub mod ablation_huffman;
pub mod ablation_nb;
pub mod bruteforce;
pub mod detect_time;
pub mod fig02;
pub mod fig04;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::{Ctx, Scale};
use puppies_datasets::DatasetProfile;

/// PASCAL profile at the context's scale.
pub fn pascal(ctx: &Ctx) -> DatasetProfile {
    DatasetProfile::pascal().with_count(ctx.scale.count(8, 48, 400))
}

/// INRIA profile at the context's scale.
pub fn inria(ctx: &Ctx) -> DatasetProfile {
    let p = DatasetProfile::inria().with_count(ctx.scale.count(2, 6, 40));
    if ctx.scale == Scale::Quick {
        p.with_resolution(612, 816)
    } else {
        p
    }
}

/// Caltech-faces profile at the context's scale.
pub fn caltech(ctx: &Ctx) -> DatasetProfile {
    DatasetProfile::caltech().with_count(ctx.scale.count(8, 24, 200))
}

/// FERET profile at the context's scale.
pub fn feret(ctx: &Ctx) -> DatasetProfile {
    DatasetProfile::feret().with_count(ctx.scale.count(24, 96, 400))
}

/// The JPEG quality every experiment encodes at. Public datasets ship
/// JPEGs saved near quality 90–96, and the paper's "normalized size"
/// divides by those native files; 90 keeps our denominators comparable.
pub const QUALITY: u8 = 95;
