//! Table II: normalized size of perturbed images (PASCAL, whole-image
//! worst case, medium privacy).
//!
//! Paper's numbers: PuPPIeS-B ≈ 10.45× mean (default Huffman tables),
//! PuPPIeS-C ≈ 1.46×, PuPPIeS-Z ≈ 1.23×.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;
use puppies_core::{protect_coeff, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_jpeg::{CoeffImage, EncodeOptions, HuffmanMode};

/// Normalized perturbed-image sizes for one scheme/mode over a dataset.
pub fn ratios(
    images: &[puppies_datasets::LabeledImage],
    scheme: Scheme,
    huffman: HuffmanMode,
    level: PrivacyLevel,
) -> Vec<f64> {
    let key = OwnerKey::from_seed([2u8; 32]);
    par_map(images, |li| {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let mut enc_opts = EncodeOptions::default();
        enc_opts.huffman = huffman;
        let original = coeff.encode(&enc_opts).expect("encode").len();
        let mut perturbed = coeff;
        let whole = puppies_image::Rect::new(0, 0, li.image.width(), li.image.height());
        let opts = ProtectOptions::new(scheme, level)
            .with_quality(super::QUALITY)
            .with_image_id(li.id);
        protect_coeff(&mut perturbed, &[whole], &key, &opts).expect("perturb");
        let size = perturbed.encode(&enc_opts).expect("encode").len();
        size as f64 / original as f64
    })
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Table II: normalized perturbed size, PASCAL, whole image, medium privacy");
    let images = load(super::pascal(ctx), ctx.seed);
    println!("({} images)", images.len());
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "mean", "median", "std", "min", "max"
    );
    let rows = [
        (
            "PuPPIeS-B (default tables)",
            Scheme::Base,
            HuffmanMode::Standard,
        ),
        (
            "PuPPIeS-B (optimized tables)",
            Scheme::Base,
            HuffmanMode::Optimized,
        ),
        (
            "PuPPIeS-C (optimized tables)",
            Scheme::Compression,
            HuffmanMode::Optimized,
        ),
        (
            "PuPPIeS-Z (optimized tables)",
            Scheme::Zero,
            HuffmanMode::Optimized,
        ),
    ];
    for (name, scheme, huffman) in rows {
        let r = ratios(&images, scheme, huffman, PrivacyLevel::Medium);
        println!("{:<34} {}", name, Stats::of(&r).row(2));
    }
    println!("\npaper: B 10.45/9.69, C 1.46/1.41, Z 1.23/1.22 (mean/median)");
}
