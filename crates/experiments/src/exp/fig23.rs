//! Fig. 23: the three signal-correlation attacks on the "Hello World!"
//! demonstration image, scored by the user-study proxy.

use crate::util::header;
use crate::Ctx;
use puppies_attacks::{
    inpainting_attack, matrix_inference_attack, pca_attack, recognizability_verdict,
    CorrelationAttackReport,
};
use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::font::draw_text;
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 23: signal-correlation attacks on 'Hello World!'");
    // The paper's simplest possible setting: white background, black text.
    let mut img = RgbImage::filled(256, 96, Rgb::new(246, 246, 244));
    let text_rect = draw_text(&mut img, "HELLO WORLD!", 24, 36, 2, Rgb::new(12, 12, 16));
    let roi = text_rect.inflate_clamped(6, img.bounds());
    let key = OwnerKey::from_seed([23u8; 32]);
    let opts =
        ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium).with_quality(super::QUALITY);
    let protected = protect(&img, &[roi], &key, &opts).expect("protect");
    let perturbed_coeff = CoeffImage::decode(&protected.bytes).expect("decode");
    let perturbed = perturbed_coeff.to_rgb();
    let reference = CoeffImage::from_rgb(&img, opts.quality).to_rgb();
    let rois: Vec<Rect> = protected.params.rois.iter().map(|r| r.rect).collect();

    puppies_image::io::save_ppm(&reference, ctx.out_dir.join("fig23_original.ppm")).ok();
    puppies_image::io::save_ppm(&perturbed, ctx.out_dir.join("fig23_perturbed.ppm")).ok();

    let candidates: Vec<(&str, puppies_image::GrayImage)> = vec![
        (
            "guessed private matrix",
            matrix_inference_attack(&perturbed_coeff, &protected.params).to_gray(),
        ),
        (
            "feature correlation (inpaint)",
            inpainting_attack(&perturbed, &rois, 4).to_gray(),
        ),
        ("PCA reconstruction", {
            pca_attack(&perturbed.to_gray(), &rois, 8)
        }),
    ];

    println!(
        "{:<30} {:>10} {:>14} {:>12}",
        "attack", "PSNR dB", "recognizab.", "recognized?"
    );
    let ref_gray = reference.to_gray();
    // Score inside the protected region, where the secret lives.
    let aligned = protected.params.rois[0].rect;
    for (name, out) in &candidates {
        let o = ref_gray.crop(aligned).expect("crop");
        let r = out.crop(aligned).expect("crop");
        let report = CorrelationAttackReport::score(&o, &r);
        let verdict = recognizability_verdict(&o, &r);
        println!(
            "{:<30} {:>10.1} {:>14.3} {:>12}",
            name,
            report.psnr.min(99.0),
            report.recognizability,
            if verdict.recognized { "YES (!)" } else { "no" }
        );
        let file = format!(
            "fig23_{}.ppm",
            name.replace([' ', '(', ')'], "_").to_lowercase()
        );
        puppies_image::io::save_pgm(out, ctx.out_dir.join(file)).ok();
    }
    println!(
        "\npaper: 'all three methods cannot recover any of the perturbed \
         part'; MTurk participants saw 'nothing but mosaic'"
    );
}
