//! Ablation: Huffman-table re-optimization — the single mechanism that
//! separates PuPPIeS-B's 10× blow-up from PuPPIeS-C's 1.5× (§IV-B.3).

use crate::exp::table2::ratios;
use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_core::{PrivacyLevel, Scheme};
use puppies_jpeg::HuffmanMode;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Ablation: default vs per-image-optimized Huffman tables");
    let images = load(super::pascal(ctx), ctx.seed);
    println!("normalized perturbed size, PASCAL whole-image, medium privacy");
    println!(
        "{:<14} {:>18} {:>18} {:>10}",
        "scheme", "default tables", "optimized tables", "saving"
    );
    for scheme in [Scheme::Base, Scheme::Compression, Scheme::Zero] {
        let std = Stats::of(&ratios(
            &images,
            scheme,
            HuffmanMode::Standard,
            PrivacyLevel::Medium,
        ));
        let opt = Stats::of(&ratios(
            &images,
            scheme,
            HuffmanMode::Optimized,
            PrivacyLevel::Medium,
        ));
        println!(
            "{:<14} {:>18.2} {:>18.2} {:>9.0}%",
            scheme.name(),
            std.mean,
            opt.mean,
            100.0 * (1.0 - opt.mean / std.mean)
        );
    }
    println!(
        "\nexpected: the blow-up is mostly a coding-table mismatch — wild \
         perturbed coefficients no longer fit the default code assignment. \
         Range-limited perturbation (C) plus re-optimized tables recovers \
         most of the size; Z adds the zero-skipping on top."
    );
}
