//! Table V: encryption/decryption wall time with PuPPIeS-Z, whole-image
//! upper bound (paper: INRIA ≈ 198 ms mean, PASCAL ≈ 20.3 ms on a 2013
//! laptop — absolute numbers differ across machines; the dataset scaling
//! and order of magnitude are the reproduced shape).

use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_core::perturb::{perturb_roi, recover_roi, RoiKeys};
use puppies_core::{OwnerKey, PerturbProfile, PrivacyLevel, Scheme};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;
use std::time::Instant;

/// Per-image encryption+decryption times (ms) over a dataset, whole-image
/// ROI, PuPPIeS-Z at medium privacy. Only the perturbation itself is
/// timed (the paper's "the only operation is to add/subtract private
/// matrices").
pub fn times_ms(images: &[puppies_datasets::LabeledImage]) -> (Vec<f64>, Vec<f64>) {
    let key = OwnerKey::from_seed([6u8; 32]);
    let grant = key.grant_all();
    let profile = PerturbProfile::paper(Scheme::Zero, PrivacyLevel::Medium);
    let mut enc = Vec::with_capacity(images.len());
    let mut dec = Vec::with_capacity(images.len());
    for li in images {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let keys: Vec<RoiKeys> = (0..3)
            .map(|c| RoiKeys::from_grant(&grant, li.id, 0, c).expect("keys"))
            .collect();
        let whole = Rect::new(0, 0, coeff.width(), coeff.height());
        let mut work = coeff.clone();
        let t0 = Instant::now();
        let record = perturb_roi(&mut work, whole, &keys, &profile).expect("perturb");
        enc.push(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        recover_roi(&mut work, whole, &keys, &profile, &record.zind).expect("recover");
        dec.push(t1.elapsed().as_secs_f64() * 1e3);
        assert_eq!(work, coeff, "timing run must stay correct");
    }
    (enc, dec)
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Table V: PuPPIeS-Z encryption/decryption time, whole image (ms)");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset/op", "mean", "median", "std", "min", "max"
    );
    for profile in [super::inria(ctx), super::pascal(ctx)] {
        let images = load(profile, ctx.seed);
        let (enc, dec) = times_ms(&images);
        println!(
            "{:<18} {}",
            format!("{} encrypt", profile.name()),
            Stats::of(&enc).row(2)
        );
        println!(
            "{:<18} {}",
            format!("{} decrypt", profile.name()),
            Stats::of(&dec).row(2)
        );
    }
    println!("\npaper (laptop, 2013): INRIA mean 198 ms, PASCAL mean 20.3 ms");
}
