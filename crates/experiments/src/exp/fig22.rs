//! Fig. 22: the face-recognition attack — cumulative rank curve of the
//! true identity when probing an eigenface gallery with protected faces.

use crate::util::{header, load};
use crate::Ctx;
use puppies_attacks::recognition::{recognition_attack, RankCurve};
use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_jpeg::CoeffImage;
use puppies_vision::eigenfaces::EigenfaceGallery;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 22: cumulative face-recognition ratio vs rank");
    let images = load(super::feret(ctx), ctx.seed);
    // Split: first appearance of each identity goes to the gallery; later
    // appearances become probes.
    let mut seen = std::collections::HashSet::new();
    let mut gallery_faces = Vec::new();
    let mut probes = Vec::new();
    for li in &images {
        let face = li.truth.faces[0];
        let chip = |img: &puppies_image::RgbImage| {
            img.crop(face.intersect(img.bounds()))
                .expect("crop")
                .to_gray()
        };
        if seen.insert(li.identity) {
            gallery_faces.push((li.identity, chip(&li.image)));
        } else {
            probes.push((li, face));
        }
    }
    // Enroll a second jittered sample per identity when available.
    let mut extra = std::collections::HashSet::new();
    probes.retain(|(li, face)| {
        if extra.insert(li.identity) {
            gallery_faces.push((
                li.identity,
                li.image
                    .crop(face.intersect(li.image.bounds()))
                    .expect("crop")
                    .to_gray(),
            ));
            false
        } else {
            true
        }
    });
    println!(
        "gallery {} chips / {} identities, probes {}",
        gallery_faces.len(),
        seen.len(),
        probes.len()
    );
    let gallery = EigenfaceGallery::train(&gallery_faces, 24);

    let key = OwnerKey::from_seed([23u8; 32]);
    let max_rank = 50.min(seen.len());
    let mut clean_curve = RankCurve::new(max_rank);
    let mut z_curve = RankCurve::new(max_rank);
    let mut p3_curve = RankCurve::new(max_rank);
    for (li, face) in &probes {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let reference = coeff.to_rgb();
        let chip = |img: &puppies_image::RgbImage| {
            img.crop(face.intersect(img.bounds()))
                .expect("crop")
                .to_gray()
        };
        clean_curve.record(recognition_attack(&gallery, &chip(&reference), li.identity));

        // PuPPIeS-Z on the face region.
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium)
            .with_quality(super::QUALITY)
            .with_image_id(li.id);
        let protected = protect(&li.image, &[*face], &key, &opts).expect("protect");
        let perturbed = CoeffImage::decode(&protected.bytes)
            .expect("decode")
            .to_rgb();
        z_curve.record(recognition_attack(&gallery, &chip(&perturbed), li.identity));

        // P3 public part (whole image by design).
        let public = puppies_p3::P3Split::of(&coeff).public.to_rgb();
        p3_curve.record(recognition_attack(&gallery, &chip(&public), li.identity));
    }

    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "rank", "clean", "PuPPIeS-Z", "P3 public"
    );
    for k in [1usize, 5, 10, 25, max_rank] {
        if k > max_rank {
            continue;
        }
        println!(
            "{:>6} {:>10.3} {:>12.3} {:>12.3}",
            k,
            clean_curve.ratio_at(k),
            z_curve.ratio_at(k),
            p3_curve.ratio_at(k)
        );
    }
    println!(
        "\npaper: P3 public parts reach ~50% cumulative recognition by rank 50 \
         (DC-free images still leak identity); PuPPIeS stays ≤ ~5%"
    );
}
