//! Fig. 2: image retrieval with perturbed queries — the perturbed partial
//! image still finds the same top-10 results.
//!
//! Stand-in for Google Image Search: a CBIR index over the PASCAL corpus.
//! Each query image is protected on its ground-truth ROIs (background
//! stays clear) and both versions query the index; we report the overlap
//! of the two top-10 lists and whether the perturbed query still
//! self-retrieves.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_jpeg::CoeffImage;
use puppies_vision::retrieval::{result_overlap, RetrievalIndex};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 2: top-10 retrieval overlap, original vs perturbed query");
    let images = load(super::pascal(ctx), ctx.seed);
    let mut index = RetrievalIndex::new();
    for li in &images {
        index.insert(li.id, &li.image);
    }
    let key = OwnerKey::from_seed([22u8; 32]);
    // Query with every image that has at least one sensitive region.
    let queries: Vec<_> = images
        .iter()
        .filter(|li| !li.truth.all_regions().is_empty())
        .collect();
    let results = par_map(&queries, |li| {
        let rois = li.truth.all_regions();
        let opts = ProtectOptions::default()
            .with_quality(super::QUALITY)
            .with_image_id(li.id);
        let protected = protect(&li.image, &rois, &key, &opts).expect("protect");
        let perturbed = CoeffImage::decode(&protected.bytes)
            .expect("decode")
            .to_rgb();
        let top_orig = index.query(&li.image, 10);
        let top_pert = index.query(&perturbed, 10);
        let overlap = result_overlap(&top_orig, &top_pert);
        let self_hit = top_pert.contains(&li.id);
        let roi_frac = rois.iter().map(|r| r.area()).sum::<u64>() as f64
            / (li.image.width() as u64 * li.image.height() as u64) as f64;
        (overlap, self_hit, roi_frac)
    });
    let overlaps: Vec<f64> = results.iter().map(|r| r.0).collect();
    let self_hits = results.iter().filter(|r| r.1).count();
    let roi_frac: Vec<f64> = results.iter().map(|r| r.2).collect();
    println!("queries: {} (corpus {})", results.len(), images.len());
    println!(
        "mean ROI fraction of query images: {:.1}%",
        Stats::of(&roi_frac).mean * 100.0
    );
    println!(
        "top-10 overlap: {:<} (mean/median/std/min/max)",
        Stats::of(&overlaps).row(2)
    );
    println!(
        "perturbed query still retrieves itself in top-10: {}/{}",
        self_hits,
        results.len()
    );
    println!("\npaper: top-10 results 'both relevant and highly overlapped'");
}
