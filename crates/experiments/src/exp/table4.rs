//! Table IV: privacy levels, their `(mR, K)` parameters and secure bits.

use crate::util::header;
use crate::Ctx;
use puppies_core::{analysis, PrivacyLevel};

/// Runs the experiment.
pub fn run(_ctx: &Ctx) {
    header("Table IV: privacy levels and §VI-A secure-bit accounting");
    println!(
        "{:<8} {:>6} {:>4} {:>8} {:>10} {:>12} {:>8} {:>6}",
        "level", "mR", "K", "DC bits", "AC bits", "paper AC", "total", ">NIST"
    );
    for level in PrivacyLevel::TABLE_IV {
        let (m_r, k) = level.parameters();
        let sb = analysis::secure_bits(level);
        println!(
            "{:<8} {:>6} {:>4} {:>8} {:>10} {:>12} {:>8} {:>6}",
            level.name(),
            m_r,
            k,
            sb.dc_bits,
            sb.ac_bits,
            sb.paper_ac_bits
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            sb.total_bits,
            if sb.exceeds_nist() { "yes" } else { "NO" },
        );
    }
    println!(
        "\nAC bits are computed from a literal evaluation of Algorithm 3 \
         (Σ log2 Q'i over perturbed slots); the paper quotes 1/90/631, \
         which Algorithm 3 as printed does not produce — see EXPERIMENTS.md. \
         Either accounting clears 256 bits at every level."
    );
}
