//! Fig. 19: what lives where — byte accounting of the public and private
//! parts for one image under PuPPIeS vs P3.

use crate::util::{header, load};
use crate::Ctx;
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_jpeg::{CoeffImage, EncodeOptions};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 19: public/private split for one image");
    let li = load(super::pascal(ctx).with_count(1), ctx.seed).remove(0);
    let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
    let enc_opts = EncodeOptions::default();
    let original = coeff.encode(&enc_opts).expect("encode").len();

    // PuPPIeS on the ground-truth ROIs (fall back to a centered box).
    let rois = if li.truth.all_regions().is_empty() {
        vec![puppies_image::Rect::new(
            li.image.width() / 4,
            li.image.height() / 4,
            li.image.width() / 2,
            li.image.height() / 2,
        )]
    } else {
        li.truth.all_regions()
    };
    let key = OwnerKey::from_seed([19u8; 32]);
    let opts = ProtectOptions::default()
        .with_quality(super::QUALITY)
        .with_image_id(li.id);
    let protected = protect(&li.image, &rois, &key, &opts).expect("protect");
    let grant = key.grant_rois(
        li.id,
        &(0..protected.params.rois.len() as u16).collect::<Vec<_>>(),
    );

    let split = puppies_p3::P3Split::of(&coeff);
    let p3_pub = split.public_bytes(&enc_opts).expect("encode");
    let p3_priv = split.private_bytes(&enc_opts).expect("encode");

    println!(
        "original JPEG: {original} bytes; {} ROI region(s)",
        protected.params.rois.len()
    );
    println!("{:<28} {:>14} {:>14}", "", "public bytes", "private bytes");
    println!(
        "{:<28} {:>14} {:>14}",
        "PuPPIeS-Z",
        protected.public_len(),
        grant.private_part_bytes()
    );
    println!("{:<28} {:>14} {:>14}", "P3", p3_pub, p3_priv);
    println!(
        "\npaper: PuPPIeS shifts nearly all bytes to the cloud (private part \
         is just the matrices); P3's private part is a second image"
    );
}
