//! Fig. 15: perturbing a license plate with the scheme family — visual
//! hiding plus the size cost of each variant.

use crate::util::header;
use crate::Ctx;
use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::metrics::recognizability;
use puppies_jpeg::{CoeffImage, HuffmanMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 15: perturbing a license plate (PuPPIeS-N/B/C/Z)");
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x15);
    let (img, truth) = puppies_datasets::scene::street_with_plate(&mut rng, 320, 240);
    let plate = truth.texts[0];
    let reference = CoeffImage::from_rgb(&img, super::QUALITY);
    let original_len = reference
        .encode(&puppies_jpeg::EncodeOptions::default())
        .expect("encode")
        .len();
    puppies_image::io::save_ppm(&img, ctx.out_dir.join("fig15_original.ppm")).ok();

    println!("plate ROI: {plate:?}; original {original_len} bytes");
    println!(
        "{:<12} {:>12} {:>12} {:>16} {:>10}",
        "scheme", "bytes", "normalized", "ROI recogniz.", "hidden?"
    );
    let key = OwnerKey::from_seed([15u8; 32]);
    for (scheme, huffman) in [
        (Scheme::Naive, HuffmanMode::Optimized),
        (Scheme::Base, HuffmanMode::Standard),
        (Scheme::Compression, HuffmanMode::Optimized),
        (Scheme::Zero, HuffmanMode::Optimized),
    ] {
        let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium)
            .with_quality(super::QUALITY)
            .with_huffman(huffman);
        let protected = protect(&img, &[plate], &key, &opts).expect("protect");
        let perturbed = CoeffImage::decode(&protected.bytes)
            .expect("decode")
            .to_rgb();
        let aligned = plate.align_to(8, img.width(), img.height());
        let roi_orig = reference.to_rgb().crop(aligned).expect("crop").to_gray();
        let roi_pert = perturbed.crop(aligned).expect("crop").to_gray();
        let recog = recognizability(&roi_orig, &roi_pert);
        println!(
            "{:<12} {:>12} {:>12.3} {:>16.3} {:>10}",
            scheme.name(),
            protected.bytes.len(),
            protected.bytes.len() as f64 / original_len as f64,
            recog,
            if recog < puppies_attacks::RECOGNIZABILITY_THRESHOLD {
                "yes"
            } else {
                "NO"
            }
        );
        let name = format!("fig15_{}.ppm", scheme.name().replace(['-', ' '], "_"));
        puppies_image::io::save_ppm(&perturbed, ctx.out_dir.join(name)).ok();
    }
    println!("\nimages saved under {}", ctx.out_dir.display());
}
