//! Fig. 12: ROI detection and disjoint splitting on object scenes.
//!
//! Runs the face/text/objectness recommendation pipeline (§IV-A) on
//! PASCAL-style scenes, reports detector coverage of ground truth, and
//! saves annotated images for visual inspection.

use crate::util::{header, load};
use crate::Ctx;
use puppies_image::{draw, Rgb};
use puppies_vision::detect::{recommend_rois, DetectorKind, RecommendParams};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 12: detected ROIs and disjoint split");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(4, 8, 24)),
        ctx.seed,
    );
    let mut covered = 0usize;
    let mut total = 0usize;
    for (i, li) in images.iter().enumerate() {
        let rec = recommend_rois(&li.image, &RecommendParams::default());
        let faces = rec
            .detections
            .iter()
            .filter(|d| d.kind == DetectorKind::Face)
            .count();
        let texts = rec
            .detections
            .iter()
            .filter(|d| d.kind == DetectorKind::Text)
            .count();
        let objects = rec
            .detections
            .iter()
            .filter(|d| d.kind == DetectorKind::Object)
            .count();
        // Ground-truth coverage: a truth region counts as covered when at
        // least half its area lies under recommended regions.
        for truth in li.truth.all_regions() {
            total += 1;
            let inter: u64 = rec.regions.iter().map(|r| r.intersect(truth).area()).sum();
            if inter * 2 >= truth.area() {
                covered += 1;
            }
        }
        println!(
            "image {:>3}: {} face dets, {} text dets, {} object proposals -> {} disjoint regions",
            li.id,
            faces,
            texts,
            objects,
            rec.regions.len()
        );
        // Save the first few annotated scenes.
        if i < 3 {
            let mut annotated = li.image.clone();
            for d in &rec.detections {
                let c = match d.kind {
                    DetectorKind::Face => Rgb::new(255, 60, 60),
                    DetectorKind::Text => Rgb::new(60, 60, 255),
                    DetectorKind::Object => Rgb::new(60, 255, 60),
                };
                draw::stroke_rect(&mut annotated, d.rect, c);
            }
            for r in &rec.regions {
                draw::stroke_rect(&mut annotated, *r, Rgb::new(255, 255, 0));
            }
            let path = ctx.out_dir.join(format!("fig12_scene{}.ppm", li.id));
            puppies_image::io::save_ppm(&annotated, &path).ok();
            println!("  annotated scene saved to {}", path.display());
        }
    }
    println!("\nground-truth regions >=50% covered by recommendations: {covered}/{total}");
}
