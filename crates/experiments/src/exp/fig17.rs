//! Fig. 17: normalized perturbed size vs privacy level (PASCAL and INRIA,
//! whole-image worst case) for PuPPIeS-C and -Z.

use crate::exp::table2::ratios;
use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_core::{PrivacyLevel, Scheme};
use puppies_jpeg::HuffmanMode;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 17: normalized perturbed size vs privacy level");
    for profile in [super::pascal(ctx), super::inria(ctx)] {
        let images = load(profile, ctx.seed);
        println!("\n{} ({} images):", profile.name(), images.len());
        println!(
            "{:<8} {:>22} {:>22}",
            "level", "PuPPIeS-C (mean±std)", "PuPPIeS-Z (mean±std)"
        );
        for level in PrivacyLevel::TABLE_IV {
            let c = Stats::of(&ratios(
                &images,
                Scheme::Compression,
                HuffmanMode::Optimized,
                level,
            ));
            let z = Stats::of(&ratios(
                &images,
                Scheme::Zero,
                HuffmanMode::Optimized,
                level,
            ));
            println!(
                "{:<8} {:>14.2} ± {:<5.2} {:>14.2} ± {:<5.2}",
                level.name(),
                c.mean,
                c.std,
                z.mean,
                z.std
            );
        }
    }
    println!(
        "\npaper: high ≈ 5x (PASCAL) / 8x (INRIA) for C; medium ≈ 1.1-2x; \
         low ≈ negligible; Z below C at every level with the gap growing \
         with privacy"
    );
}
