//! Fig. 21: the edge-detection attack — CDF of the fraction of original
//! edge pixels surviving in the protected image's edge map.

use crate::util::{header, load, par_map};
use crate::Ctx;
use puppies_attacks::edge_attack;
use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

fn cdf_row(values: &mut [f64]) -> String {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let idx = ((values.len() - 1) as f64 * p).round() as usize;
        values[idx]
    };
    format!(
        "p10 {:.3}  p25 {:.3}  p50 {:.3}  p75 {:.3}  p90 {:.3}  max {:.3}",
        q(0.10),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(1.0)
    )
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 21: edge-match ratio distribution (original vs protected)");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(6, 24, 96)),
        ctx.seed,
    );
    let key = OwnerKey::from_seed([21u8; 32]);

    let z = par_map(&images, |li| {
        let whole = Rect::new(0, 0, li.image.width(), li.image.height());
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium)
            .with_quality(super::QUALITY)
            .with_image_id(li.id);
        let p = protect(&li.image, &[whole], &key, &opts).expect("protect");
        let perturbed = CoeffImage::decode(&p.bytes).expect("decode").to_rgb();
        let reference = CoeffImage::from_rgb(&li.image, super::QUALITY).to_rgb();
        edge_attack(&reference.to_gray(), &perturbed.to_gray())
    });
    let p3 = par_map(&images, |li| {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let public = puppies_p3::P3Split::of(&coeff).public.to_rgb();
        edge_attack(&coeff.to_rgb().to_gray(), &public.to_gray())
    });

    println!("density of edge pixels in the protected image (paper's plotted quantity):");
    let mut zd: Vec<f64> = z.iter().map(|r| r.perturbed_density).collect();
    let mut pd: Vec<f64> = p3.iter().map(|r| r.perturbed_density).collect();
    println!("  PuPPIeS-Z: {}", cdf_row(&mut zd));
    println!("  P3 public: {}", cdf_row(&mut pd));
    println!("density-corrected structure survival (0 = nothing recoverable):");
    let mut zs: Vec<f64> = z.iter().map(|r| r.structure_score).collect();
    let mut ps: Vec<f64> = p3.iter().map(|r| r.structure_score).collect();
    println!("  PuPPIeS-Z: {}", cdf_row(&mut zs));
    println!("  P3 public: {}", cdf_row(&mut ps));
    println!(
        "\npaper: <5% of pixels identified as edges for both schemes, with \
         similar CDFs; the corrected score shows how much *original* \
         structure an adversary can actually trace."
    );
}
