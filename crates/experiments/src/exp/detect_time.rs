//! §V-C: ROI detection and recommendation timing — the paper reports
//! 3.85 s average dominated (>99%) by generic object detection.

use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_vision::detect::{recommend_rois, RecommendParams};
use puppies_vision::face::{detect_faces, FaceDetectorParams};
use puppies_vision::objectness::{propose_objects, ObjectnessParams};
use puppies_vision::text::{detect_text_blocks, TextDetectorParams};
use std::time::Instant;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("§V-C: ROI detection timing (per image, ms)");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(3, 10, 40)),
        ctx.seed,
    );
    let mut face_ms = Vec::new();
    let mut text_ms = Vec::new();
    let mut object_ms = Vec::new();
    let mut total_ms = Vec::new();
    for li in &images {
        let gray = li.image.to_gray();
        let t = Instant::now();
        let _ = detect_faces(&gray, &FaceDetectorParams::default());
        face_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let _ = detect_text_blocks(&gray, &TextDetectorParams::default());
        text_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let _ = propose_objects(&gray, &ObjectnessParams::default());
        object_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let _ = recommend_rois(&li.image, &RecommendParams::default());
        total_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "stage", "mean", "median", "std", "min", "max"
    );
    println!("{:<22} {}", "face detector", Stats::of(&face_ms).row(1));
    println!("{:<22} {}", "text detector", Stats::of(&text_ms).row(1));
    println!("{:<22} {}", "objectness", Stats::of(&object_ms).row(1));
    println!(
        "{:<22} {}",
        "full recommendation",
        Stats::of(&total_ms).row(1)
    );
    let obj_share = Stats::of(&object_ms).mean
        / (Stats::of(&face_ms).mean + Stats::of(&text_ms).mean + Stats::of(&object_ms).mean);
    println!(
        "\nobjectness share of detection time: {:.0}% (paper: object \
         detection takes >99% of 3.85 s average)",
        obj_share * 100.0
    );
}
