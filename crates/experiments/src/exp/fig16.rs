//! Fig. 16: the scale-then-recover flow on a ROI-protected image —
//! perturb at the sender, downscale at the PSP, reconstruct at the
//! receiver with the transformed shadow ROI.

use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_core::{protect, OwnerKey, PerturbProfile, ProtectOptions};
use puppies_image::metrics::psnr_rgb;
use puppies_jpeg::CoeffImage;
use puppies_transform::{ScaleFilter, Transformation};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 16: perturb -> PSP downscale -> shadow reconstruction");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(4, 12, 48)),
        ctx.seed,
    );
    let key = OwnerKey::from_seed([16u8; 32]);
    let mut tf = Vec::new();
    let mut paper = Vec::new();
    let mut baseline = Vec::new();
    let mut saved = false;
    for li in &images {
        let rois = li.truth.all_regions();
        if rois.is_empty() {
            continue;
        }
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let t = Transformation::Scale {
            width: coeff.width() / 2,
            height: coeff.height() / 2,
            filter: ScaleFilter::Bilinear,
        };
        let reference = t.apply_to_rgb(&coeff.to_rgb()).expect("scale");
        let profiles = [
            PerturbProfile::transform_friendly(),
            PerturbProfile::paper(
                puppies_core::Scheme::Compression,
                puppies_core::PrivacyLevel::Medium,
            ),
        ];
        for (pi, profile) in profiles.into_iter().enumerate() {
            let opts = ProtectOptions::from_profile(profile)
                .with_quality(super::QUALITY)
                .with_image_id(li.id);
            let protected = protect(&li.image, &rois, &key, &opts).expect("protect");
            let perturbed = CoeffImage::decode(&protected.bytes)
                .expect("decode")
                .to_rgb();
            let scaled = t.apply_to_rgb(&perturbed).expect("scale");
            let mut params = protected.params.clone();
            params.transformation = Some(t.clone());
            let rec =
                puppies_core::shadow::recover_pixel_domain(&scaled, &t, &params, &key.grant_all())
                    .expect("recover");
            let psnr = psnr_rgb(&rec, &reference);
            if pi == 0 {
                tf.push(psnr);
                baseline.push(psnr_rgb(&scaled, &reference));
            } else {
                paper.push(psnr);
            }
            if !saved {
                puppies_image::io::save_ppm(&perturbed, ctx.out_dir.join("fig16_perturbed.ppm"))
                    .ok();
                puppies_image::io::save_ppm(&scaled, ctx.out_dir.join("fig16_scaled.ppm")).ok();
                puppies_image::io::save_ppm(&rec, ctx.out_dir.join("fig16_recovered.ppm")).ok();
                saved = true;
            }
        }
    }
    println!("PSNR (dB) of recovered vs ground-truth scaled image, ROI-protected");
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "profile", "mean", "median", "std", "min", "max"
    );
    println!("{:<34} {}", "transform-friendly", Stats::of(&tf).row(1));
    println!("{:<34} {}", "paper C/medium", Stats::of(&paper).row(1));
    println!(
        "{:<34} {}",
        "no recovery (perturbed baseline)",
        Stats::of(&baseline).row(1)
    );
    println!(
        "\npaper: 'the reconstructed scaled image is exactly the same'. Our \
         measurement: near-exact with the transform-friendly profile; the \
         paper profile is limited by wrap/clamp effects the paper does not \
         model (EXPERIMENTS.md, Fig. 16 section)."
    );
}
