//! Table I: the transformation-compatibility matrix, executed.
//!
//! For every implemented scheme and every transformation column the
//! harness actually runs encrypt → PSP-transform → recover and grades the
//! cell by PSNR against the ground-truth transformed image (✓ when ≥ 30
//! dB). Cells the scheme's published design cannot handle are verified to
//! fail. Schemes whose machinery is orthogonal to this reproduction
//! (Cryptagram, steganography, K-SVD dictionary) are printed from the
//! paper's claims, marked "modeled".

use crate::baselines::{BaselineScheme, DqtScramble, MhtEncrypt, PermuteBlock, SignFlip};
use crate::util::header;
use crate::Ctx;
use puppies_core::{protect, OwnerKey, PerturbProfile, ProtectOptions};
use puppies_image::metrics::psnr_rgb;
use puppies_image::{Rect, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_transform::{ScaleFilter, Transformation};

fn test_image(ctx: &Ctx) -> RgbImage {
    crate::util::load(super::pascal(ctx).with_count(1), ctx.seed)
        .remove(0)
        .image
}

fn columns(w: u32, h: u32) -> Vec<(&'static str, Transformation)> {
    vec![
        (
            "Scaling",
            Transformation::Scale {
                width: w / 2,
                height: h / 2,
                filter: ScaleFilter::Bilinear,
            },
        ),
        (
            "Cropping",
            Transformation::Crop(Rect::new(
                w / 4 / 8 * 8,
                h / 4 / 8 * 8,
                w / 2 / 8 * 8,
                h / 2 / 8 * 8,
            )),
        ),
        ("Compression", Transformation::Recompress { quality: 50 }),
        ("Rotation", Transformation::Rotate90),
    ]
}

/// PSP-side application of a transformation to an encrypted coefficient
/// image, like `PspServer::transform` (coefficient path when lossless).
fn psp_apply(enc: &CoeffImage, t: &Transformation) -> Option<CoeffImage> {
    if t.is_coeff_domain(enc.width(), enc.height()) {
        t.apply_to_coeff(enc).ok()
    } else {
        let rgb = enc.to_rgb();
        let out = t.apply_to_rgb(&rgb).ok()?;
        Some(CoeffImage::from_rgb(&out, super::QUALITY))
    }
}

fn grade(psnr: f64) -> &'static str {
    if psnr >= 30.0 {
        "yes"
    } else {
        "NO"
    }
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Table I: compatibility with image transformations (executed)");
    let img = test_image(ctx);
    let original = CoeffImage::from_rgb(&img, super::QUALITY);
    let cols = columns(img.width(), img.height());

    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "scheme", "partial", "Scaling", "Cropping", "Compression", "Rotation"
    );

    // --- PuPPIeS: graded through the real protect/recover pipeline. ---
    {
        let key = OwnerKey::from_seed([42u8; 32]);
        let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly())
            .with_quality(super::QUALITY);
        let whole = Rect::new(0, 0, img.width(), img.height());
        let protected = protect(&img, &[whole], &key, &opts).expect("protect");
        let mut cells = Vec::new();
        for (_, t) in &cols {
            let enc = CoeffImage::decode(&protected.bytes).expect("decode");
            let Some(transformed) = psp_apply(&enc, t) else {
                cells.push("NO (psp)".to_string());
                continue;
            };
            let bytes = transformed
                .encode(&puppies_jpeg::EncodeOptions::default())
                .expect("encode");
            let mut params = protected.params.clone();
            params.transformation = Some(t.clone());
            let recovered =
                puppies_core::shadow::recover_transformed(&bytes, &params, &key.grant_all());
            let reference = psp_apply(&original, t).expect("reference").to_rgb();
            let cell = match recovered {
                Ok(r) if (r.width(), r.height()) == (reference.width(), reference.height()) => {
                    let p = psnr_rgb(&r, &reference);
                    format!("{} ({:.0}dB)", grade(p), p.min(99.0))
                }
                _ => "NO".into(),
            };
            cells.push(cell);
        }
        println!(
            "{:<24} {:>8} {:>14} {:>14} {:>14} {:>14}",
            "PuPPIeS (ours)", "yes", cells[0], cells[1], cells[2], cells[3]
        );
    }

    // --- P3: pixel recombination (its only post-transform mechanism). ---
    {
        let split = puppies_p3::P3Split::of(&original);
        let mut cells = Vec::new();
        for (_, t) in &cols {
            let Some(tp) = psp_apply(&split.public, t) else {
                cells.push("NO".to_string());
                continue;
            };
            // The receiver applies the same transformation to its private
            // part (pixel domain, per P3's design) and recombines.
            let tpriv = match t.apply_to_rgb(&split.private.to_rgb()) {
                Ok(v) => v,
                Err(_) => {
                    cells.push("NO".into());
                    continue;
                }
            };
            let cell = match puppies_p3::recombine_pixels(&tp.to_rgb(), &tpriv) {
                Ok(rec) => {
                    let reference = psp_apply(&original, t).expect("reference").to_rgb();
                    if (rec.width(), rec.height()) == (reference.width(), reference.height()) {
                        let p = psnr_rgb(&rec, &reference);
                        format!("{} ({:.0}dB)", grade(p), p.min(99.0))
                    } else {
                        "NO".into()
                    }
                }
                Err(_) => "NO".into(),
            };
            cells.push(cell);
        }
        println!(
            "{:<24} {:>8} {:>14} {:>14} {:>14} {:>14}",
            "P3", "no", cells[0], cells[1], cells[2], cells[3]
        );
    }

    // --- Coefficient-domain baselines. ---
    let schemes: Vec<Box<dyn BaselineScheme>> = vec![
        Box::new(SignFlip { seed: 0xD0F0 }),
        Box::new(PermuteBlock { seed: 0x0117 }),
        Box::new(DqtScramble {
            seed: 0xC4A6,
            quality: super::QUALITY,
        }),
        Box::new(MhtEncrypt),
    ];
    for s in &schemes {
        let enc = s.encrypt(&original);
        let mut cells = Vec::new();
        for (_, t) in &cols {
            if !s.psp_can_decode() {
                cells.push("NO (opaque)".to_string());
                continue;
            }
            let Some(transformed) = psp_apply(&enc, t) else {
                cells.push("NO".to_string());
                continue;
            };
            let cell = match s.recover(&transformed, Some(t)) {
                Some(rec) => {
                    let reference = psp_apply(&original, t).expect("reference").to_rgb();
                    let r = rec.to_rgb();
                    if (r.width(), r.height()) == (reference.width(), reference.height()) {
                        let p = psnr_rgb(&r, &reference);
                        format!("{} ({:.0}dB)", grade(p), p.min(99.0))
                    } else {
                        "NO".into()
                    }
                }
                None => {
                    // Verify the claim: naive (transform-unaware) recovery
                    // must indeed fail.
                    let naive = s.recover(&transformed, None);
                    let reference = psp_apply(&original, t).expect("reference").to_rgb();
                    let failed = match naive {
                        Some(rec) => {
                            let r = rec.to_rgb();
                            (r.width(), r.height()) != (reference.width(), reference.height())
                                || psnr_rgb(&r, &reference) < 30.0
                        }
                        None => true,
                    };
                    if failed {
                        "NO (verified)".into()
                    } else {
                        "yes?!".to_string()
                    }
                }
            };
            cells.push(cell);
        }
        println!(
            "{:<24} {:>8} {:>14} {:>14} {:>14} {:>14}",
            s.name(),
            if s.supports_partial() { "yes" } else { "no" },
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    // --- Modeled rows (machinery orthogonal to this reproduction). ---
    for (name, partial, row) in [
        ("Cryptagram [modeled]", "yes", ["NO", "NO", "NO", "NO"]),
        ("Steganography [modeled]", "yes", ["NO", "NO", "NO", "yes"]),
        ("Aharon K-SVD [modeled]", "no", ["NO", "yes", "yes", "yes"]),
    ] {
        println!(
            "{:<24} {:>8} {:>14} {:>14} {:>14} {:>14}",
            name, partial, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "\n(yes = recovered at >= 30 dB against the ground-truth transformed image; \
         NO (verified) = the design has no mechanism and naive recovery measurably fails)"
    );
}
