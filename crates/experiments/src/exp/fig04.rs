//! Fig. 4: PSP-side downscaling — P3 loses fine detail on recovery while
//! PuPPIeS recovers (near-)exactly.
//!
//! Measured as PSNR of each scheme's recovered scaled image against the
//! ground truth (the original decoded image scaled the same way).

use crate::util::{header, load, Stats};
use crate::Ctx;
use puppies_core::{protect, OwnerKey, PerturbProfile, ProtectOptions};
use puppies_image::metrics::psnr_rgb;
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;
use puppies_transform::{ScaleFilter, Transformation};

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 4: recovery quality after PSP downscaling (whole image)");
    let images = load(super::inria(ctx), ctx.seed);
    let key = OwnerKey::from_seed([44u8; 32]);
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("P3 (recombine pixel parts)", Vec::new()),
        ("PuPPIeS transform-friendly", Vec::new()),
        ("PuPPIeS paper profile (C/med)", Vec::new()),
        ("no recovery (perturbed view)", Vec::new()),
    ];
    for li in &images {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let (w, h) = (coeff.width(), coeff.height());
        let t = Transformation::Scale {
            width: w / 2,
            height: h / 2,
            filter: ScaleFilter::Bilinear,
        };
        let reference = t.apply_to_rgb(&coeff.to_rgb()).expect("scale");

        // P3: PSP scales the public part; receiver scales its private part
        // and recombines in the pixel domain (the only mechanism P3 has).
        let split = puppies_p3::P3Split::of(&coeff);
        let spub = t.apply_to_rgb(&split.public.to_rgb()).expect("scale");
        let spriv = t.apply_to_rgb(&split.private.to_rgb()).expect("scale");
        let p3rec = puppies_p3::recombine_pixels(&spub, &spriv).expect("recombine");
        rows[0].1.push(psnr_rgb(&p3rec, &reference));

        // PuPPIeS with both profiles.
        let whole = Rect::new(0, 0, w, h);
        for (row, profile) in [
            (1usize, PerturbProfile::transform_friendly()),
            (
                2usize,
                PerturbProfile::paper(
                    puppies_core::Scheme::Compression,
                    puppies_core::PrivacyLevel::Medium,
                ),
            ),
        ] {
            let opts = ProtectOptions::from_profile(profile)
                .with_quality(super::QUALITY)
                .with_image_id(li.id);
            let protected = protect(&li.image, &[whole], &key, &opts).expect("protect");
            let perturbed = CoeffImage::decode(&protected.bytes)
                .expect("decode")
                .to_rgb();
            let scaled = t.apply_to_rgb(&perturbed).expect("scale");
            let mut params = protected.params.clone();
            params.transformation = Some(t.clone());
            let rec =
                puppies_core::shadow::recover_pixel_domain(&scaled, &t, &params, &key.grant_all())
                    .expect("recover");
            rows[row].1.push(psnr_rgb(&rec, &reference));
            if row == 1 {
                rows[3].1.push(psnr_rgb(&scaled, &reference));
            }
        }
    }
    println!(
        "PSNR (dB) of recovered half-scale image vs ground truth, {} images",
        images.len()
    );
    println!(
        "{:<32} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "path", "mean", "median", "std", "min", "max"
    );
    for (name, vals) in &rows {
        println!("{:<32} {}", name, Stats::of(vals).row(1));
    }
    println!(
        "\npaper: P3 'loses many fine details'; PuPPIeS 'exactly the same'. \
         Our measured shape: PuPPIeS(tf) >> P3 >> no recovery; the paper \
         profile is capped by pixel clamping (see EXPERIMENTS.md)."
    );
}
