//! §VI-A: brute-force accounting, plus two live demonstrations — a tiny
//! key space actually falling, and the infeasibility arithmetic for the
//! real one.

use crate::util::header;
use crate::Ctx;
use puppies_attacks::bruteforce::{keyspace_report, tiny_keyspace_demo};
use puppies_jpeg::CoeffImage;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("§VI-A: brute-force key-space accounting");
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>8}",
        "level", "DC bits", "AC bits", "paper AC", "total"
    );
    for sb in keyspace_report() {
        println!(
            "{:<8} {:>8} {:>10} {:>12} {:>8}",
            format!("{:?}", sb.level),
            sb.dc_bits,
            sb.ac_bits,
            sb.paper_ac_bits
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
            sb.total_bits
        );
    }
    println!("NIST reference: 256 bits. Every level clears it (the paper's point).");

    // Live demo: a deliberately shrunken key space falls immediately.
    let img = crate::util::load(super::pascal(ctx).with_count(1), ctx.seed)
        .remove(0)
        .image;
    let coeff = CoeffImage::from_rgb(&img, super::QUALITY);
    let mut hits = 0;
    let trials = 20;
    for t in 0..trials {
        let (secret, guess) =
            tiny_keyspace_demo(&coeff, 2 + (t % 5), 2 + (t % 7), 4, t as i32 * 3 + 1);
        if secret == guess {
            hits += 1;
        }
    }
    println!(
        "\n4-bit demo key space: smoothness prior recovers the secret in {hits}/{trials} trials"
    );
    println!(
        "full key space at low privacy: 2^714 candidates — at 10^12 guesses/s \
         that is ~10^195 years; the demo attack simply does not scale"
    );
}
