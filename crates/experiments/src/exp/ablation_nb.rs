//! Ablation: PuPPIeS-N vs PuPPIeS-B under the DC-sweep attack — the
//! design change §IV-B.2 motivates, made measurable.

use crate::util::{header, load};
use crate::Ctx;
use puppies_attacks::bruteforce::naive_dc_attack;
use puppies_core::matrix::wrap_dc;
use puppies_core::perturb::{dc_perturbation, perturb_roi, RoiKeys};
use puppies_core::{OwnerKey, PerturbProfile, PrivacyLevel, Scheme};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Ablation: DC sweep against PuPPIeS-N vs PuPPIeS-B");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(3, 8, 32)),
        ctx.seed,
    );
    let key = OwnerKey::from_seed([31u8; 32]);
    let grant = key.grant_all();
    println!(
        "{:<10} {:>16} {:>16}",
        "scheme", "sweeps hit (<=8)", "median |error|"
    );
    for scheme in [Scheme::Naive, Scheme::Base] {
        let profile = PerturbProfile::paper(scheme, PrivacyLevel::Medium);
        let mut errors = Vec::new();
        let mut hits = 0;
        for li in &images {
            let mut coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
            let keys: Vec<RoiKeys> = (0..3)
                .map(|c| RoiKeys::from_grant(&grant, li.id, 0, c).expect("keys"))
                .collect();
            let w = coeff.width();
            let h = coeff.height();
            let roi = Rect::new(
                w / 4 / 8 * 8,
                h / 4 / 8 * 8,
                (w / 2) / 8 * 8,
                (h / 2) / 8 * 8,
            );
            perturb_roi(&mut coeff, roi, &keys, &profile).expect("perturb");
            let guess = naive_dc_attack(&coeff, roi);
            let truth = dc_perturbation(&profile, &keys[0], 0);
            let err = wrap_dc(guess - truth).abs();
            errors.push(err as f64);
            if err <= 8 {
                hits += 1;
            }
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:<10} {:>13}/{:<2} {:>16.0}",
            profile.scheme.name(),
            hits,
            images.len(),
            errors[errors.len() / 2]
        );
    }
    println!(
        "\nexpected: the sweep recovers PuPPIeS-N's shared DC value (within a \
         brightness offset) on most images and degenerates to chance against \
         PuPPIeS-B's rotating vector"
    );
}
