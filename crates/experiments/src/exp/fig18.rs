//! Fig. 18: normalized size of the public part vs ROI area fraction, for
//! PuPPIeS-C, PuPPIeS-Z (with and without the ZInd parameters) and the P3
//! public-part line.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;
use puppies_core::{protect_coeff, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::Rect;
use puppies_jpeg::{CoeffImage, EncodeOptions};

fn centered_roi(w: u32, h: u32, fraction: f64) -> Rect {
    // A centered rectangle with the requested area share, 8-aligned.
    let scale = fraction.sqrt().clamp(0.05, 1.0);
    let rw = ((w as f64 * scale) as u32).clamp(8, w) / 8 * 8;
    let rh = ((h as f64 * scale) as u32).clamp(8, h) / 8 * 8;
    Rect::new(
        (w - rw) / 2 / 8 * 8,
        (h - rh) / 2 / 8 * 8,
        rw.max(8),
        rh.max(8),
    )
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 18: normalized public-part size vs ROI area (PASCAL, medium)");
    let images = load(super::pascal(ctx), ctx.seed);
    let key = OwnerKey::from_seed([18u8; 32]);
    let enc_opts = EncodeOptions::default();

    // P3 reference line (whole image, no ROI concept).
    let p3: Vec<f64> = par_map(&images, |li| {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        let original = coeff.encode(&enc_opts).expect("encode").len() as f64;
        let split = puppies_p3::P3Split::of(&coeff);
        split.public_bytes(&enc_opts).expect("encode") as f64 / original
    });
    let p3_mean = Stats::of(&p3).mean;

    println!(
        "{:>8} {:>14} {:>14} {:>20} {:>12}",
        "ROI %", "PuPPIeS-C", "PuPPIeS-Z", "Z (no ZInd bytes)", "P3 (flat)"
    );
    for pct in [20u32, 40, 60, 80, 100] {
        let fraction = pct as f64 / 100.0;
        let measure = |scheme: Scheme| -> (f64, f64) {
            let vals = par_map(&images, |li| {
                let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
                let original = coeff.encode(&enc_opts).expect("encode").len() as f64;
                let roi = centered_roi(coeff.width(), coeff.height(), fraction);
                let mut perturbed = coeff;
                let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium)
                    .with_quality(super::QUALITY)
                    .with_image_id(li.id);
                let params = protect_coeff(&mut perturbed, &[roi], &key, &opts).expect("perturb");
                let img_len = perturbed.encode(&enc_opts).expect("encode").len() as f64;
                let full = (img_len + params.encoded_len() as f64) / original;
                // ZInd wire cost: 5 bytes per entry (see core::params).
                let zind_bytes: usize = params.rois.iter().map(|r| r.zind.len() * 5).sum();
                let without = (img_len + (params.encoded_len() - zind_bytes) as f64) / original;
                (full, without)
            });
            let full: Vec<f64> = vals.iter().map(|v| v.0).collect();
            let without: Vec<f64> = vals.iter().map(|v| v.1).collect();
            (Stats::of(&full).mean, Stats::of(&without).mean)
        };
        let (c_full, _) = measure(Scheme::Compression);
        let (z_full, z_nozind) = measure(Scheme::Zero);
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>20.3} {:>12.3}",
            pct, c_full, z_full, z_nozind, p3_mean
        );
    }
    println!(
        "\npaper: public size grows linearly with ROI area; Z above C only \
         through its ZInd parameters (12-36% extra), and far above the \
         (content-free) P3 public part"
    );
}
