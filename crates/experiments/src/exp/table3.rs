//! Table III: dataset inventory — profiles with measured JPEG sizes.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Table III: datasets (synthetic stand-ins; paper figures alongside)");
    println!(
        "{:<9} {:>7} {:>12} {:>12} | {:>9} {:>12} {:<}",
        "dataset", "count", "resolution", "mean size", "paper n", "paper res", "experiment role"
    );
    let rows = [
        (super::pascal(ctx), "storage, timing, attacks"),
        (super::inria(ctx), "high-res storage & timing"),
        (super::caltech(ctx), "face detection"),
        (super::feret(ctx), "face recognition"),
    ];
    for (profile, role) in rows {
        let images = load(profile, ctx.seed);
        let sizes = par_map(&images, |li| {
            puppies_jpeg::encode_rgb(&li.image, super::QUALITY)
                .expect("encode")
                .len() as f64
                / 1024.0
        });
        let s = Stats::of(&sizes);
        println!(
            "{:<9} {:>7} {:>12} {:>9.1} KB | {:>9} {:>12} {:<}",
            profile.name(),
            profile.count,
            format!("{}x{}", profile.width, profile.height),
            s.mean,
            profile.paper_count,
            format!(
                "{}x{}",
                profile.paper_resolution.0, profile.paper_resolution.1
            ),
            role,
        );
    }
    println!("\npaper mean sizes: Caltech 152 KB, FERET 10.4 KB, INRIA 1842 KB, PASCAL 84 KB");
}
