//! Fig. 20: the SIFT-feature attack — features extracted from protected
//! images should match (almost) nothing in the originals.

use crate::util::{header, load, par_map, Stats};
use crate::Ctx;
use puppies_attacks::sift_attack;
use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Fig. 20: SIFT feature attack (whole-image protection)");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(4, 16, 64)),
        ctx.seed,
    );
    let key = OwnerKey::from_seed([20u8; 32]);

    struct Row {
        name: &'static str,
        make: fn(&puppies_datasets::LabeledImage, &OwnerKey) -> puppies_image::RgbImage,
    }
    let rows = [
        Row {
            name: "PuPPIeS-C",
            make: |li, key| {
                let whole = Rect::new(0, 0, li.image.width(), li.image.height());
                let opts = ProtectOptions::new(Scheme::Compression, PrivacyLevel::Medium)
                    .with_quality(super::QUALITY)
                    .with_image_id(li.id);
                let p = protect(&li.image, &[whole], key, &opts).expect("protect");
                CoeffImage::decode(&p.bytes).expect("decode").to_rgb()
            },
        },
        Row {
            name: "PuPPIeS-Z",
            make: |li, key| {
                let whole = Rect::new(0, 0, li.image.width(), li.image.height());
                let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium)
                    .with_quality(super::QUALITY)
                    .with_image_id(li.id);
                let p = protect(&li.image, &[whole], key, &opts).expect("protect");
                CoeffImage::decode(&p.bytes).expect("decode").to_rgb()
            },
        },
        Row {
            name: "P3 public part",
            make: |li, _| {
                let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
                puppies_p3::P3Split::of(&coeff).public.to_rgb()
            },
        },
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "probe", "orig feats", "probe feats", "matches", "% zero-match"
    );
    for row in rows {
        let reports = par_map(&images, |li| {
            let reference = CoeffImage::from_rgb(&li.image, super::QUALITY)
                .to_rgb()
                .to_gray();
            let probe = (row.make)(li, &key).to_gray();
            sift_attack(&reference, &probe)
        });
        let feats: Vec<f64> = reports.iter().map(|r| r.original_features as f64).collect();
        let pfeats: Vec<f64> = reports
            .iter()
            .map(|r| r.perturbed_features as f64)
            .collect();
        let matches: Vec<f64> = reports.iter().map(|r| r.matches as f64).collect();
        let zero = reports.iter().filter(|r| r.zero_matches()).count();
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.2} {:>13.0}%",
            row.name,
            Stats::of(&feats).mean,
            Stats::of(&pfeats).mean,
            Stats::of(&matches).mean,
            100.0 * zero as f64 / reports.len() as f64
        );
    }
    println!(
        "\npaper: ~1,500 features per original, average matches << 1, \
         >90% of images with zero matches, for both PuPPIeS and P3"
    );
}
