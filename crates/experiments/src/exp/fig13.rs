//! Figs. 13–14: separating DC and AC components — DC carries the coarse
//! visual content, AC the detail. Quantified as energy share and PSNR of
//! the DC-only and AC-only reconstructions.

use crate::util::{header, load};
use crate::Ctx;
use puppies_image::metrics::psnr_rgb;
use puppies_jpeg::{CoeffImage, Component};

fn keep(coeff: &CoeffImage, dc: bool) -> CoeffImage {
    let comps: Vec<Component> = coeff
        .components()
        .iter()
        .map(|c| {
            let blocks: Vec<_> = c
                .blocks()
                .iter()
                .map(|b| {
                    let mut out = [0i32; 64];
                    if dc {
                        out[0] = b[0];
                    } else {
                        out[1..].copy_from_slice(&b[1..]);
                    }
                    out
                })
                .collect();
            Component::from_blocks(c.id(), c.width(), c.height(), c.quant().clone(), blocks)
                .expect("geometry preserved")
        })
        .collect();
    CoeffImage::from_components(coeff.width(), coeff.height(), comps).expect("geometry")
}

/// Runs the experiment.
pub fn run(ctx: &Ctx) {
    header("Figs. 13-14: DC-only vs AC-only reconstructions");
    let images = load(
        super::pascal(ctx).with_count(ctx.scale.count(2, 6, 20)),
        ctx.seed,
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "image", "DC energy %", "AC energy %", "DC-only dB", "AC-only dB"
    );
    for li in &images {
        let coeff = CoeffImage::from_rgb(&li.image, super::QUALITY);
        // Dequantized energy split on the luma component.
        let c = &coeff.components()[0];
        let steps = c.quant().steps();
        let mut e_dc = 0f64;
        let mut e_ac = 0f64;
        for b in c.blocks() {
            e_dc += ((b[0] * steps[0] as i32) as f64).powi(2);
            for i in 1..64 {
                e_ac += ((b[i] * steps[i] as i32) as f64).powi(2);
            }
        }
        let total = (e_dc + e_ac).max(1.0);
        let reference = coeff.to_rgb();
        let dc_only = keep(&coeff, true).to_rgb();
        let ac_only = keep(&coeff, false).to_rgb();
        println!(
            "{:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            li.id,
            100.0 * e_dc / total,
            100.0 * e_ac / total,
            psnr_rgb(&dc_only, &reference),
            psnr_rgb(&ac_only, &reference),
        );
        if li.id == 0 {
            puppies_image::io::save_ppm(&dc_only, ctx.out_dir.join("fig13_dc_only.ppm")).ok();
            puppies_image::io::save_ppm(&ac_only, ctx.out_dir.join("fig13_ac_only.ppm")).ok();
        }
    }
    println!(
        "\npaper: the DC-only image keeps the recognizable gist (hence DC gets \
         the strongest protection); the AC-only image keeps only edges"
    );
}
