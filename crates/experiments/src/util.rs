//! Shared helpers: summary statistics, table printing, dataset sweeps.

use puppies_datasets::{DatasetProfile, LabeledImage};

/// Five-number summary used throughout the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl Stats {
    /// Computes the summary of a sample (empty input yields zeros).
    pub fn of(values: &[f64]) -> Stats {
        if values.is_empty() {
            return Stats {
                mean: 0.0,
                median: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Stats {
            mean,
            median,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            n,
        }
    }

    /// Renders as `mean/median/std/min/max` with the given precision.
    pub fn row(&self, precision: usize) -> String {
        format!(
            "{:>8.p$} {:>8.p$} {:>8.p$} {:>8.p$} {:>8.p$}",
            self.mean,
            self.median,
            self.std,
            self.min,
            self.max,
            p = precision
        )
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Materializes a dataset profile on the shared worker pool (generation is
/// deterministic per index and results are reassembled in index order, so
/// the output matches sequential generation exactly).
pub fn load(profile: DatasetProfile, seed: u64) -> Vec<LabeledImage> {
    puppies_core::parallel::current().map_indexed(profile.count, |idx| {
        puppies_datasets::generate_one(profile, seed, idx)
    })
}

/// Runs `f` over items on the shared worker pool, collecting results in
/// order.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    puppies_core::parallel::current().map_slice(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zeroed() {
        let s = Stats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn stats_odd_median() {
        let s = Stats::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn load_matches_sequential_generation() {
        let p = puppies_datasets::DatasetProfile::pascal()
            .with_count(4)
            .with_resolution(64, 48);
        let par = load(p, 42);
        let seq: Vec<_> = puppies_datasets::generate(p, 42).collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(seq.iter()) {
            assert_eq!(a.image, b.image);
        }
    }
}
