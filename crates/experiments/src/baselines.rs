//! Lightweight implementations of the comparison schemes of Table I, so
//! the compatibility matrix is *executed* rather than transcribed.
//!
//! Four baselines are implemented end-to-end in the coefficient domain:
//!
//! - [`SignFlip`] — Dufaux & Ebrahimi-style scrambling: pseudorandom sign
//!   flips of AC coefficients
//! - [`PermuteBlock`] — Unterweger & Uhl-style length-preserving
//!   encryption: a keyed permutation of each block's AC coefficients
//! - [`DqtScramble`] — Chang et al.-style quantization-table encryption:
//!   the DQT carried in the file is keyed nonsense, so the PSP decodes
//!   garbage pixels while the receiver substitutes the true table
//! - [`MhtEncrypt`] — Wu & Kuo-style Huffman-table encryption, modeled at
//!   the capability level: the PSP cannot even entropy-decode the file,
//!   so every transformation is unavailable
//!
//! Each baseline recovers with full knowledge of the applied
//! transformation, to the extent its *published design* allows — i.e. a
//! scheme is not artificially crippled, but neither is it extended with
//! mechanisms its paper does not describe (that would be inventing a new
//! scheme). Cryptagram, steganography and the K-SVD dictionary scheme are
//! reported as modeled rows only (their machinery — base-64-in-pixels,
//! LSB embedding, dictionary learning — is orthogonal to everything this
//! reproduction measures).

use puppies_jpeg::{Block, CoeffImage, Component, QuantTable};
use puppies_transform::Transformation;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A scheme that can be run through the Table I harness.
pub trait BaselineScheme {
    /// Display name (matches Table I's rows).
    fn name(&self) -> &'static str;
    /// Whether the scheme can protect a sub-region (Table I column 1).
    fn supports_partial(&self) -> bool;
    /// Encrypts a coefficient image (whole image).
    fn encrypt(&self, coeff: &CoeffImage) -> CoeffImage;
    /// Attempts recovery of a transformed encrypted image, knowing the
    /// transformation. Returns `None` when the published design has no
    /// mechanism for this transformation (the harness then grades ✗ after
    /// double-checking that naive recovery indeed fails).
    fn recover(&self, transformed: &CoeffImage, t: Option<&Transformation>) -> Option<CoeffImage>;
    /// Whether the PSP can decode the encrypted file at all (false for
    /// bitstream/table encryption like MHT).
    fn psp_can_decode(&self) -> bool {
        true
    }
}

fn map_blocks(coeff: &CoeffImage, f: impl Fn(usize, &Block) -> Block) -> CoeffImage {
    let comps: Vec<Component> = coeff
        .components()
        .iter()
        .map(|c| {
            let blocks: Vec<Block> = c
                .blocks()
                .iter()
                .enumerate()
                .map(|(i, b)| f(i, b))
                .collect();
            Component::from_blocks(c.id(), c.width(), c.height(), c.quant().clone(), blocks)
                .expect("geometry preserved")
        })
        .collect();
    CoeffImage::from_components(coeff.width(), coeff.height(), comps).expect("geometry preserved")
}

fn coeff_domain_undo(
    transformed: &CoeffImage,
    t: &Transformation,
    decrypt: impl Fn(&CoeffImage) -> CoeffImage,
) -> Option<CoeffImage> {
    // Invert the geometry, decrypt in original coordinates, re-apply.
    let inverse = match t {
        Transformation::Rotate90 => Transformation::Rotate270,
        Transformation::Rotate270 => Transformation::Rotate90,
        Transformation::Rotate180 => Transformation::Rotate180,
        Transformation::FlipHorizontal => Transformation::FlipHorizontal,
        Transformation::FlipVertical => Transformation::FlipVertical,
        _ => return None,
    };
    let original_frame = inverse.apply_to_coeff(transformed).ok()?;
    let decrypted = decrypt(&original_frame);
    t.apply_to_coeff(&decrypted).ok()
}

/// Dufaux & Ebrahimi-style sign scrambling of AC coefficients.
#[derive(Debug, Clone, Copy)]
pub struct SignFlip {
    /// Key seed.
    pub seed: u64,
}

impl SignFlip {
    fn apply(&self, coeff: &CoeffImage) -> CoeffImage {
        let seed = self.seed;
        map_blocks(coeff, |bi, b| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (bi as u64) << 8);
            let mut out = *b;
            for v in out.iter_mut().skip(1) {
                if rng.gen::<bool>() {
                    *v = -*v;
                }
            }
            out
        })
    }
}

impl BaselineScheme for SignFlip {
    fn name(&self) -> &'static str {
        "Dufaux (sign flip)"
    }
    fn supports_partial(&self) -> bool {
        false
    }
    fn encrypt(&self, coeff: &CoeffImage) -> CoeffImage {
        self.apply(coeff)
    }
    fn recover(&self, transformed: &CoeffImage, t: Option<&Transformation>) -> Option<CoeffImage> {
        match t {
            None => Some(self.apply(transformed)), // involution
            Some(Transformation::Recompress { .. }) => {
                // Requantization commutes with sign flips (odd function).
                Some(self.apply(transformed))
            }
            Some(
                t @ (Transformation::Rotate90
                | Transformation::Rotate180
                | Transformation::Rotate270
                | Transformation::FlipHorizontal
                | Transformation::FlipVertical),
            ) => coeff_domain_undo(transformed, t, |c| self.apply(c)),
            // No published mechanism for pixel-domain scaling or cropping.
            _ => None,
        }
    }
}

/// Unterweger & Uhl-style keyed permutation of each block's AC
/// coefficients.
#[derive(Debug, Clone, Copy)]
pub struct PermuteBlock {
    /// Key seed.
    pub seed: u64,
}

impl PermuteBlock {
    fn permutation(&self, block_index: usize) -> [usize; 63] {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (block_index as u64) << 4);
        let mut p: [usize; 63] = std::array::from_fn(|i| i);
        // Fisher–Yates.
        for i in (1..63).rev() {
            let j = rng.gen_range(0..=i);
            p.swap(i, j);
        }
        p
    }

    fn forward(&self, coeff: &CoeffImage) -> CoeffImage {
        map_blocks(coeff, |bi, b| {
            let p = self.permutation(bi);
            let mut out = *b;
            for (i, &src) in p.iter().enumerate() {
                out[1 + i] = b[1 + src];
            }
            out
        })
    }

    fn backward(&self, coeff: &CoeffImage) -> CoeffImage {
        map_blocks(coeff, |bi, b| {
            let p = self.permutation(bi);
            let mut out = *b;
            for (i, &src) in p.iter().enumerate() {
                out[1 + src] = b[1 + i];
            }
            out
        })
    }
}

impl BaselineScheme for PermuteBlock {
    fn name(&self) -> &'static str {
        "Unterweger (permute)"
    }
    fn supports_partial(&self) -> bool {
        false
    }
    fn encrypt(&self, coeff: &CoeffImage) -> CoeffImage {
        self.forward(coeff)
    }
    fn recover(&self, transformed: &CoeffImage, t: Option<&Transformation>) -> Option<CoeffImage> {
        match t {
            None => Some(self.backward(transformed)),
            Some(Transformation::Recompress { .. }) => Some(self.backward(transformed)),
            Some(
                t @ (Transformation::Rotate90
                | Transformation::Rotate180
                | Transformation::Rotate270
                | Transformation::FlipHorizontal
                | Transformation::FlipVertical),
            ) => coeff_domain_undo(transformed, t, |c| self.backward(c)),
            _ => None,
        }
    }
}

/// Chang et al.-style quantization-table encryption: coefficients travel
/// in the clear but the DQT in the file is keyed garbage.
#[derive(Debug, Clone, Copy)]
pub struct DqtScramble {
    /// Key seed.
    pub seed: u64,
    /// The true encoding quality whose tables the receiver restores.
    pub quality: u8,
}

impl DqtScramble {
    fn fake_table(&self, component: usize) -> QuantTable {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ component as u64);
        let mut steps = [1u16; 64];
        for s in &mut steps {
            *s = rng.gen_range(1..=255);
        }
        QuantTable::new(steps)
    }

    fn swap_tables(&self, coeff: &CoeffImage, to_fake: bool) -> CoeffImage {
        let comps: Vec<Component> = coeff
            .components()
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let table = if to_fake {
                    self.fake_table(ci.min(1))
                } else if ci == 0 {
                    QuantTable::luma(self.quality)
                } else {
                    QuantTable::chroma(self.quality)
                };
                Component::from_blocks(c.id(), c.width(), c.height(), table, c.blocks().to_vec())
                    .expect("geometry preserved")
            })
            .collect();
        CoeffImage::from_components(coeff.width(), coeff.height(), comps)
            .expect("geometry preserved")
    }
}

impl BaselineScheme for DqtScramble {
    fn name(&self) -> &'static str {
        "Chang (DQT encrypt)"
    }
    fn supports_partial(&self) -> bool {
        false
    }
    fn encrypt(&self, coeff: &CoeffImage) -> CoeffImage {
        self.swap_tables(coeff, true)
    }
    fn recover(&self, transformed: &CoeffImage, t: Option<&Transformation>) -> Option<CoeffImage> {
        match t {
            // Restoring the true table recovers the image as long as the
            // PSP never dequantized: untouched storage and lossless
            // geometry qualify. Rotations additionally permute blocks (and
            // transpose tables), so undo the geometry, swap, re-apply.
            None => Some(self.swap_tables(transformed, false)),
            Some(
                t @ (Transformation::Rotate90
                | Transformation::Rotate180
                | Transformation::Rotate270
                | Transformation::FlipHorizontal
                | Transformation::FlipVertical),
            ) => coeff_domain_undo(transformed, t, |c| self.swap_tables(c, false)),
            // Table substitution is geometry-agnostic, so block-aligned
            // cropping also survives — our executable harness finds this
            // even though the paper's Table I denies Chang cropping
            // (recorded in EXPERIMENTS.md).
            Some(Transformation::Crop(_)) => Some(self.swap_tables(transformed, false)),
            // Recompression requantizes *using the fake table*, corrupting
            // the data nonlinearly — but Table I grants Chang compression
            // because real PSP recompression happens at the bitstream
            // level without dequantization in their setting; we model that
            // by treating untouched requantization as identity. The
            // harness grades what actually happens in our PSP.
            _ => None,
        }
    }
}

/// Wu & Kuo-style Huffman-table encryption, modeled at the capability
/// level: the PSP holds an undecodable bitstream.
#[derive(Debug, Clone, Copy)]
pub struct MhtEncrypt;

impl BaselineScheme for MhtEncrypt {
    fn name(&self) -> &'static str {
        "MHT (Huffman encrypt)"
    }
    fn supports_partial(&self) -> bool {
        false
    }
    fn encrypt(&self, coeff: &CoeffImage) -> CoeffImage {
        coeff.clone()
    }
    fn recover(&self, transformed: &CoeffImage, t: Option<&Transformation>) -> Option<CoeffImage> {
        match t {
            None => Some(transformed.clone()),
            _ => None, // PSP cannot decode, so no transformation exists
        }
    }
    fn psp_can_decode(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::{Rgb, RgbImage};

    fn coeff() -> CoeffImage {
        let img = RgbImage::from_fn(64, 64, |x, y| {
            Rgb::new(
                (40 + (x * 5 + y) % 170) as u8,
                (50 + (x + y * 3) % 150) as u8,
                (60 + (x * 2 + y * 2) % 120) as u8,
            )
        });
        CoeffImage::from_rgb(&img, 75)
    }

    #[test]
    fn sign_flip_roundtrips() {
        let c = coeff();
        let s = SignFlip { seed: 7 };
        let enc = s.encrypt(&c);
        assert_ne!(enc, c);
        assert_eq!(s.recover(&enc, None).unwrap(), c);
    }

    #[test]
    fn sign_flip_hides_content() {
        let c = coeff();
        let s = SignFlip { seed: 7 };
        let enc = s.encrypt(&c);
        let psnr = psnr_rgb(&c.to_rgb(), &enc.to_rgb());
        assert!(psnr < 22.0, "sign flip too weak: {psnr}");
    }

    #[test]
    fn sign_flip_survives_rotation() {
        let c = coeff();
        let s = SignFlip { seed: 9 };
        let enc = s.encrypt(&c);
        let t = Transformation::Rotate90;
        let transformed = t.apply_to_coeff(&enc).unwrap();
        let rec = s.recover(&transformed, Some(&t)).unwrap();
        let want = t.apply_to_coeff(&c).unwrap();
        assert_eq!(rec, want);
    }

    #[test]
    fn permute_roundtrips_and_survives_rotation() {
        let c = coeff();
        let s = PermuteBlock { seed: 3 };
        let enc = s.encrypt(&c);
        assert_ne!(enc, c);
        assert_eq!(s.recover(&enc, None).unwrap(), c);
        let t = Transformation::Rotate180;
        let transformed = t.apply_to_coeff(&enc).unwrap();
        let rec = s.recover(&transformed, Some(&t)).unwrap();
        assert_eq!(rec, t.apply_to_coeff(&c).unwrap());
    }

    #[test]
    fn dqt_scramble_hides_and_recovers() {
        let c = coeff();
        let s = DqtScramble {
            seed: 5,
            quality: 75,
        };
        let enc = s.encrypt(&c);
        let psnr = psnr_rgb(&c.to_rgb(), &enc.to_rgb());
        assert!(psnr < 25.0, "DQT scramble too weak: {psnr}");
        let rec = s.recover(&enc, None).unwrap();
        assert_eq!(rec.to_rgb(), c.to_rgb());
    }

    #[test]
    fn unsupported_transforms_return_none() {
        let c = coeff();
        let scale = Transformation::Scale {
            width: 32,
            height: 32,
            filter: puppies_transform::ScaleFilter::Bilinear,
        };
        assert!(SignFlip { seed: 1 }.recover(&c, Some(&scale)).is_none());
        assert!(PermuteBlock { seed: 1 }.recover(&c, Some(&scale)).is_none());
        assert!(MhtEncrypt.recover(&c, Some(&scale)).is_none());
        assert!(!MhtEncrypt.psp_can_decode());
    }
}
