//! `repro` — runs the reproduction experiments.
//!
//! ```text
//! repro [--quick|--full] all          # everything, in index order
//! repro [--quick|--full] table2 fig18 # specific experiments
//! repro list                          # what exists
//! ```

use puppies_experiments::{registry, Ctx, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut selected: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            other => selected.push(other.to_string()),
        }
    }
    let reg = registry();
    if selected.is_empty() || selected.iter().any(|s| s == "list") {
        println!("available experiments (run with `repro <name>...` or `repro all`):");
        for (name, (desc, _)) in &reg {
            println!("  {name:<18} {desc}");
        }
        return;
    }
    let ctx = Ctx::new(scale);
    let run_all = selected.iter().any(|s| s == "all");
    let t0 = std::time::Instant::now();
    if run_all {
        for (name, (desc, f)) in &reg {
            eprintln!("[repro] {name}: {desc}");
            f(&ctx);
        }
    } else {
        for name in &selected {
            match reg.get(name.as_str()) {
                Some((desc, f)) => {
                    eprintln!("[repro] {name}: {desc}");
                    f(&ctx);
                }
                None => {
                    eprintln!("unknown experiment {name:?}; try `repro list`");
                    std::process::exit(2);
                }
            }
        }
    }
    eprintln!(
        "[repro] done in {:.1}s (outputs under {})",
        t0.elapsed().as_secs_f64(),
        ctx.out_dir.display()
    );
}
