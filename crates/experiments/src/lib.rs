//! Reproduction harness: one runnable experiment per table and figure of
//! the paper's evaluation (§V–§VI). See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Run everything with `cargo run -p puppies-experiments --release -- all`
//! or a single experiment with e.g. `-- table2`. `--quick` shrinks the
//! dataset counts for smoke runs; `--full` approaches paper scale.

pub mod baselines;
pub mod exp;
pub mod util;

use std::collections::BTreeMap;

/// Experiment scale knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny datasets for CI smoke runs.
    Quick,
    /// Laptop-sized defaults (a few minutes for the full suite).
    Default,
    /// Counts approaching the paper's (hours).
    Full,
}

impl Scale {
    /// Scales a default count.
    pub fn count(self, quick: usize, default: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Context shared by every experiment.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Scale knob.
    pub scale: Scale,
    /// RNG/dataset seed (fixed for reproducibility).
    pub seed: u64,
    /// Directory for image dumps and result files.
    pub out_dir: std::path::PathBuf,
}

impl Ctx {
    /// Standard context at the given scale.
    pub fn new(scale: Scale) -> Ctx {
        let out_dir = std::path::PathBuf::from("results");
        std::fs::create_dir_all(&out_dir).ok();
        Ctx {
            scale,
            seed: 0x9E37_2026,
            out_dir,
        }
    }
}

type ExpFn = fn(&Ctx);

/// Registry of all experiments, keyed by their CLI name.
pub fn registry() -> BTreeMap<&'static str, (&'static str, ExpFn)> {
    let mut m: BTreeMap<&'static str, (&'static str, ExpFn)> = BTreeMap::new();
    m.insert(
        "table1",
        (
            "Table I: transformation-compatibility matrix",
            exp::table1::run,
        ),
    );
    m.insert(
        "table2",
        (
            "Table II: normalized perturbed size (PASCAL, whole image)",
            exp::table2::run,
        ),
    );
    m.insert("table3", ("Table III: dataset inventory", exp::table3::run));
    m.insert(
        "table4",
        ("Table IV: privacy levels and secure bits", exp::table4::run),
    );
    m.insert(
        "table5",
        ("Table V: encryption/decryption wall time", exp::table5::run),
    );
    m.insert(
        "fig2",
        (
            "Fig. 2: retrieval overlap original vs perturbed query",
            exp::fig02::run,
        ),
    );
    m.insert(
        "fig4",
        (
            "Fig. 4: PSP scaling — P3 detail loss vs PuPPIeS recovery",
            exp::fig04::run,
        ),
    );
    m.insert(
        "fig11",
        (
            "Fig. 11: private-part size vs number of matrices",
            exp::fig11::run,
        ),
    );
    m.insert(
        "fig12",
        ("Fig. 12: ROI detection and disjoint split", exp::fig12::run),
    );
    m.insert(
        "fig13",
        (
            "Figs. 13-14: DC-only vs AC-only reconstructions",
            exp::fig13::run,
        ),
    );
    m.insert(
        "fig15",
        (
            "Fig. 15: perturbing a license plate with B/C/Z",
            exp::fig15::run,
        ),
    );
    m.insert(
        "fig16",
        ("Fig. 16: scale-then-recover flow", exp::fig16::run),
    );
    m.insert(
        "fig17",
        ("Fig. 17: perturbed size vs privacy level", exp::fig17::run),
    );
    m.insert(
        "fig18",
        ("Fig. 18: public-part size vs ROI area", exp::fig18::run),
    );
    m.insert(
        "fig19",
        ("Fig. 19: public/private split accounting", exp::fig19::run),
    );
    m.insert("fig20", ("Fig. 20: SIFT feature attack", exp::fig20::run));
    m.insert(
        "fig21",
        ("Fig. 21: edge-detection attack CDF", exp::fig21::run),
    );
    m.insert(
        "fig22",
        ("Fig. 22: face-recognition rank curve", exp::fig22::run),
    );
    m.insert(
        "fig23",
        ("Fig. 23: signal-correlation attacks", exp::fig23::run),
    );
    m.insert(
        "bruteforce",
        (
            "§VI-A: brute-force accounting + demos",
            exp::bruteforce::run,
        ),
    );
    m.insert(
        "detect_time",
        ("§V-C: ROI detection timing", exp::detect_time::run),
    );
    m.insert(
        "ablation_nb",
        (
            "Ablation: PuPPIeS-N vs -B under the DC sweep",
            exp::ablation_nb::run,
        ),
    );
    m.insert(
        "ablation_huffman",
        (
            "Ablation: Huffman re-optimization (the C-vs-B mechanism)",
            exp::ablation_huffman::run,
        ),
    );
    m
}
