//! Property-based invariants of the pixel substrate.

use proptest::prelude::*;
use puppies_image::geometry::decompose_disjoint;
use puppies_image::resample::{self, Filter};
use puppies_image::{Rect, Rgb, RgbImage};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..64, 0u32..64, 1u32..48, 1u32..48).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_image() -> impl Strategy<Value = RgbImage> {
    (2u32..48, 2u32..48, any::<u32>()).prop_map(|(w, h, seed)| {
        RgbImage::from_fn(w, h, |x, y| {
            let v = x
                .wrapping_mul(seed | 1)
                .wrapping_add(y.wrapping_mul(seed.rotate_left(7) | 1));
            Rgb::new(
                (v % 256) as u8,
                ((v >> 8) % 256) as u8,
                ((v >> 16) % 256) as u8,
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn rect_intersection_is_contained(a in arb_rect(), b in arb_rect()) {
        let i = a.intersect(b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
        }
        let u = a.union(b);
        prop_assert!(u.contains_rect(a));
        prop_assert!(u.contains_rect(b));
    }

    #[test]
    fn rect_iou_is_symmetric_and_bounded(a in arb_rect(), b in arb_rect()) {
        let ab = a.iou(b);
        let ba = b.iou(a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn align_to_contains_original_when_unclipped(r in arb_rect()) {
        let aligned = r.align_to(8, 256, 256);
        prop_assert!(aligned.contains_rect(r));
        prop_assert_eq!(aligned.x % 8, 0);
        prop_assert_eq!(aligned.y % 8, 0);
        prop_assert_eq!(aligned.w % 8, 0);
        prop_assert_eq!(aligned.h % 8, 0);
    }

    #[test]
    fn decompose_disjoint_preserves_coverage(
        rects in proptest::collection::vec(arb_rect(), 0..6),
    ) {
        let parts = decompose_disjoint(&rects);
        // Pairwise disjoint.
        for (i, a) in parts.iter().enumerate() {
            for b in &parts[i + 1..] {
                prop_assert!(!a.overlaps(*b), "{:?} overlaps {:?}", a, b);
            }
        }
        // Area equality with the union.
        let union_area: u64 = parts.iter().map(|r| r.area()).sum();
        // Count covered cells on a grid (inputs are < 112 in extent).
        let mut covered = 0u64;
        for y in 0..120u32 {
            for x in 0..120u32 {
                if rects.iter().any(|r| r.contains(x, y)) {
                    covered += 1;
                }
            }
        }
        prop_assert_eq!(union_area, covered);
    }

    #[test]
    fn flips_and_rotations_are_bijective(img in arb_image()) {
        prop_assert_eq!(resample::rotate270(&resample::rotate90(&img)), img.clone());
        prop_assert_eq!(resample::rotate180(&resample::rotate180(&img)), img.clone());
        prop_assert_eq!(
            resample::flip_horizontal(&resample::flip_horizontal(&img)),
            img.clone()
        );
        prop_assert_eq!(resample::flip_vertical(&resample::flip_vertical(&img)), img);
    }

    #[test]
    fn identity_scale_is_lossless(img in arb_image()) {
        for f in [Filter::Nearest, Filter::Bilinear, Filter::Box] {
            prop_assert_eq!(
                resample::scale_rgb(&img, img.width(), img.height(), f),
                img.clone()
            );
        }
    }

    #[test]
    fn scaling_preserves_value_range(img in arb_image(), nw in 1u32..64, nh in 1u32..64) {
        let out = resample::scale_rgb(&img, nw, nh, Filter::Box);
        prop_assert_eq!((out.width(), out.height()), (nw, nh));
        // Box filtering is an average: output values stay within the input
        // min/max per channel.
        let (mut lo, mut hi) = (255u8, 0u8);
        for p in img.pixels() {
            lo = lo.min(p.r);
            hi = hi.max(p.r);
        }
        for p in out.pixels() {
            prop_assert!(p.r >= lo.saturating_sub(1) && p.r <= hi.saturating_add(1));
        }
    }

    #[test]
    fn ppm_io_roundtrips(img in arb_image()) {
        let mut buf = Vec::new();
        puppies_image::io::write_ppm(&img, &mut buf).unwrap();
        prop_assert_eq!(puppies_image::io::read_ppm(&buf[..]).unwrap(), img);
    }

    #[test]
    fn integral_image_matches_naive(img in arb_image(), r in arb_rect()) {
        let gray = img.to_gray();
        let ii = puppies_image::integral::IntegralImage::build(&gray);
        let clipped = r.intersect(gray.bounds());
        let mut naive = 0u64;
        for y in clipped.y..clipped.bottom() {
            for x in clipped.x..clipped.right() {
                naive += gray.get(x, y) as u64;
            }
        }
        prop_assert_eq!(ii.sum(r), naive);
    }

    #[test]
    fn psnr_identity_and_symmetry(img in arb_image(), other in arb_image()) {
        use puppies_image::metrics::psnr_gray;
        let a = img.to_gray();
        prop_assert_eq!(psnr_gray(&a, &a), f64::INFINITY);
        if (other.width(), other.height()) == (img.width(), img.height()) {
            let b = other.to_gray();
            prop_assert!((psnr_gray(&a, &b) - psnr_gray(&b, &a)).abs() < 1e-9);
        }
    }

    #[test]
    fn gray_conversion_bounded(img in arb_image()) {
        // Luma of any pixel lies between its channel min and max.
        let gray = img.to_gray();
        for (p, &g) in img.pixels().iter().zip(gray.pixels()) {
            let lo = p.r.min(p.g).min(p.b);
            let hi = p.r.max(p.g).max(p.b);
            prop_assert!(g >= lo.saturating_sub(1) && g <= hi.saturating_add(1));
        }
    }
}
