//! Convolution and standard kernels (Gaussian, Sobel, box).
//!
//! Used both by the PSP "filtering" transformation (§II-B) and by the vision
//! substrate (Canny, pyramids, geometric blur).

use crate::buffer::Plane;

/// A dense 2-D convolution kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    width: u32,
    height: u32,
    weights: Vec<f32>,
}

impl Kernel {
    /// Creates a kernel from row-major weights.
    ///
    /// # Panics
    /// Panics if the dimensions are zero, even, or do not match the weight
    /// count (odd sizes keep the anchor centered).
    pub fn new(width: u32, height: u32, weights: Vec<f32>) -> Self {
        assert!(
            width % 2 == 1 && height % 2 == 1,
            "kernel sides must be odd"
        );
        assert_eq!(
            weights.len(),
            (width * height) as usize,
            "weight count mismatch"
        );
        Kernel {
            width,
            height,
            weights,
        }
    }

    /// Kernel width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Kernel height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Row-major weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The normalized box (mean) kernel of the given odd side.
    pub fn boxcar(side: u32) -> Kernel {
        let n = (side * side) as usize;
        Kernel::new(side, side, vec![1.0 / n as f32; n])
    }

    /// Horizontal Sobel derivative kernel.
    pub fn sobel_x() -> Kernel {
        Kernel::new(3, 3, vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0])
    }

    /// Vertical Sobel derivative kernel.
    pub fn sobel_y() -> Kernel {
        Kernel::new(3, 3, vec![-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0])
    }

    /// 3×3 sharpening kernel (unsharp-style).
    pub fn sharpen() -> Kernel {
        Kernel::new(3, 3, vec![0.0, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0])
    }
}

/// Convolves `src` with `kernel` using replicate border handling.
pub fn convolve(src: &Plane, kernel: &Kernel) -> Plane {
    let kx = (kernel.width / 2) as i64;
    let ky = (kernel.height / 2) as i64;
    Plane::from_fn(src.width(), src.height(), |x, y| {
        let mut acc = 0.0f32;
        let mut wi = 0usize;
        for dy in -ky..=ky {
            for dx in -kx..=kx {
                acc += kernel.weights[wi] * src.get_clamped(x as i64 + dx, y as i64 + dy);
                wi += 1;
            }
        }
        acc
    })
}

/// Returns a 1-D Gaussian tap vector with `sigma`, truncated at 3σ and
/// normalized to sum 1.
pub fn gaussian_taps(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i32;
    let mut taps: Vec<f32> = (-radius..=radius)
        .map(|i| (-0.5 * (i as f32 / sigma).powi(2)).exp())
        .collect();
    let sum: f32 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Separable Gaussian blur with replicate borders.
///
/// # Panics
/// Panics if `sigma` is not positive.
pub fn gaussian_blur(src: &Plane, sigma: f32) -> Plane {
    let taps = gaussian_taps(sigma);
    let radius = (taps.len() / 2) as i64;
    // Horizontal pass.
    let hp = Plane::from_fn(src.width(), src.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, t) in taps.iter().enumerate() {
            acc += t * src.get_clamped(x as i64 + i as i64 - radius, y as i64);
        }
        acc
    });
    // Vertical pass.
    Plane::from_fn(src.width(), src.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, t) in taps.iter().enumerate() {
            acc += t * hp.get_clamped(x as i64, y as i64 + i as i64 - radius);
        }
        acc
    })
}

/// Gradient magnitude and orientation via Sobel operators.
///
/// Returns `(magnitude, orientation)` planes; orientation is in radians in
/// `(-π, π]`.
pub fn sobel_gradients(src: &Plane) -> (Plane, Plane) {
    let gx = convolve(src, &Kernel::sobel_x());
    let gy = convolve(src, &Kernel::sobel_y());
    let mag = Plane::from_fn(src.width(), src.height(), |x, y| {
        let (a, b) = (gx.get(x, y), gy.get(x, y));
        (a * a + b * b).sqrt()
    });
    let ori = Plane::from_fn(src.width(), src.height(), |x, y| {
        gy.get(x, y).atan2(gx.get(x, y))
    });
    (mag, ori)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxcar_preserves_constant() {
        let p = Plane::from_fn(10, 10, |_, _| 42.0);
        let out = convolve(&p, &Kernel::boxcar(3));
        for &v in out.samples() {
            assert!((v - 42.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gaussian_taps_normalized_and_symmetric() {
        let taps = gaussian_taps(1.4);
        let sum: f32 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let n = taps.len();
        assert_eq!(n % 2, 1);
        for i in 0..n / 2 {
            assert!((taps[i] - taps[n - 1 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn gaussian_blur_preserves_mean() {
        let p = Plane::from_fn(32, 32, |x, y| ((x * y) % 255) as f32);
        let out = gaussian_blur(&p, 2.0);
        // Replicate borders keep the mean approximately.
        assert!((p.mean() - out.mean()).abs() < 4.0);
    }

    #[test]
    fn gaussian_blur_reduces_variance() {
        let p = Plane::from_fn(32, 32, |x, _| if x % 2 == 0 { 0.0 } else { 255.0 });
        let out = gaussian_blur(&p, 1.5);
        let var = |q: &Plane| {
            let m = q.mean();
            q.samples()
                .iter()
                .map(|&v| (v as f64 - m).powi(2))
                .sum::<f64>()
                / q.samples().len() as f64
        };
        assert!(var(&out) < var(&p) / 10.0);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let p = Plane::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 255.0 });
        let (mag, ori) = sobel_gradients(&p);
        // Strongest response at the edge column.
        assert!(mag.get(8, 8) > 500.0);
        assert!(mag.get(2, 8) < 1.0);
        // Gradient points along +x (orientation ~ 0).
        assert!(ori.get(8, 8).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Kernel::new(2, 2, vec![0.0; 4]);
    }

    #[test]
    fn sharpen_increases_edge_contrast() {
        let p = Plane::from_fn(16, 16, |x, _| if x < 8 { 100.0 } else { 150.0 });
        let out = convolve(&p, &Kernel::sharpen());
        let (lo, hi) = out.min_max();
        assert!(lo < 100.0 && hi > 150.0, "overshoot expected: {lo} {hi}");
    }
}
