//! Pixel buffers: [`RgbImage`], [`GrayImage`] and the float [`Plane`].

use crate::color::Rgb;
use crate::geometry::Rect;
use crate::{ImageError, Result};

/// A dense 8-bit RGB raster, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: u32,
    height: u32,
    data: Vec<Rgb>,
}

impl RgbImage {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        RgbImage {
            width,
            height,
            data: vec![Rgb::BLACK; (width as usize) * (height as usize)],
        }
    }

    /// Creates an image filled with `color`.
    pub fn filled(width: u32, height: u32, color: Rgb) -> Self {
        let mut img = RgbImage::new(width, height);
        img.data.fill(color);
        img
    }

    /// Builds an image from a closure invoked per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Rgb) -> Self {
        let mut img = RgbImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The full-image rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        self.data[self.idx(x, y)]
    }

    /// Returns the pixel, clamping the coordinate to the image border
    /// (replicate padding).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> Rgb {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Rgb) {
        let i = self.idx(x, y);
        self.data[i] = c;
    }

    /// Immutable access to the raw pixel slice (row-major).
    pub fn pixels(&self) -> &[Rgb] {
        &self.data
    }

    /// Mutable access to the raw pixel slice (row-major).
    pub fn pixels_mut(&mut self) -> &mut [Rgb] {
        &mut self.data
    }

    /// Extracts a copy of the pixels under `rect`.
    ///
    /// # Errors
    /// Returns [`ImageError::OutOfBounds`] if `rect` is not fully inside the
    /// image.
    pub fn crop(&self, rect: Rect) -> Result<RgbImage> {
        if rect.is_empty() || !self.bounds().contains_rect(rect) {
            return Err(ImageError::OutOfBounds {
                rect,
                width: self.width,
                height: self.height,
            });
        }
        let mut out = RgbImage::new(rect.w, rect.h);
        for y in 0..rect.h {
            for x in 0..rect.w {
                out.set(x, y, self.get(rect.x + x, rect.y + y));
            }
        }
        Ok(out)
    }

    /// Copies `src` into this image with its top-left corner at `(x, y)`,
    /// clipping at the borders.
    pub fn blit(&mut self, src: &RgbImage, x: u32, y: u32) {
        let w = src.width.min(self.width.saturating_sub(x));
        let h = src.height.min(self.height.saturating_sub(y));
        for dy in 0..h {
            for dx in 0..w {
                self.set(x + dx, y + dy, src.get(dx, dy));
            }
        }
    }

    /// Converts to a single-channel luma image.
    pub fn to_gray(&self) -> GrayImage {
        let mut g = GrayImage::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                g.set(x, y, self.get(x, y).luma());
            }
        }
        g
    }

    /// Splits into full-range Y, Cb, Cr planes.
    pub fn to_ycbcr_planes(&self) -> [Plane; 3] {
        let (y, cb, cr) = crate::color::rgb_to_ycbcr_vecs(&self.data);
        [
            Plane::from_raw(self.width, self.height, y),
            Plane::from_raw(self.width, self.height, cb),
            Plane::from_raw(self.width, self.height, cr),
        ]
    }

    /// Reassembles an RGB image from Y, Cb, Cr planes, rounding and clamping
    /// each channel to 8 bits.
    ///
    /// # Panics
    /// Panics if the planes disagree in size.
    pub fn from_ycbcr_planes(planes: &[Plane; 3]) -> RgbImage {
        let (w, h) = (planes[0].width(), planes[0].height());
        assert!(
            planes.iter().all(|p| p.width() == w && p.height() == h),
            "plane sizes differ"
        );
        let mut img = RgbImage::new(w, h);
        crate::color::ycbcr_to_rgb_slice(
            planes[0].samples(),
            planes[1].samples(),
            planes[2].samples(),
            &mut img.data,
        );
        img
    }
}

/// A dense 8-bit single-channel raster, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image of the given size.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            data: vec![0; (width as usize) * (height as usize)],
        }
    }

    /// Creates an image filled with `value`.
    pub fn filled(width: u32, height: u32, value: u8) -> Self {
        let mut img = GrayImage::new(width, height);
        img.data.fill(value);
        img
    }

    /// Builds an image from a closure invoked per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The full-image rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.data[self.idx(x, y)]
    }

    /// Returns the pixel, clamping the coordinate to the image border.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Immutable access to the raw pixel slice (row-major).
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw pixel slice (row-major).
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Fills a rectangle (clipped to the image) with `value`.
    pub fn fill_rect(&mut self, rect: Rect, value: u8) {
        let r = rect.intersect(self.bounds());
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                self.set(x, y, value);
            }
        }
    }

    /// Extracts a copy of the pixels under `rect`.
    ///
    /// # Errors
    /// Returns [`ImageError::OutOfBounds`] if `rect` is not fully inside the
    /// image.
    pub fn crop(&self, rect: Rect) -> Result<GrayImage> {
        if rect.is_empty() || !self.bounds().contains_rect(rect) {
            return Err(ImageError::OutOfBounds {
                rect,
                width: self.width,
                height: self.height,
            });
        }
        let mut out = GrayImage::new(rect.w, rect.h);
        for y in 0..rect.h {
            for x in 0..rect.w {
                out.set(x, y, self.get(rect.x + x, rect.y + y));
            }
        }
        Ok(out)
    }

    /// Converts to a float plane.
    pub fn to_plane(&self) -> Plane {
        let mut p = Plane::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                p.set(x, y, self.get(x, y) as f32);
            }
        }
        p
    }

    /// Converts to an RGB image with equal channels.
    pub fn to_rgb(&self) -> RgbImage {
        RgbImage::from_fn(self.width, self.height, |x, y| {
            let v = self.get(x, y);
            Rgb::new(v, v, v)
        })
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        let sum: u64 = self.data.iter().map(|&v| v as u64).sum();
        sum as f64 / self.data.len() as f64
    }
}

/// A single-channel `f32` raster used for frequency-domain and filtering
/// math where 8 bits would truncate intermediates.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl Plane {
    /// Creates a zero plane of the given size.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![0.0; (width as usize) * (height as usize)],
        }
    }

    /// Wraps an existing row-major sample vector as a plane, avoiding the
    /// zero-fill and copy of going through [`Plane::new`].
    ///
    /// # Panics
    /// Panics if either dimension is zero or `data` has the wrong length.
    pub fn from_raw(width: u32, height: u32, data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        assert_eq!(
            data.len(),
            (width as usize) * (height as usize),
            "sample vector length must be width*height"
        );
        Plane {
            width,
            height,
            data,
        }
    }

    /// Builds a plane from a closure invoked per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> f32) -> Self {
        let mut p = Plane::new(width, height);
        for y in 0..height {
            for x in 0..width {
                p.set(x, y, f(x, y));
            }
        }
        p
    }

    /// Plane width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    /// Returns the sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.data[self.idx(x, y)]
    }

    /// Returns the sample, clamping the coordinate to the border.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Writes the sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Immutable access to the raw sample slice (row-major).
    pub fn samples(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw sample slice (row-major).
    pub fn samples_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Rounds and clamps each sample to 8 bits.
    pub fn to_gray(&self) -> GrayImage {
        let mut g = GrayImage::new(self.width, self.height);
        for (out, &v) in g.data.iter_mut().zip(self.data.iter()) {
            *out = crate::color::round_clamp_u8(v);
        }
        g
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Minimum and maximum sample values.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_get_set_roundtrip() {
        let mut img = RgbImage::new(4, 3);
        img.set(2, 1, Rgb::new(9, 8, 7));
        assert_eq!(img.get(2, 1), Rgb::new(9, 8, 7));
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.pixels().len(), 12);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimensions_panic() {
        let _ = RgbImage::new(0, 10);
    }

    #[test]
    fn crop_out_of_bounds_errors() {
        let img = GrayImage::new(10, 10);
        assert!(img.crop(Rect::new(5, 5, 10, 10)).is_err());
        assert!(img.crop(Rect::new(0, 0, 0, 0)).is_err());
        assert!(img.crop(Rect::new(0, 0, 10, 10)).is_ok());
    }

    #[test]
    fn crop_extracts_expected_pixels() {
        let img = GrayImage::from_fn(8, 8, |x, y| (y * 8 + x) as u8);
        let c = img.crop(Rect::new(2, 3, 3, 2)).unwrap();
        assert_eq!(c.get(0, 0), 3 * 8 + 2);
        assert_eq!(c.get(2, 1), 4 * 8 + 4);
    }

    #[test]
    fn blit_clips_at_border() {
        let mut dst = RgbImage::new(8, 8);
        let src = RgbImage::filled(4, 4, Rgb::WHITE);
        dst.blit(&src, 6, 6);
        assert_eq!(dst.get(7, 7), Rgb::WHITE);
        assert_eq!(dst.get(5, 5), Rgb::BLACK);
    }

    #[test]
    fn ycbcr_plane_roundtrip_nearly_identity() {
        let img = RgbImage::from_fn(16, 16, |x, y| {
            Rgb::new((x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8)
        });
        let planes = img.to_ycbcr_planes();
        let back = RgbImage::from_ycbcr_planes(&planes);
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a.r as i32 - b.r as i32).abs() <= 2);
            assert!((a.g as i32 - b.g as i32).abs() <= 2);
            assert!((a.b as i32 - b.b as i32).abs() <= 2);
        }
    }

    #[test]
    fn clamped_access_replicates_border() {
        let img = GrayImage::from_fn(4, 4, |x, _| (x * 10) as u8);
        assert_eq!(img.get_clamped(-5, 0), 0);
        assert_eq!(img.get_clamped(100, 2), 30);
    }

    #[test]
    fn plane_min_max_and_mean() {
        let mut p = Plane::new(2, 2);
        p.set(0, 0, -1.0);
        p.set(1, 1, 5.0);
        assert_eq!(p.min_max(), (-1.0, 5.0));
        assert!((p.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = GrayImage::new(4, 4);
        img.fill_rect(Rect::new(2, 2, 10, 10), 7);
        assert_eq!(img.get(3, 3), 7);
        assert_eq!(img.get(1, 1), 0);
    }

    #[test]
    fn gray_mean() {
        let img = GrayImage::filled(5, 5, 10);
        assert!((img.mean() - 10.0).abs() < 1e-12);
    }
}
