//! Image quality and similarity metrics.
//!
//! The reproduction quantifies claims the paper makes visually: "the
//! recovered image is exactly the same" (Fig. 4, Fig. 16) becomes a PSNR
//! assertion; "many fine details are lost" becomes a PSNR gap; the user
//! study (§VI-B) becomes the [`recognizability`] structural score.

use crate::buffer::{GrayImage, RgbImage};

/// Mean squared error between two grayscale images.
///
/// # Panics
/// Panics if the images differ in size.
pub fn mse_gray(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "image sizes differ"
    );
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.pixels().len() as f64
}

/// Mean squared error between two RGB images (averaged over channels).
///
/// # Panics
/// Panics if the images differ in size.
pub fn mse_rgb(a: &RgbImage, b: &RgbImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "image sizes differ"
    );
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| {
            let dr = x.r as f64 - y.r as f64;
            let dg = x.g as f64 - y.g as f64;
            let db = x.b as f64 - y.b as f64;
            dr * dr + dg * dg + db * db
        })
        .sum();
    sum / (a.pixels().len() as f64 * 3.0)
}

/// Peak signal-to-noise ratio in dB for 8-bit images; `f64::INFINITY` for
/// identical inputs.
///
/// # Panics
/// Panics if the images differ in size.
pub fn psnr_rgb(a: &RgbImage, b: &RgbImage) -> f64 {
    mse_to_psnr(mse_rgb(a, b))
}

/// Grayscale PSNR in dB; `f64::INFINITY` for identical inputs.
///
/// # Panics
/// Panics if the images differ in size.
pub fn psnr_gray(a: &GrayImage, b: &GrayImage) -> f64 {
    mse_to_psnr(mse_gray(a, b))
}

/// Converts an MSE value to PSNR for 8-bit data.
pub fn mse_to_psnr(mse: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Maximum absolute channel difference between two RGB images.
///
/// # Panics
/// Panics if the images differ in size.
pub fn max_abs_diff_rgb(a: &RgbImage, b: &RgbImage) -> u8 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "image sizes differ"
    );
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| {
            let dr = (x.r as i16 - y.r as i16).unsigned_abs();
            let dg = (x.g as i16 - y.g as i16).unsigned_abs();
            let db = (x.b as i16 - y.b as i16).unsigned_abs();
            dr.max(dg).max(db) as u8
        })
        .max()
        .unwrap_or(0)
}

/// 256-bin histogram of a grayscale image.
pub fn histogram(img: &GrayImage) -> [u32; 256] {
    let mut h = [0u32; 256];
    for &v in img.pixels() {
        h[v as usize] += 1;
    }
    h
}

/// Histogram intersection similarity in `[0, 1]` (1 = identical
/// distributions).
///
/// # Panics
/// Panics if the images differ in pixel count.
pub fn histogram_intersection(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.pixels().len(), b.pixels().len(), "pixel counts differ");
    let (ha, hb) = (histogram(a), histogram(b));
    let inter: u64 = ha
        .iter()
        .zip(hb.iter())
        .map(|(&x, &y)| x.min(y) as u64)
        .sum();
    inter as f64 / a.pixels().len() as f64
}

/// A structural-similarity proxy for "would a human recognize this as the
/// original?" in `[0, 1]`.
///
/// Per 8×8 tile it combines SSIM-style luminance, contrast and structure
/// terms; tile scores are then averaged *weighted by the original tile's
/// contrast*, so the verdict hinges on whether the content-bearing parts
/// of the original (strokes, edges, features) are reproduced — a flat fill
/// over text scores near zero even though most of the canvas matches.
/// Used as the machine proxy for the paper's MTurk study (§VI-B).
///
/// # Panics
/// Panics if the images differ in size.
pub fn recognizability(original: &GrayImage, candidate: &GrayImage) -> f64 {
    assert_eq!(
        (original.width(), original.height()),
        (candidate.width(), candidate.height()),
        "image sizes differ"
    );
    let tile = 8u32;
    let mut weighted = 0.0f64;
    let mut weight_sum = 0.0f64;
    for ty in (0..original.height()).step_by(tile as usize) {
        for tx in (0..original.width()).step_by(tile as usize) {
            let w = tile.min(original.width() - tx);
            let h = tile.min(original.height() - ty);
            if w < 2 || h < 2 {
                continue;
            }
            let mut xs = Vec::with_capacity((w * h) as usize);
            let mut ys = Vec::with_capacity((w * h) as usize);
            for y in ty..ty + h {
                for x in tx..tx + w {
                    xs.push(original.get(x, y) as f64);
                    ys.push(candidate.get(x, y) as f64);
                }
            }
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let mut cov = 0.0;
            let mut vx = 0.0;
            let mut vy = 0.0;
            for i in 0..xs.len() {
                cov += (xs[i] - mx) * (ys[i] - my);
                vx += (xs[i] - mx).powi(2);
                vy += (ys[i] - my).powi(2);
            }
            cov /= n;
            vx /= n;
            vy /= n;
            const C1: f64 = 6.5025; // (0.01 * 255)^2
            const C2: f64 = 58.5225; // (0.03 * 255)^2
            let lum = (2.0 * mx * my + C1) / (mx * mx + my * my + C1);
            let contrast = (2.0 * (vx * vy).sqrt() + C2) / (vx + vy + C2);
            let structure = (cov + C2 / 2.0) / ((vx * vy).sqrt() + C2 / 2.0);
            let tile_score = (lum * contrast * structure).clamp(0.0, 1.0);
            // Weight by the original tile's contrast so content-bearing
            // tiles dominate; flat background barely counts.
            let weight = vx.sqrt() + 1.0;
            weighted += tile_score * weight;
            weight_sum += weight;
        }
    }
    if weight_sum == 0.0 {
        return 0.0;
    }
    (weighted / weight_sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 29 + (x * y) % 17) % 256) as u8)
    }

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = textured(32, 32);
        assert_eq!(psnr_gray(&img, &img), f64::INFINITY);
        assert_eq!(mse_gray(&img, &img), 0.0);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let img = textured(32, 32);
        let mut off1 = img.clone();
        let mut off8 = img.clone();
        for p in off1.pixels_mut() {
            *p = p.saturating_add(1);
        }
        for p in off8.pixels_mut() {
            *p = p.saturating_add(8);
        }
        assert!(psnr_gray(&img, &off1) > psnr_gray(&img, &off8));
        // +1 offset: MSE == 1 -> PSNR ~ 48.13 dB.
        assert!((psnr_gray(&img, &off1) - 48.13).abs() < 0.2);
    }

    #[test]
    fn max_abs_diff_detects_single_pixel() {
        let a = RgbImage::new(4, 4);
        let mut b = a.clone();
        b.set(2, 2, crate::Rgb::new(0, 9, 0));
        assert_eq!(max_abs_diff_rgb(&a, &b), 9);
        assert_eq!(max_abs_diff_rgb(&a, &a), 0);
    }

    #[test]
    fn histogram_counts_pixels() {
        let img = GrayImage::filled(4, 4, 9);
        let h = histogram(&img);
        assert_eq!(h[9], 16);
        assert_eq!(h.iter().sum::<u32>(), 16);
    }

    #[test]
    fn histogram_intersection_bounds() {
        let a = textured(16, 16);
        let inv = GrayImage::from_fn(16, 16, |x, y| 255 - a.get(x, y));
        assert!((histogram_intersection(&a, &a) - 1.0).abs() < 1e-12);
        assert!(histogram_intersection(&a, &inv) < 1.0);
    }

    #[test]
    fn recognizability_is_high_for_identity_low_for_noise() {
        let img = textured(64, 64);
        let self_score = recognizability(&img, &img);
        assert!(self_score > 0.95, "self score {self_score}");
        // A decorrelated scramble should score much lower.
        let scrambled = GrayImage::from_fn(64, 64, |x, y| {
            ((x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503)) % 256) as u8
        });
        let noise_score = recognizability(&img, &scrambled);
        assert!(
            noise_score < self_score / 2.0,
            "noise {noise_score} vs self {self_score}"
        );
    }

    #[test]
    fn recognizability_flat_images_match() {
        let a = GrayImage::filled(32, 32, 128);
        assert!(recognizability(&a, &a) > 0.99);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn size_mismatch_panics() {
        let a = GrayImage::new(4, 4);
        let b = GrayImage::new(5, 4);
        let _ = mse_gray(&a, &b);
    }
}
