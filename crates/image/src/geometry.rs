//! Geometry primitives: points and axis-aligned rectangles.
//!
//! ROIs in PuPPIeS are rectangles; the detector stack merges overlapping
//! detections and splits them back into disjoint rectangles (§IV-A), which
//! [`decompose_disjoint`] implements.

/// An integer pixel coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Column (0 at the left edge).
    pub x: i32,
    /// Row (0 at the top edge).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangle in pixel coordinates.
///
/// `x`/`y` is the top-left corner; `w`/`h` are the width and height in
/// pixels. Empty rectangles (`w == 0 || h == 0`) are permitted and behave as
/// the empty set for intersection queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Whether the rectangle contains no pixels.
    pub const fn is_empty(self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Number of pixels covered.
    pub const fn area(self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Exclusive right edge. Saturates at `u32::MAX`: rectangles built
    /// from untrusted wire bytes (mutated `PublicParams`) can place
    /// `x + w` past the integer range, and such a rect must compare as
    /// out-of-bounds rather than panic in debug builds.
    pub const fn right(self) -> u32 {
        self.x.saturating_add(self.w)
    }

    /// Exclusive bottom edge. Saturates at `u32::MAX` (see [`Self::right`]).
    pub const fn bottom(self) -> u32 {
        self.y.saturating_add(self.h)
    }

    /// Whether the pixel `(x, y)` lies inside the rectangle.
    pub const fn contains(self, x: u32, y: u32) -> bool {
        x >= self.x && y >= self.y && x < self.right() && y < self.bottom()
    }

    /// Whether `other` is entirely inside `self`.
    pub const fn contains_rect(self, other: Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// Intersection of two rectangles; empty if they do not overlap.
    pub fn intersect(self, other: Rect) -> Rect {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = self.right().min(other.right());
        let y2 = self.bottom().min(other.bottom());
        if x2 > x1 && y2 > y1 {
            Rect::new(x1, y1, x2 - x1, y2 - y1)
        } else {
            Rect::new(x1.min(self.right()).min(other.right()), y1, 0, 0)
        }
    }

    /// Smallest rectangle containing both operands.
    pub fn union(self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let x1 = self.x.min(other.x);
        let y1 = self.y.min(other.y);
        let x2 = self.right().max(other.right());
        let y2 = self.bottom().max(other.bottom());
        Rect::new(x1, y1, x2 - x1, y2 - y1)
    }

    /// Whether the rectangles share at least one pixel.
    pub fn overlaps(self, other: Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// Intersection-over-union, the standard detection-quality measure.
    pub fn iou(self, other: Rect) -> f64 {
        let inter = self.intersect(other).area();
        let union = self.area() + other.area() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// The rectangle grown by `margin` on every side, clamped to `bounds`.
    pub fn inflate_clamped(self, margin: u32, bounds: Rect) -> Rect {
        let x1 = self.x.saturating_sub(margin).max(bounds.x);
        let y1 = self.y.saturating_sub(margin).max(bounds.y);
        let x2 = (self.right() + margin).min(bounds.right());
        let y2 = (self.bottom() + margin).min(bounds.bottom());
        Rect::new(x1, y1, x2.saturating_sub(x1), y2.saturating_sub(y1))
    }

    /// The rectangle expanded outward so that all four edges land on
    /// multiples of `align` (e.g. 8 for JPEG block alignment), clamped to an
    /// image of the given size.
    pub fn align_to(self, align: u32, img_w: u32, img_h: u32) -> Rect {
        assert!(align > 0, "alignment must be positive");
        let x1 = (self.x / align) * align;
        let y1 = (self.y / align) * align;
        let x2 = self.right().div_ceil(align) * align;
        let y2 = self.bottom().div_ceil(align) * align;
        let x2 = x2.min(img_w);
        let y2 = y2.min(img_h);
        Rect::new(x1, y1, x2.saturating_sub(x1), y2.saturating_sub(y1))
    }
}

/// Splits a set of possibly-overlapping rectangles into disjoint rectangles
/// covering exactly the same pixels.
///
/// This is the "split the overall detected regions into disjoint regions"
/// step of §IV-A: the detector union is decomposed so each output rectangle
/// can be encrypted with its own private matrix. The algorithm sweeps the
/// distinct x-coordinates and emits maximal vertical slabs per column
/// interval, then merges horizontally-adjacent slabs with identical vertical
/// extent to keep the output small.
/// An x-strip of the sweep in [`decompose_disjoint`]: `(x1, x2)` plus the
/// merged y-intervals covering it.
type Strip = (u32, u32, Vec<(u32, u32)>);

pub fn decompose_disjoint(rects: &[Rect]) -> Vec<Rect> {
    let rects: Vec<Rect> = rects.iter().copied().filter(|r| !r.is_empty()).collect();
    if rects.is_empty() {
        return Vec::new();
    }
    // Collect the x breakpoints.
    let mut xs: Vec<u32> = rects.iter().flat_map(|r| [r.x, r.right()]).collect();
    xs.sort_unstable();
    xs.dedup();

    // For each x strip, compute the union of y intervals of rectangles
    // covering that strip.
    let mut strips: Vec<Strip> = Vec::new();
    for win in xs.windows(2) {
        let (x1, x2) = (win[0], win[1]);
        if x1 == x2 {
            continue;
        }
        let mut ivals: Vec<(u32, u32)> = rects
            .iter()
            .filter(|r| r.x <= x1 && r.right() >= x2)
            .map(|r| (r.y, r.bottom()))
            .collect();
        if ivals.is_empty() {
            continue;
        }
        ivals.sort_unstable();
        // Merge overlapping/adjacent y intervals.
        let mut merged: Vec<(u32, u32)> = Vec::new();
        for (a, b) in ivals {
            match merged.last_mut() {
                Some((_, e)) if *e >= a => *e = (*e).max(b),
                _ => merged.push((a, b)),
            }
        }
        strips.push((x1, x2, merged));
    }

    // Merge horizontally adjacent strips with identical interval sets.
    let mut out: Vec<Rect> = Vec::new();
    let mut pending: Option<Strip> = None;
    for (x1, x2, ivals) in strips {
        match pending.take() {
            Some((px1, px2, pivals)) if px2 == x1 && pivals == ivals => {
                pending = Some((px1, x2, pivals));
            }
            Some((px1, px2, pivals)) => {
                for (a, b) in &pivals {
                    out.push(Rect::new(px1, *a, px2 - px1, b - a));
                }
                pending = Some((x1, x2, ivals));
            }
            None => pending = Some((x1, x2, ivals)),
        }
    }
    if let Some((px1, px2, pivals)) = pending {
        for (a, b) in &pivals {
            out.push(Rect::new(px1, *a, px2 - px1, b - a));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(b), Rect::new(5, 5, 5, 5));
        assert_eq!(a.union(b), Rect::new(0, 0, 15, 15));
        assert!(a.overlaps(b));
    }

    #[test]
    fn disjoint_rects_do_not_overlap() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(5, 0, 5, 5);
        assert!(!a.overlaps(b));
        assert!(a.intersect(b).is_empty());
    }

    #[test]
    fn iou_of_identical_is_one() {
        let a = Rect::new(3, 4, 7, 9);
        assert!((a.iou(a) - 1.0).abs() < 1e-12);
        assert_eq!(a.iou(Rect::new(100, 100, 5, 5)), 0.0);
    }

    #[test]
    fn align_to_expands_outward() {
        let r = Rect::new(3, 5, 10, 10).align_to(8, 100, 100);
        assert_eq!(r, Rect::new(0, 0, 16, 16));
        // Clamped at the image border.
        let r = Rect::new(95, 95, 4, 4).align_to(8, 100, 100);
        assert_eq!(r, Rect::new(88, 88, 12, 12));
    }

    #[test]
    fn decompose_two_overlapping() {
        let parts = decompose_disjoint(&[Rect::new(0, 0, 10, 10), Rect::new(5, 5, 10, 10)]);
        // Same area as the union of the inputs.
        let total: u64 = parts.iter().map(|r| r.area()).sum();
        assert_eq!(total, 100 + 100 - 25);
        // Pairwise disjoint.
        for (i, a) in parts.iter().enumerate() {
            for b in &parts[i + 1..] {
                assert!(!a.overlaps(*b), "{a:?} overlaps {b:?}");
            }
        }
        // Every original pixel is covered.
        for y in 0..20 {
            for x in 0..20 {
                let inside_orig = Rect::new(0, 0, 10, 10).contains(x, y)
                    || Rect::new(5, 5, 10, 10).contains(x, y);
                let inside_parts = parts.iter().any(|r| r.contains(x, y));
                assert_eq!(inside_orig, inside_parts, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn decompose_handles_empty_and_duplicates() {
        assert!(decompose_disjoint(&[]).is_empty());
        let r = Rect::new(2, 2, 4, 4);
        let parts = decompose_disjoint(&[r, r, Rect::new(0, 0, 0, 0)]);
        assert_eq!(parts, vec![r]);
    }

    #[test]
    fn decompose_merges_adjacent_strips() {
        // A single rectangle should come back as one piece even though the
        // sweep sees it as one strip.
        let r = Rect::new(1, 1, 30, 5);
        assert_eq!(decompose_disjoint(&[r]), vec![r]);
    }

    #[test]
    fn inflate_clamps_at_bounds() {
        let bounds = Rect::new(0, 0, 20, 20);
        let r = Rect::new(1, 1, 3, 3).inflate_clamped(5, bounds);
        assert_eq!(r, Rect::new(0, 0, 9, 9));
    }
}
