//! RGB ⇄ YCbCr color conversion as used by baseline JPEG (JFIF full range,
//! ITU-R BT.601 coefficients).
//!
//! The JPEG pipeline in `puppies-jpeg` converts images to YCbCr before the
//! per-plane DCT; PuPPIeS perturbs each plane independently (§II-A of the
//! paper notes each layer is processed independently).

/// An 8-bit RGB color triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel, 0..=255.
    pub r: u8,
    /// Green channel, 0..=255.
    pub g: u8,
    /// Blue channel, 0..=255.
    pub b: u8,
}

impl Rgb {
    /// Creates a color from its components.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Pure black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// Pure white.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);

    /// Rec. 601 luma of the color, rounded to the nearest integer.
    pub fn luma(self) -> u8 {
        let y = 0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32;
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Linear interpolation between `self` and `other` with `t` in `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f32 + (b as f32 - a as f32) * t).round() as u8;
        Rgb::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(v: [u8; 3]) -> Self {
        Rgb::new(v[0], v[1], v[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(c: Rgb) -> Self {
        [c.r, c.g, c.b]
    }
}

/// An 8-bit full-range YCbCr triple (JFIF convention: all channels 0..=255,
/// chroma centered at 128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct YCbCr {
    /// Luma.
    pub y: u8,
    /// Blue-difference chroma.
    pub cb: u8,
    /// Red-difference chroma.
    pub cr: u8,
}

impl YCbCr {
    /// Creates a YCbCr triple from its components.
    pub const fn new(y: u8, cb: u8, cr: u8) -> Self {
        YCbCr { y, cb, cr }
    }
}

/// Converts an RGB color to full-range YCbCr (BT.601 / JFIF).
pub fn rgb_to_ycbcr(c: Rgb) -> YCbCr {
    let (r, g, b) = (c.r as f32, c.g as f32, c.b as f32);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_735_9 * r - 0.331_264_1 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_687_6 * g - 0.081_312_4 * b;
    YCbCr::new(
        y.round().clamp(0.0, 255.0) as u8,
        cb.round().clamp(0.0, 255.0) as u8,
        cr.round().clamp(0.0, 255.0) as u8,
    )
}

/// Converts a full-range YCbCr color back to RGB (BT.601 / JFIF).
pub fn ycbcr_to_rgb(c: YCbCr) -> Rgb {
    let y = c.y as f32;
    let cb = c.cb as f32 - 128.0;
    let cr = c.cr as f32 - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136_3 * cb - 0.714_136_3 * cr;
    let b = y + 1.772 * cb;
    Rgb::new(
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

impl From<Rgb> for YCbCr {
    fn from(c: Rgb) -> Self {
        rgb_to_ycbcr(c)
    }
}

impl From<YCbCr> for Rgb {
    fn from(c: YCbCr) -> Self {
        ycbcr_to_rgb(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_and_white_map_to_extremes() {
        assert_eq!(rgb_to_ycbcr(Rgb::BLACK), YCbCr::new(0, 128, 128));
        assert_eq!(rgb_to_ycbcr(Rgb::WHITE), YCbCr::new(255, 128, 128));
    }

    #[test]
    fn primaries_have_expected_luma_order() {
        let yr = rgb_to_ycbcr(Rgb::new(255, 0, 0)).y;
        let yg = rgb_to_ycbcr(Rgb::new(0, 255, 0)).y;
        let yb = rgb_to_ycbcr(Rgb::new(0, 0, 255)).y;
        assert!(
            yg > yr && yr > yb,
            "luma order G > R > B violated: {yg} {yr} {yb}"
        );
    }

    #[test]
    fn round_trip_is_nearly_lossless() {
        // 8-bit YCbCr quantization loses at most a couple of codes per channel.
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(17) {
                for b in (0..=255).step_by(17) {
                    let c = Rgb::new(r as u8, g as u8, b as u8);
                    let back = ycbcr_to_rgb(rgb_to_ycbcr(c));
                    assert!((back.r as i32 - c.r as i32).abs() <= 2, "{c:?} -> {back:?}");
                    assert!((back.g as i32 - c.g as i32).abs() <= 2, "{c:?} -> {back:?}");
                    assert!((back.b as i32 - c.b as i32).abs() <= 2, "{c:?} -> {back:?}");
                }
            }
        }
    }

    #[test]
    fn gray_has_neutral_chroma() {
        for v in [0u8, 37, 128, 200, 255] {
            let c = rgb_to_ycbcr(Rgb::new(v, v, v));
            assert_eq!(c.cb, 128);
            assert_eq!(c.cr, 128);
            assert_eq!(c.y, v);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(200, 100, 0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Rgb::new(105, 60, 15));
    }

    #[test]
    fn luma_matches_ycbcr_y() {
        for (r, g, b) in [(12u8, 200u8, 99u8), (255, 0, 128), (1, 2, 3)] {
            let c = Rgb::new(r, g, b);
            assert_eq!(c.luma(), rgb_to_ycbcr(c).y);
        }
    }
}
