//! RGB ⇄ YCbCr color conversion as used by baseline JPEG (JFIF full range,
//! ITU-R BT.601 coefficients).
//!
//! The JPEG pipeline in `puppies-jpeg` converts images to YCbCr before the
//! per-plane DCT; PuPPIeS perturbs each plane independently (§II-A of the
//! paper notes each layer is processed independently).

use crate::simd::Simd8;

/// An 8-bit RGB color triple.
///
/// `repr(C)` pins the layout to three packed bytes in field order, which
/// the slice converters rely on to reinterpret `&[Rgb]` runs as raw
/// `r g b r g b …` bytes for [`Simd8::rgb_widen`].
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel, 0..=255.
    pub r: u8,
    /// Green channel, 0..=255.
    pub g: u8,
    /// Blue channel, 0..=255.
    pub b: u8,
}

impl Rgb {
    /// Creates a color from its components.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Pure black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// Pure white.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);

    /// Rec. 601 luma of the color, rounded to the nearest integer.
    pub fn luma(self) -> u8 {
        let y = 0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32;
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Linear interpolation between `self` and `other` with `t` in `[0, 1]`.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f32 + (b as f32 - a as f32) * t).round() as u8;
        Rgb::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(v: [u8; 3]) -> Self {
        Rgb::new(v[0], v[1], v[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(c: Rgb) -> Self {
        [c.r, c.g, c.b]
    }
}

/// An 8-bit full-range YCbCr triple (JFIF convention: all channels 0..=255,
/// chroma centered at 128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct YCbCr {
    /// Luma.
    pub y: u8,
    /// Blue-difference chroma.
    pub cb: u8,
    /// Red-difference chroma.
    pub cr: u8,
}

impl YCbCr {
    /// Creates a YCbCr triple from its components.
    pub const fn new(y: u8, cb: u8, cr: u8) -> Self {
        YCbCr { y, cb, cr }
    }
}

/// Rounds half away from zero and clamps to `0..=255`, producing exactly
/// `v.round().clamp(0.0, 255.0) as u8` without `f32::round`'s libm call
/// (which blocks vectorization on the SSE2 baseline).
///
/// Clamping before rounding is equivalent here because every input that
/// rounds outside `[0, 255]` clamps to the same endpoint either way. After
/// the clamp, `c - trunc(c)` is exact (Sterbenz), so the `>= 0.5` test is
/// the true round-half-up — which equals round-half-away on nonnegatives.
#[inline]
pub fn round_clamp_u8(v: f32) -> u8 {
    let c = v.clamp(0.0, 255.0);
    let t = c as i32;
    (t + ((c - t as f32) >= 0.5) as i32) as u8
}

/// Converts an RGB color to full-range YCbCr (BT.601 / JFIF).
pub fn rgb_to_ycbcr(c: Rgb) -> YCbCr {
    let (r, g, b) = (c.r as f32, c.g as f32, c.b as f32);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_735_9 * r - 0.331_264_1 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_687_6 * g - 0.081_312_4 * b;
    YCbCr::new(round_clamp_u8(y), round_clamp_u8(cb), round_clamp_u8(cr))
}

/// Converts a full-range YCbCr color back to RGB (BT.601 / JFIF).
pub fn ycbcr_to_rgb(c: YCbCr) -> Rgb {
    let y = c.y as f32;
    let cb = c.cb as f32 - 128.0;
    let cr = c.cr as f32 - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136_3 * cb - 0.714_136_3 * cr;
    let b = y + 1.772 * cb;
    Rgb::new(round_clamp_u8(r), round_clamp_u8(g), round_clamp_u8(b))
}

impl From<Rgb> for YCbCr {
    fn from(c: Rgb) -> Self {
        rgb_to_ycbcr(c)
    }
}

/// [`round_clamp_u8`] staying in `f32` (every value in `0..=255` is exactly
/// representable). This is the scalar reference for [`quant255_v`]; the
/// production slice converters run the lane form, and a test pins the two
/// bit-identical.
#[cfg(test)]
#[inline]
fn quant255(v: f32) -> f32 {
    let c = v.clamp(0.0, 255.0);
    // Branchless floor without an int round-trip, so the surrounding loops
    // vectorize on the SSE2 baseline (a scalar `as i32` cast forces
    // `cvttss2si` per element). Adding/subtracting 2^23 rounds c to the
    // nearest integer (ties to even) exactly for c in [0, 2^23); one
    // compare-and-subtract corrects round-up back to floor(c). The
    // fractional part c - floor(c) is then exact, so the >= 0.5 tie rule
    // is applied to the true fraction, matching `round_clamp_u8`.
    let r = (c + 8_388_608.0) - 8_388_608.0;
    let t = r - ((r > c) as i32 as f32);
    t + ((c - t >= 0.5) as i32 as f32)
}

/// Lane width for the slice converters: big enough to amortize the scalar
/// pack/unpack against the vectorized channel math, small enough to stay
/// in L1.
const LANES: usize = 128;

/// 8-wide groups per staging buffer.
const GROUPS: usize = LANES / 8;

/// [`quant255`] on a lane: the exact scalar operation sequence expressed in
/// [`Simd8`] ops. The compare masks are all-ones, so ANDing with 1.0
/// reproduces the scalar `(cond) as i32 as f32` terms bit-for-bit, and every
/// arithmetic step is the same IEEE op in the same order — vector output is
/// bit-identical to the scalar reference for finite inputs (the converters
/// only see finite samples).
#[inline(always)]
unsafe fn quant255_v<S: Simd8>(v: S::F) -> S::F {
    unsafe {
        let c = S::f_min(S::f_max(v, S::f_splat(0.0)), S::f_splat(255.0));
        let r = S::f_sub(
            S::f_add(c, S::f_splat(8_388_608.0)),
            S::f_splat(8_388_608.0),
        );
        let t = S::f_sub(r, S::f_and(S::f_cmp_gt(r, c), S::f_splat(1.0)));
        let half_up = S::f_and(
            S::f_cmp_ge(S::f_sub(c, t), S::f_splat(0.5)),
            S::f_splat(1.0),
        );
        S::f_add(t, half_up)
    }
}

/// Packed RGB bytes per staging buffer (`LANES` pixels × 3 channels).
const PX_BYTES: usize = LANES * 3;

/// [`rgb_to_ycbcr_slice`] arithmetic on one staging buffer: same channel
/// expressions as [`rgb_to_ycbcr`], evaluated left-to-right per lane.
/// (`inline(always)`: must fuse into the `#[target_feature]` dispatch
/// wrapper or the intrinsics inside cannot be inlined.)
///
/// Pixels arrive as packed `r g b` bytes and are deinterleaved in-lane by
/// [`Simd8::rgb_widen`]; `i_to_f` is exact on `0..=255`, so the values
/// match the scalar `u8 as f32` path bit-for-bit while the byte shuffles
/// replace three scalar loads per pixel.
#[inline(always)]
unsafe fn rgb_to_ycbcr_kernel<S: Simd8>(
    px: &[u8; PX_BYTES],
    y: &mut [f32; LANES],
    cb: &mut [f32; LANES],
    cr: &mut [f32; LANES],
) {
    unsafe {
        let pg = &*(px.as_ptr() as *const [[u8; 24]; GROUPS]);
        let yg = &mut *(y.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        let cbg = &mut *(cb.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        let crg = &mut *(cr.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        for i in 0..GROUPS {
            let (rw, gw, bw) = S::rgb_widen(&pg[i]);
            let r = S::i_to_f(rw);
            let g = S::i_to_f(gw);
            let b = S::i_to_f(bw);
            // y = 0.299 r + 0.587 g + 0.114 b
            let yv = S::f_add(
                S::f_add(
                    S::f_mul(S::f_splat(0.299), r),
                    S::f_mul(S::f_splat(0.587), g),
                ),
                S::f_mul(S::f_splat(0.114), b),
            );
            // cb = 128 - 0.1687359 r - 0.3312641 g + 0.5 b
            let cbv = S::f_add(
                S::f_sub(
                    S::f_sub(S::f_splat(128.0), S::f_mul(S::f_splat(0.168_735_9), r)),
                    S::f_mul(S::f_splat(0.331_264_1), g),
                ),
                S::f_mul(S::f_splat(0.5), b),
            );
            // cr = 128 + 0.5 r - 0.4186876 g - 0.0813124 b
            let crv = S::f_sub(
                S::f_sub(
                    S::f_add(S::f_splat(128.0), S::f_mul(S::f_splat(0.5), r)),
                    S::f_mul(S::f_splat(0.418_687_6), g),
                ),
                S::f_mul(S::f_splat(0.081_312_4), b),
            );
            S::f_store(quant255_v::<S>(yv), &mut yg[i]);
            S::f_store(quant255_v::<S>(cbv), &mut cbg[i]);
            S::f_store(quant255_v::<S>(crv), &mut crg[i]);
        }
    }
}

/// [`ycbcr_to_rgb_slice`] arithmetic on one staging buffer: quantize the raw
/// samples, center the chroma, then the [`ycbcr_to_rgb`] expressions.
#[inline(always)]
unsafe fn ycbcr_to_rgb_kernel<S: Simd8>(
    y: &[f32; LANES],
    cb: &[f32; LANES],
    cr: &[f32; LANES],
    rf: &mut [f32; LANES],
    gf: &mut [f32; LANES],
    bf: &mut [f32; LANES],
) {
    unsafe {
        let yg = &*(y.as_ptr() as *const [[f32; 8]; GROUPS]);
        let cbg = &*(cb.as_ptr() as *const [[f32; 8]; GROUPS]);
        let crg = &*(cr.as_ptr() as *const [[f32; 8]; GROUPS]);
        let rg = &mut *(rf.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        let gg = &mut *(gf.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        let bg = &mut *(bf.as_mut_ptr() as *mut [[f32; 8]; GROUPS]);
        for i in 0..GROUPS {
            let yq = quant255_v::<S>(S::f_load(&yg[i]));
            let cbq = S::f_sub(quant255_v::<S>(S::f_load(&cbg[i])), S::f_splat(128.0));
            let crq = S::f_sub(quant255_v::<S>(S::f_load(&crg[i])), S::f_splat(128.0));
            // r = y + 1.402 cr
            let rv = S::f_add(yq, S::f_mul(S::f_splat(1.402), crq));
            // g = y - 0.3441363 cb - 0.7141363 cr
            let gv = S::f_sub(
                S::f_sub(yq, S::f_mul(S::f_splat(0.344_136_3), cbq)),
                S::f_mul(S::f_splat(0.714_136_3), crq),
            );
            // b = y + 1.772 cb
            let bv = S::f_add(yq, S::f_mul(S::f_splat(1.772), cbq));
            S::f_store(quant255_v::<S>(rv), &mut rg[i]);
            S::f_store(quant255_v::<S>(gv), &mut gg[i]);
            S::f_store(quant255_v::<S>(bv), &mut bg[i]);
        }
    }
}

crate::simd_dispatch! {
    fn rgb_to_ycbcr_lanes / rgb_to_ycbcr_lanes_with(px: &[u8; PX_BYTES], y: &mut [f32; LANES], cb: &mut [f32; LANES], cr: &mut [f32; LANES]) = rgb_to_ycbcr_kernel;
    fn ycbcr_to_rgb_lanes / ycbcr_to_rgb_lanes_with(y: &[f32; LANES], cb: &[f32; LANES], cr: &[f32; LANES], rf: &mut [f32; LANES], gf: &mut [f32; LANES], bf: &mut [f32; LANES]) = ycbcr_to_rgb_kernel;
}

/// Slice form of [`rgb_to_ycbcr`]: converts `px` into u8-quantized Y, Cb,
/// Cr values stored as `f32`, one output slice per channel.
///
/// Exactly `rgb_to_ycbcr(px[i])` per element — same expressions, same
/// rounding — but restructured channel-planar so each arithmetic loop
/// vectorizes instead of round-tripping one `Rgb` struct at a time.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn rgb_to_ycbcr_slice(px: &[Rgb], y: &mut [f32], cb: &mut [f32], cr: &mut [f32]) {
    assert!(
        px.len() == y.len() && px.len() == cb.len() && px.len() == cr.len(),
        "channel slice lengths differ"
    );
    // SAFETY: the destinations are initialized slices of length `px.len()`.
    unsafe { rgb_to_ycbcr_raw(px, y.as_mut_ptr(), cb.as_mut_ptr(), cr.as_mut_ptr()) }
}

/// [`rgb_to_ycbcr_slice`] into freshly-allocated channel vectors, skipping
/// the zero-fill a `vec![0.0; n]` destination would pay (the converter
/// writes every element before the lengths are published).
pub fn rgb_to_ycbcr_vecs(px: &[Rgb]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let n = px.len();
    let mut y: Vec<f32> = Vec::with_capacity(n);
    let mut cb: Vec<f32> = Vec::with_capacity(n);
    let mut cr: Vec<f32> = Vec::with_capacity(n);
    // SAFETY: each destination has capacity for `n` values and
    // `rgb_to_ycbcr_raw` writes all `n` of them before `set_len`.
    unsafe {
        rgb_to_ycbcr_raw(px, y.as_mut_ptr(), cb.as_mut_ptr(), cr.as_mut_ptr());
        y.set_len(n);
        cb.set_len(n);
        cr.set_len(n);
    }
    (y, cb, cr)
}

/// Driver shared by the slice and vec converters.
///
/// # Safety
/// `y`, `cb`, `cr` must each be valid for `px.len()` `f32` writes. They may
/// point at uninitialized memory: every element is written, none is read.
unsafe fn rgb_to_ycbcr_raw(px: &[Rgb], y: *mut f32, cb: *mut f32, cr: *mut f32) {
    let mut base = 0;
    while base < px.len() {
        let m = LANES.min(px.len() - base);
        let chunk = &px[base..base + m];
        if m == LANES {
            // Full chunk: `Rgb` is `repr(C)` (three packed bytes), so the
            // pixel run *is* the kernel's byte layout — reinterpret it in
            // place and write straight into the destination planes.
            unsafe {
                let pb = &*(chunk.as_ptr() as *const [u8; PX_BYTES]);
                let yd = &mut *(y.add(base) as *mut [f32; LANES]);
                let cbd = &mut *(cb.add(base) as *mut [f32; LANES]);
                let crd = &mut *(cr.add(base) as *mut [f32; LANES]);
                rgb_to_ycbcr_lanes(pb, yd, cbd, crd);
            }
        } else {
            // Tail chunk: stage the live bytes (lanes past `m` hold zeros
            // and are never copied out), then copy the live prefix.
            let mut pb = [0u8; PX_BYTES];
            // SAFETY: `chunk` is `m` contiguous 3-byte `repr(C)` pixels.
            let live = unsafe { std::slice::from_raw_parts(chunk.as_ptr() as *const u8, 3 * m) };
            pb[..3 * m].copy_from_slice(live);
            let mut yo = [0.0f32; LANES];
            let mut cbo = [0.0f32; LANES];
            let mut cro = [0.0f32; LANES];
            rgb_to_ycbcr_lanes(&pb, &mut yo, &mut cbo, &mut cro);
            unsafe {
                std::ptr::copy_nonoverlapping(yo.as_ptr(), y.add(base), m);
                std::ptr::copy_nonoverlapping(cbo.as_ptr(), cb.add(base), m);
                std::ptr::copy_nonoverlapping(cro.as_ptr(), cr.add(base), m);
            }
        }
        base += m;
    }
}

/// Slice form of the decode-side conversion: quantizes raw `f32` Y, Cb, Cr
/// samples to 8 bits and converts to RGB.
///
/// Exactly `ycbcr_to_rgb(YCbCr::new(round_clamp_u8(y[i]), ..))` per
/// element, restructured channel-planar like [`rgb_to_ycbcr_slice`].
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn ycbcr_to_rgb_slice(y: &[f32], cb: &[f32], cr: &[f32], out: &mut [Rgb]) {
    assert!(
        y.len() == out.len() && cb.len() == out.len() && cr.len() == out.len(),
        "channel slice lengths differ"
    );
    let mut ys = [0.0f32; LANES];
    let mut cbs = [0.0f32; LANES];
    let mut crs = [0.0f32; LANES];
    let mut rf = [0.0f32; LANES];
    let mut gf = [0.0f32; LANES];
    let mut bf = [0.0f32; LANES];
    let mut base = 0;
    while base < out.len() {
        let m = LANES.min(out.len() - base);
        if m == LANES {
            // Full chunk: feed the source planes to the kernel in place.
            let yd: &[f32; LANES] = (&y[base..base + LANES]).try_into().unwrap();
            let cbd: &[f32; LANES] = (&cb[base..base + LANES]).try_into().unwrap();
            let crd: &[f32; LANES] = (&cr[base..base + LANES]).try_into().unwrap();
            ycbcr_to_rgb_lanes(yd, cbd, crd, &mut rf, &mut gf, &mut bf);
            let chunk = &mut out[base..base + LANES];
            for i in 0..LANES {
                // See the tail path for why this byte extraction is exact.
                chunk[i] = Rgb::new(
                    (rf[i] + 8_388_608.0).to_bits() as u8,
                    (gf[i] + 8_388_608.0).to_bits() as u8,
                    (bf[i] + 8_388_608.0).to_bits() as u8,
                );
            }
            base += LANES;
            continue;
        }
        ys[..m].copy_from_slice(&y[base..base + m]);
        cbs[..m].copy_from_slice(&cb[base..base + m]);
        crs[..m].copy_from_slice(&cr[base..base + m]);
        // Tail chunks run the kernel over the full staging buffer; lanes
        // past `m` hold stale-but-finite values and are never packed.
        ycbcr_to_rgb_lanes(&ys, &cbs, &crs, &mut rf, &mut gf, &mut bf);
        let chunk = &mut out[base..base + m];
        for i in 0..m {
            // quant255 output is an exact integer in [0, 255], so adding
            // 2^23 leaves it in the low mantissa byte: the byte extraction
            // is a pure add + bit-truncate, where an `as u8` cast would be
            // a scalar saturating float→int per channel.
            chunk[i] = Rgb::new(
                (rf[i] + 8_388_608.0).to_bits() as u8,
                (gf[i] + 8_388_608.0).to_bits() as u8,
                (bf[i] + 8_388_608.0).to_bits() as u8,
            );
        }
        base += m;
    }
}

impl From<YCbCr> for Rgb {
    fn from(c: YCbCr) -> Self {
        ycbcr_to_rgb(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_and_white_map_to_extremes() {
        assert_eq!(rgb_to_ycbcr(Rgb::BLACK), YCbCr::new(0, 128, 128));
        assert_eq!(rgb_to_ycbcr(Rgb::WHITE), YCbCr::new(255, 128, 128));
    }

    #[test]
    fn primaries_have_expected_luma_order() {
        let yr = rgb_to_ycbcr(Rgb::new(255, 0, 0)).y;
        let yg = rgb_to_ycbcr(Rgb::new(0, 255, 0)).y;
        let yb = rgb_to_ycbcr(Rgb::new(0, 0, 255)).y;
        assert!(
            yg > yr && yr > yb,
            "luma order G > R > B violated: {yg} {yr} {yb}"
        );
    }

    #[test]
    fn round_trip_is_nearly_lossless() {
        // 8-bit YCbCr quantization loses at most a couple of codes per channel.
        for r in (0..=255).step_by(17) {
            for g in (0..=255).step_by(17) {
                for b in (0..=255).step_by(17) {
                    let c = Rgb::new(r as u8, g as u8, b as u8);
                    let back = ycbcr_to_rgb(rgb_to_ycbcr(c));
                    assert!((back.r as i32 - c.r as i32).abs() <= 2, "{c:?} -> {back:?}");
                    assert!((back.g as i32 - c.g as i32).abs() <= 2, "{c:?} -> {back:?}");
                    assert!((back.b as i32 - c.b as i32).abs() <= 2, "{c:?} -> {back:?}");
                }
            }
        }
    }

    #[test]
    fn gray_has_neutral_chroma() {
        for v in [0u8, 37, 128, 200, 255] {
            let c = rgb_to_ycbcr(Rgb::new(v, v, v));
            assert_eq!(c.cb, 128);
            assert_eq!(c.cr, 128);
            assert_eq!(c.y, v);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(200, 100, 0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Rgb::new(105, 60, 15));
    }

    #[test]
    fn slice_converters_match_scalar_exactly() {
        // 300 pixels exercises the chunk boundary (LANES = 128) and the
        // partial tail.
        let px: Vec<Rgb> = (0..300u32)
            .map(|i| {
                Rgb::new(
                    (i.wrapping_mul(97) % 256) as u8,
                    (i.wrapping_mul(41) % 256) as u8,
                    (i.wrapping_mul(13) % 256) as u8,
                )
            })
            .collect();
        let n = px.len();
        let (mut y, mut cb, mut cr) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        rgb_to_ycbcr_slice(&px, &mut y, &mut cb, &mut cr);
        for i in 0..n {
            let c = rgb_to_ycbcr(px[i]);
            assert_eq!(y[i], c.y as f32, "y at {i}");
            assert_eq!(cb[i], c.cb as f32, "cb at {i}");
            assert_eq!(cr[i], c.cr as f32, "cr at {i}");
        }

        // Back-conversion on raw (unquantized, out-of-range, tie-valued)
        // samples must also match the scalar path exactly.
        let raw: Vec<f32> = (0..n)
            .map(|i| (i as f32 * 1.7 - 40.0) + if i % 5 == 0 { 0.5 } else { 0.25 })
            .collect();
        let raw2: Vec<f32> = raw.iter().map(|v| 300.0 - v).collect();
        let mut out = vec![Rgb::BLACK; n];
        ycbcr_to_rgb_slice(&raw, &raw2, &raw, &mut out);
        for i in 0..n {
            let c = YCbCr::new(
                round_clamp_u8(raw[i]),
                round_clamp_u8(raw2[i]),
                round_clamp_u8(raw[i]),
            );
            assert_eq!(out[i], ycbcr_to_rgb(c), "pixel {i}");
        }
    }

    #[test]
    fn round_clamp_u8_matches_round_then_clamp() {
        for v in [
            -1000.0,
            -0.51,
            -0.5,
            -0.49,
            0.0,
            0.49,
            0.5,
            0.999,
            1.5,
            127.5,
            254.49,
            254.5,
            255.0,
            255.49,
            255.5,
            1000.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ] {
            let want = v.round().clamp(0.0, 255.0) as u8;
            assert_eq!(round_clamp_u8(v), want, "v = {v}");
        }
        // Sweep a dense grid for the tie-handling region.
        let mut v = -2.0f32;
        while v < 258.0 {
            assert_eq!(
                round_clamp_u8(v),
                v.round().clamp(0.0, 255.0) as u8,
                "v = {v}"
            );
            v += 0.0625;
        }
    }

    #[test]
    fn quant255_lane_matches_scalar_reference() {
        // quant255_v must be the exact op-for-op lane form of quant255;
        // sweep the tie-handling region plus out-of-range values.
        let mut buf = [0.0f32; 8];
        let mut v = -40.0f32;
        'sweep: loop {
            for slot in buf.iter_mut() {
                *slot = v;
                v += 0.0625;
                if v >= 300.0 {
                    break 'sweep;
                }
            }
            let mut got = [0.0f32; 8];
            unsafe {
                let lanes = crate::simd::Scalar8::f_load(&buf);
                crate::simd::Scalar8::f_store(quant255_v::<crate::simd::Scalar8>(lanes), &mut got);
            }
            for i in 0..8 {
                assert_eq!(
                    got[i].to_bits(),
                    quant255(buf[i]).to_bits(),
                    "v = {}",
                    buf[i]
                );
            }
        }
    }

    #[test]
    fn color_convert_bit_identical_across_backends() {
        use crate::simd::Backend;
        // Forward staging: the full 8-bit sample range as packed RGB bytes
        // (exercises every backend's `rgb_widen`). Inverse staging:
        // adversarial f32 values — ties, out-of-range, negatives —
        // everything the quantizer sequence branches on.
        let mut px = [0u8; PX_BYTES];
        let mut yf = [0.0f32; LANES];
        let mut cbf = [0.0f32; LANES];
        let mut crf = [0.0f32; LANES];
        for i in 0..LANES {
            px[3 * i] = ((i * 97) % 256) as u8;
            px[3 * i + 1] = ((i * 41) % 256) as u8;
            px[3 * i + 2] = (255 - (i * 2) % 256) as u8;
            yf[i] = (i as f32 * 2.31) - 20.0 + if i % 4 == 0 { 0.5 } else { 0.0 };
            cbf[i] = 300.0 - i as f32 * 2.77;
            crf[i] = (i as f32 * 1.13).rem_euclid(256.0) - 0.5;
        }
        let run = |backend| {
            let (mut y, mut cb, mut cr) = ([0.0f32; LANES], [0.0f32; LANES], [0.0f32; LANES]);
            rgb_to_ycbcr_lanes_with(backend, &px, &mut y, &mut cb, &mut cr);
            let (mut r, mut g, mut b) = ([0.0f32; LANES], [0.0f32; LANES], [0.0f32; LANES]);
            ycbcr_to_rgb_lanes_with(backend, &yf, &cbf, &crf, &mut r, &mut g, &mut b);
            [y, cb, cr, r, g, b].map(|a| a.map(f32::to_bits))
        };
        let scalar = run(Backend::Scalar);
        for backend in Backend::ALL {
            if !backend.available() {
                continue;
            }
            assert_eq!(run(backend), scalar, "backend {}", backend.name());
        }
    }

    #[test]
    fn luma_matches_ycbcr_y() {
        for (r, g, b) in [(12u8, 200u8, 99u8), (255, 0, 128), (1, 2, 3)] {
            let c = Rgb::new(r, g, b);
            assert_eq!(c.luma(), rgb_to_ycbcr(c).y);
        }
    }
}
