//! Portable 8-lane SIMD abstraction for the hot JPEG / perturbation kernels.
//!
//! The workspace's bit-exactness contract is *SIMD == scalar*, not
//! *fast == f64 reference*: every kernel is written once, generically, over
//! the [`Simd8`] trait, performing the identical elementwise sequence of
//! IEEE-754 single-precision adds, subs and muls on every backend (no FMA,
//! no reassociation). Because those operations are fully determined by IEEE
//! semantics, all backends produce byte-identical results by construction.
//! The f64 orthonormal DCT in `puppies-jpeg::dct` remains the *differential*
//! (tolerance-based) reference.
//!
//! Backend selection happens once per process via [`backend`]: runtime CPU
//! feature detection (AVX2 > SSE2 on x86-64, NEON on aarch64, scalar
//! otherwise), overridable with the `PUPPIES_SIMD` environment variable
//! (`scalar` | `sse2` | `avx2` | `neon`). An unknown or unavailable override
//! panics loudly so CI matrix jobs can never silently test the wrong lanes.
//! Under Miri the default is the scalar backend; explicitly requested
//! backends (via [`simd_dispatch!`]'s `*_with` variants) remain usable for
//! compile-time-detected features.
//!
//! Hot-path consumers do not match on [`Backend`] themselves — they declare
//! dispatchers with the [`simd_dispatch!`] macro, which monomorphises the
//! generic kernel per backend inside `#[target_feature]` wrappers and
//! dispatches on the cached detection result.

// The trait's methods are wholesale `unsafe fn` so that backend impls can
// call `core::arch` intrinsics directly; the single safety contract (callers
// must have verified the backend's CPU features, see the trait docs) applies
// uniformly to all ~30 methods, so it is documented once on the trait rather
// than repeated per method.
#![allow(clippy::missing_safety_doc)]

use std::sync::atomic::{AtomicU8, Ordering};

/// An 8-lane SIMD backend.
///
/// All operations are associated functions (no `self`) over the two vector
/// types `F` (8 × f32) and `I` (8 × i32). Lane order is the natural memory
/// order of the `[f32; 8]` / `[i32; 8]` arrays passed to `f_load` / `i_load`.
///
/// # Safety
///
/// Every method is `unsafe` with one uniform contract: the caller must have
/// verified that the CPU supports the backend's instruction set (i.e.
/// `Backend::available()` returned `true` for the corresponding [`Backend`],
/// or the feature is statically enabled). [`Scalar8`] has no requirements and
/// all of its methods are trivially safe to call.
///
/// Semantic notes shared by all backends (kernels rely on these):
///
/// * `f_min` / `f_max` follow SSE `minps`/`maxps`: `min(a, b)` is
///   `if a < b { a } else { b }` — the *second* operand is returned when
///   either input is NaN. (NEON's `vminq_f32` differs on NaN; kernels must
///   only feed finite values through min/max, which all of ours do.)
/// * `f_cmp_*` are *ordered* compares returning all-ones (`0xFFFF_FFFF`) or
///   all-zeros lane masks; any compare involving NaN yields all-zeros.
/// * `i_to_f` is exact for |v| < 2^24 (`cvtdq2ps` / `as f32` both round to
///   nearest, identical results).
/// * No method may be implemented with FMA or any op sequence that differs
///   in rounding from the scalar backend.
pub trait Simd8 {
    /// 8 × f32 vector.
    type F: Copy;
    /// 8 × i32 vector.
    type I: Copy;

    unsafe fn f_load(src: &[f32; 8]) -> Self::F;
    unsafe fn f_store(v: Self::F, dst: &mut [f32; 8]);
    unsafe fn f_splat(x: f32) -> Self::F;
    unsafe fn f_add(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn f_sub(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn f_mul(a: Self::F, b: Self::F) -> Self::F;
    /// `if a < b { a } else { b }` per lane (returns `b` on NaN).
    unsafe fn f_min(a: Self::F, b: Self::F) -> Self::F;
    /// `if a > b { a } else { b }` per lane (returns `b` on NaN).
    unsafe fn f_max(a: Self::F, b: Self::F) -> Self::F;
    /// Bitwise AND of the lane bit patterns.
    unsafe fn f_and(a: Self::F, b: Self::F) -> Self::F;
    /// Clears the sign bit of every lane.
    unsafe fn f_abs(v: Self::F) -> Self::F;
    unsafe fn f_cmp_ge(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn f_cmp_gt(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn f_cmp_le(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn f_cmp_lt(a: Self::F, b: Self::F) -> Self::F;
    /// True if any lane's sign bit is set (use on compare masks).
    unsafe fn f_any(mask: Self::F) -> bool;
    /// True if every lane's sign bit is set (use on compare masks).
    unsafe fn f_all(mask: Self::F) -> bool;
    /// Bit-casts the f32 lanes to i32 lanes.
    unsafe fn f_bits(v: Self::F) -> Self::I;
    /// In-place 8×8 transpose of eight row vectors.
    unsafe fn f_transpose8(rows: &mut [Self::F; 8]);

    unsafe fn i_load(src: &[i32; 8]) -> Self::I;
    unsafe fn i_store(v: Self::I, dst: &mut [i32; 8]);
    unsafe fn i_splat(x: i32) -> Self::I;
    unsafe fn i_add(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_sub(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_min(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_max(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_and(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_or(a: Self::I, b: Self::I) -> Self::I;
    /// `!a & b` per lane (the x86 `andnot` operand order).
    unsafe fn i_andnot(a: Self::I, b: Self::I) -> Self::I;
    /// All-ones lane where `a > b` (signed), zero elsewhere.
    unsafe fn i_cmp_gt(a: Self::I, b: Self::I) -> Self::I;
    /// All-ones lane where `a == b`, zero elsewhere.
    unsafe fn i_cmp_eq(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn i_to_f(v: Self::I) -> Self::F;
    /// One bit per lane (bit k = lane k), set where the lane is non-zero.
    unsafe fn i_nonzero_mask(v: Self::I) -> u32;

    /// Widens 8 packed RGB pixels (24 bytes: `r0 g0 b0 r1 …`) into three
    /// i32 lane vectors `(r, g, b)`, each lane in `0..=255`. Pure data
    /// movement plus zero-extension — every backend must produce identical
    /// lanes, so `i_to_f(rgb_widen(..))` matches a scalar `u8 as f32`
    /// gather bit-for-bit. The default is the scalar gather; backends with
    /// byte shuffles override it.
    #[inline(always)]
    unsafe fn rgb_widen(src: &[u8; 24]) -> (Self::I, Self::I, Self::I) {
        let mut r = [0i32; 8];
        let mut g = [0i32; 8];
        let mut b = [0i32; 8];
        for i in 0..8 {
            r[i] = src[3 * i] as i32;
            g[i] = src[3 * i + 1] as i32;
            b[i] = src[3 * i + 2] as i32;
        }
        unsafe { (Self::i_load(&r), Self::i_load(&g), Self::i_load(&b)) }
    }
}

// ---------------------------------------------------------------------------
// Scalar backend
// ---------------------------------------------------------------------------

/// Scalar fallback: plain `[f32; 8]` / `[i32; 8]` arrays with elementwise
/// loops. Always available; the compiler is free to autovectorise it, which
/// cannot change results (IEEE ops are deterministic and we forbid FMA).
pub struct Scalar8;

impl Simd8 for Scalar8 {
    type F = [f32; 8];
    type I = [i32; 8];

    #[inline(always)]
    unsafe fn f_load(src: &[f32; 8]) -> Self::F {
        *src
    }
    #[inline(always)]
    unsafe fn f_store(v: Self::F, dst: &mut [f32; 8]) {
        *dst = v;
    }
    #[inline(always)]
    unsafe fn f_splat(x: f32) -> Self::F {
        [x; 8]
    }
    #[inline(always)]
    unsafe fn f_add(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| a[i] + b[i])
    }
    #[inline(always)]
    unsafe fn f_sub(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| a[i] - b[i])
    }
    #[inline(always)]
    unsafe fn f_mul(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| a[i] * b[i])
    }
    #[inline(always)]
    unsafe fn f_min(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| if a[i] < b[i] { a[i] } else { b[i] })
    }
    #[inline(always)]
    unsafe fn f_max(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| if a[i] > b[i] { a[i] } else { b[i] })
    }
    #[inline(always)]
    unsafe fn f_and(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| f32::from_bits(a[i].to_bits() & b[i].to_bits()))
    }
    #[inline(always)]
    unsafe fn f_abs(v: Self::F) -> Self::F {
        std::array::from_fn(|i| f32::from_bits(v[i].to_bits() & 0x7FFF_FFFF))
    }
    #[inline(always)]
    unsafe fn f_cmp_ge(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| mask32(a[i] >= b[i]))
    }
    #[inline(always)]
    unsafe fn f_cmp_gt(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| mask32(a[i] > b[i]))
    }
    #[inline(always)]
    unsafe fn f_cmp_le(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| mask32(a[i] <= b[i]))
    }
    #[inline(always)]
    unsafe fn f_cmp_lt(a: Self::F, b: Self::F) -> Self::F {
        std::array::from_fn(|i| mask32(a[i] < b[i]))
    }
    #[inline(always)]
    unsafe fn f_any(mask: Self::F) -> bool {
        mask.iter().any(|x| x.to_bits() & 0x8000_0000 != 0)
    }
    #[inline(always)]
    unsafe fn f_all(mask: Self::F) -> bool {
        mask.iter().all(|x| x.to_bits() & 0x8000_0000 != 0)
    }
    #[inline(always)]
    unsafe fn f_bits(v: Self::F) -> Self::I {
        std::array::from_fn(|i| v[i].to_bits() as i32)
    }
    #[inline(always)]
    unsafe fn f_transpose8(rows: &mut [Self::F; 8]) {
        // Triangular element swap; indices address both sides of the diagonal.
        #[allow(clippy::needless_range_loop)]
        for r in 0..8 {
            for c in (r + 1)..8 {
                let t = rows[r][c];
                rows[r][c] = rows[c][r];
                rows[c][r] = t;
            }
        }
    }

    #[inline(always)]
    unsafe fn i_load(src: &[i32; 8]) -> Self::I {
        *src
    }
    #[inline(always)]
    unsafe fn i_store(v: Self::I, dst: &mut [i32; 8]) {
        *dst = v;
    }
    #[inline(always)]
    unsafe fn i_splat(x: i32) -> Self::I {
        [x; 8]
    }
    #[inline(always)]
    unsafe fn i_add(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i].wrapping_add(b[i]))
    }
    #[inline(always)]
    unsafe fn i_sub(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i].wrapping_sub(b[i]))
    }
    #[inline(always)]
    unsafe fn i_min(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i].min(b[i]))
    }
    #[inline(always)]
    unsafe fn i_max(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i].max(b[i]))
    }
    #[inline(always)]
    unsafe fn i_and(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i] & b[i])
    }
    #[inline(always)]
    unsafe fn i_or(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| a[i] | b[i])
    }
    #[inline(always)]
    unsafe fn i_andnot(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| !a[i] & b[i])
    }
    #[inline(always)]
    unsafe fn i_cmp_gt(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| if a[i] > b[i] { -1 } else { 0 })
    }
    #[inline(always)]
    unsafe fn i_cmp_eq(a: Self::I, b: Self::I) -> Self::I {
        std::array::from_fn(|i| if a[i] == b[i] { -1 } else { 0 })
    }
    #[inline(always)]
    unsafe fn i_to_f(v: Self::I) -> Self::F {
        std::array::from_fn(|i| v[i] as f32)
    }
    #[inline(always)]
    unsafe fn i_nonzero_mask(v: Self::I) -> u32 {
        let mut m = 0u32;
        for (i, &x) in v.iter().enumerate() {
            m |= u32::from(x != 0) << i;
        }
        m
    }
}

#[inline(always)]
fn mask32(b: bool) -> f32 {
    if b {
        f32::from_bits(0xFFFF_FFFF)
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// x86-64 backends: SSE2 (two __m128 halves) and AVX2 (__m256)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Simd8;
    use core::arch::x86_64::*;

    /// 8 f32 lanes as two `__m128` halves (lanes 0..4, 4..8).
    #[derive(Clone, Copy)]
    pub struct F128x2(__m128, __m128);
    /// 8 i32 lanes as two `__m128i` halves.
    #[derive(Clone, Copy)]
    pub struct I128x2(__m128i, __m128i);

    /// SSE2 backend (baseline on x86-64).
    pub struct Sse2;

    macro_rules! sse_bin {
        ($intr:ident, $a:expr, $b:expr) => {
            F128x2($intr($a.0, $b.0), $intr($a.1, $b.1))
        };
    }

    impl Simd8 for Sse2 {
        type F = F128x2;
        type I = I128x2;

        #[inline(always)]
        unsafe fn f_load(src: &[f32; 8]) -> Self::F {
            let p = src.as_ptr();
            F128x2(_mm_loadu_ps(p), _mm_loadu_ps(p.add(4)))
        }
        #[inline(always)]
        unsafe fn f_store(v: Self::F, dst: &mut [f32; 8]) {
            let p = dst.as_mut_ptr();
            _mm_storeu_ps(p, v.0);
            _mm_storeu_ps(p.add(4), v.1);
        }
        #[inline(always)]
        unsafe fn f_splat(x: f32) -> Self::F {
            let v = _mm_set1_ps(x);
            F128x2(v, v)
        }
        #[inline(always)]
        unsafe fn f_add(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_add_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_sub(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_sub_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_mul(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_mul_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_min(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_min_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_max(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_max_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_and(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_and_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_abs(v: Self::F) -> Self::F {
            let m = _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF));
            F128x2(_mm_and_ps(v.0, m), _mm_and_ps(v.1, m))
        }
        #[inline(always)]
        unsafe fn f_cmp_ge(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_cmpge_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_gt(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_cmpgt_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_le(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_cmple_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_lt(a: Self::F, b: Self::F) -> Self::F {
            sse_bin!(_mm_cmplt_ps, a, b)
        }
        #[inline(always)]
        unsafe fn f_any(mask: Self::F) -> bool {
            (_mm_movemask_ps(mask.0) | _mm_movemask_ps(mask.1)) != 0
        }
        #[inline(always)]
        unsafe fn f_all(mask: Self::F) -> bool {
            (_mm_movemask_ps(mask.0) & _mm_movemask_ps(mask.1)) == 0xF
        }
        #[inline(always)]
        unsafe fn f_bits(v: Self::F) -> Self::I {
            I128x2(_mm_castps_si128(v.0), _mm_castps_si128(v.1))
        }
        #[inline(always)]
        unsafe fn f_transpose8(rows: &mut [Self::F; 8]) {
            // Four 4×4 quadrant transposes; the off-diagonal quadrants swap.
            #[inline(always)]
            unsafe fn t4(a: __m128, b: __m128, c: __m128, d: __m128) -> [__m128; 4] {
                let t0 = _mm_unpacklo_ps(a, b);
                let t1 = _mm_unpackhi_ps(a, b);
                let t2 = _mm_unpacklo_ps(c, d);
                let t3 = _mm_unpackhi_ps(c, d);
                [
                    _mm_movelh_ps(t0, t2),
                    _mm_movehl_ps(t2, t0),
                    _mm_movelh_ps(t1, t3),
                    _mm_movehl_ps(t3, t1),
                ]
            }
            let a = t4(rows[0].0, rows[1].0, rows[2].0, rows[3].0);
            let b = t4(rows[0].1, rows[1].1, rows[2].1, rows[3].1);
            let c = t4(rows[4].0, rows[5].0, rows[6].0, rows[7].0);
            let d = t4(rows[4].1, rows[5].1, rows[6].1, rows[7].1);
            for i in 0..4 {
                rows[i] = F128x2(a[i], c[i]);
                rows[i + 4] = F128x2(b[i], d[i]);
            }
        }

        #[inline(always)]
        unsafe fn i_load(src: &[i32; 8]) -> Self::I {
            let p = src.as_ptr() as *const __m128i;
            I128x2(_mm_loadu_si128(p), _mm_loadu_si128(p.add(1)))
        }
        #[inline(always)]
        unsafe fn i_store(v: Self::I, dst: &mut [i32; 8]) {
            let p = dst.as_mut_ptr() as *mut __m128i;
            _mm_storeu_si128(p, v.0);
            _mm_storeu_si128(p.add(1), v.1);
        }
        #[inline(always)]
        unsafe fn i_splat(x: i32) -> Self::I {
            let v = _mm_set1_epi32(x);
            I128x2(v, v)
        }
        #[inline(always)]
        unsafe fn i_add(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_add_epi32(a.0, b.0), _mm_add_epi32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_sub(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_sub_epi32(a.0, b.0), _mm_sub_epi32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_min(a: Self::I, b: Self::I) -> Self::I {
            // SSE2 has no pminsd; select via the a>b mask.
            #[inline(always)]
            unsafe fn min128(a: __m128i, b: __m128i) -> __m128i {
                let gt = _mm_cmpgt_epi32(a, b);
                _mm_or_si128(_mm_and_si128(gt, b), _mm_andnot_si128(gt, a))
            }
            I128x2(min128(a.0, b.0), min128(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_max(a: Self::I, b: Self::I) -> Self::I {
            #[inline(always)]
            unsafe fn max128(a: __m128i, b: __m128i) -> __m128i {
                let gt = _mm_cmpgt_epi32(a, b);
                _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b))
            }
            I128x2(max128(a.0, b.0), max128(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_and(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_and_si128(a.0, b.0), _mm_and_si128(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_or(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_or_si128(a.0, b.0), _mm_or_si128(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_andnot(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_andnot_si128(a.0, b.0), _mm_andnot_si128(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_cmp_gt(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_cmpgt_epi32(a.0, b.0), _mm_cmpgt_epi32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_cmp_eq(a: Self::I, b: Self::I) -> Self::I {
            I128x2(_mm_cmpeq_epi32(a.0, b.0), _mm_cmpeq_epi32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_to_f(v: Self::I) -> Self::F {
            F128x2(_mm_cvtepi32_ps(v.0), _mm_cvtepi32_ps(v.1))
        }
        #[inline(always)]
        unsafe fn i_nonzero_mask(v: Self::I) -> u32 {
            let z = _mm_setzero_si128();
            let lo = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v.0, z))) as u32;
            let hi = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v.1, z))) as u32;
            !(lo | (hi << 4)) & 0xFF
        }
    }

    /// AVX2 backend (one `__m256` / `__m256i` per vector).
    pub struct Avx2;

    impl Simd8 for Avx2 {
        type F = __m256;
        type I = __m256i;

        #[inline(always)]
        unsafe fn f_load(src: &[f32; 8]) -> Self::F {
            _mm256_loadu_ps(src.as_ptr())
        }
        #[inline(always)]
        unsafe fn f_store(v: Self::F, dst: &mut [f32; 8]) {
            _mm256_storeu_ps(dst.as_mut_ptr(), v);
        }
        #[inline(always)]
        unsafe fn f_splat(x: f32) -> Self::F {
            _mm256_set1_ps(x)
        }
        #[inline(always)]
        unsafe fn f_add(a: Self::F, b: Self::F) -> Self::F {
            _mm256_add_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_sub(a: Self::F, b: Self::F) -> Self::F {
            _mm256_sub_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_mul(a: Self::F, b: Self::F) -> Self::F {
            _mm256_mul_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_min(a: Self::F, b: Self::F) -> Self::F {
            _mm256_min_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_max(a: Self::F, b: Self::F) -> Self::F {
            _mm256_max_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_and(a: Self::F, b: Self::F) -> Self::F {
            _mm256_and_ps(a, b)
        }
        #[inline(always)]
        unsafe fn f_abs(v: Self::F) -> Self::F {
            _mm256_and_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF)))
        }
        #[inline(always)]
        unsafe fn f_cmp_ge(a: Self::F, b: Self::F) -> Self::F {
            _mm256_cmp_ps::<_CMP_GE_OS>(a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_gt(a: Self::F, b: Self::F) -> Self::F {
            _mm256_cmp_ps::<_CMP_GT_OS>(a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_le(a: Self::F, b: Self::F) -> Self::F {
            _mm256_cmp_ps::<_CMP_LE_OS>(a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_lt(a: Self::F, b: Self::F) -> Self::F {
            _mm256_cmp_ps::<_CMP_LT_OS>(a, b)
        }
        #[inline(always)]
        unsafe fn f_any(mask: Self::F) -> bool {
            _mm256_movemask_ps(mask) != 0
        }
        #[inline(always)]
        unsafe fn f_all(mask: Self::F) -> bool {
            _mm256_movemask_ps(mask) == 0xFF
        }
        #[inline(always)]
        unsafe fn f_bits(v: Self::F) -> Self::I {
            _mm256_castps_si256(v)
        }
        #[inline(always)]
        unsafe fn f_transpose8(rows: &mut [Self::F; 8]) {
            let t0 = _mm256_unpacklo_ps(rows[0], rows[1]);
            let t1 = _mm256_unpackhi_ps(rows[0], rows[1]);
            let t2 = _mm256_unpacklo_ps(rows[2], rows[3]);
            let t3 = _mm256_unpackhi_ps(rows[2], rows[3]);
            let t4 = _mm256_unpacklo_ps(rows[4], rows[5]);
            let t5 = _mm256_unpackhi_ps(rows[4], rows[5]);
            let t6 = _mm256_unpacklo_ps(rows[6], rows[7]);
            let t7 = _mm256_unpackhi_ps(rows[6], rows[7]);
            const LO: i32 = 0b01_00_01_00; // _MM_SHUFFLE(1,0,1,0)
            const HI: i32 = 0b11_10_11_10; // _MM_SHUFFLE(3,2,3,2)
            let s0 = _mm256_shuffle_ps::<LO>(t0, t2);
            let s1 = _mm256_shuffle_ps::<HI>(t0, t2);
            let s2 = _mm256_shuffle_ps::<LO>(t1, t3);
            let s3 = _mm256_shuffle_ps::<HI>(t1, t3);
            let s4 = _mm256_shuffle_ps::<LO>(t4, t6);
            let s5 = _mm256_shuffle_ps::<HI>(t4, t6);
            let s6 = _mm256_shuffle_ps::<LO>(t5, t7);
            let s7 = _mm256_shuffle_ps::<HI>(t5, t7);
            rows[0] = _mm256_permute2f128_ps::<0x20>(s0, s4);
            rows[1] = _mm256_permute2f128_ps::<0x20>(s1, s5);
            rows[2] = _mm256_permute2f128_ps::<0x20>(s2, s6);
            rows[3] = _mm256_permute2f128_ps::<0x20>(s3, s7);
            rows[4] = _mm256_permute2f128_ps::<0x31>(s0, s4);
            rows[5] = _mm256_permute2f128_ps::<0x31>(s1, s5);
            rows[6] = _mm256_permute2f128_ps::<0x31>(s2, s6);
            rows[7] = _mm256_permute2f128_ps::<0x31>(s3, s7);
        }

        #[inline(always)]
        unsafe fn i_load(src: &[i32; 8]) -> Self::I {
            _mm256_loadu_si256(src.as_ptr() as *const __m256i)
        }
        #[inline(always)]
        unsafe fn i_store(v: Self::I, dst: &mut [i32; 8]) {
            _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, v);
        }
        #[inline(always)]
        unsafe fn i_splat(x: i32) -> Self::I {
            _mm256_set1_epi32(x)
        }
        #[inline(always)]
        unsafe fn i_add(a: Self::I, b: Self::I) -> Self::I {
            _mm256_add_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_sub(a: Self::I, b: Self::I) -> Self::I {
            _mm256_sub_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_min(a: Self::I, b: Self::I) -> Self::I {
            _mm256_min_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_max(a: Self::I, b: Self::I) -> Self::I {
            _mm256_max_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_and(a: Self::I, b: Self::I) -> Self::I {
            _mm256_and_si256(a, b)
        }
        #[inline(always)]
        unsafe fn i_or(a: Self::I, b: Self::I) -> Self::I {
            _mm256_or_si256(a, b)
        }
        #[inline(always)]
        unsafe fn i_andnot(a: Self::I, b: Self::I) -> Self::I {
            _mm256_andnot_si256(a, b)
        }
        #[inline(always)]
        unsafe fn i_cmp_gt(a: Self::I, b: Self::I) -> Self::I {
            _mm256_cmpgt_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_cmp_eq(a: Self::I, b: Self::I) -> Self::I {
            _mm256_cmpeq_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn i_to_f(v: Self::I) -> Self::F {
            _mm256_cvtepi32_ps(v)
        }
        #[inline(always)]
        unsafe fn i_nonzero_mask(v: Self::I) -> u32 {
            let z = _mm256_setzero_si256();
            let eq = _mm256_cmpeq_epi32(v, z);
            !(_mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32) & 0xFF
        }

        #[inline(always)]
        unsafe fn rgb_widen(src: &[u8; 24]) -> (Self::I, Self::I, Self::I) {
            // Two overlapping 16-byte loads cover the 24 bytes without
            // reading past the array: `lo` holds pixels 0..4 in bytes
            // 0..12, `hi` starts at byte 8 so pixels 4..8 sit at offsets
            // 4/7/10/13. One pshufb per half gathers a channel's four
            // bytes straight into zero-extended i32 lanes (the -1 mask
            // bytes clear the upper three bytes of every lane).
            let p = src.as_ptr();
            let lo = _mm_loadu_si128(p as *const __m128i);
            let hi = _mm_loadu_si128(p.add(8) as *const __m128i);
            #[inline(always)]
            unsafe fn chan(lo: __m128i, hi: __m128i, o: i8) -> __m256i {
                #[rustfmt::skip]
                let ml = _mm_setr_epi8(
                    o, -1, -1, -1, o + 3, -1, -1, -1,
                    o + 6, -1, -1, -1, o + 9, -1, -1, -1,
                );
                #[rustfmt::skip]
                let mh = _mm_setr_epi8(
                    o + 4, -1, -1, -1, o + 7, -1, -1, -1,
                    o + 10, -1, -1, -1, o + 13, -1, -1, -1,
                );
                _mm256_inserti128_si256(
                    _mm256_castsi128_si256(_mm_shuffle_epi8(lo, ml)),
                    _mm_shuffle_epi8(hi, mh),
                    1,
                )
            }
            (chan(lo, hi, 0), chan(lo, hi, 1), chan(lo, hi, 2))
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use x86::{Avx2, Sse2};

// ---------------------------------------------------------------------------
// aarch64 backend: NEON (two float32x4_t halves)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::Simd8;
    use core::arch::aarch64::*;

    /// 8 f32 lanes as two `float32x4_t` halves (lanes 0..4, 4..8).
    #[derive(Clone, Copy)]
    pub struct F4x2(float32x4_t, float32x4_t);
    /// 8 i32 lanes as two `int32x4_t` halves.
    #[derive(Clone, Copy)]
    pub struct I4x2(int32x4_t, int32x4_t);

    /// NEON backend (baseline on aarch64).
    pub struct Neon;

    macro_rules! neon_bin {
        ($intr:ident, $a:expr, $b:expr) => {
            F4x2($intr($a.0, $b.0), $intr($a.1, $b.1))
        };
    }
    macro_rules! neon_cmp {
        ($intr:ident, $a:expr, $b:expr) => {
            F4x2(
                vreinterpretq_f32_u32($intr($a.0, $b.0)),
                vreinterpretq_f32_u32($intr($a.1, $b.1)),
            )
        };
    }

    impl Simd8 for Neon {
        type F = F4x2;
        type I = I4x2;

        #[inline(always)]
        unsafe fn f_load(src: &[f32; 8]) -> Self::F {
            let p = src.as_ptr();
            F4x2(vld1q_f32(p), vld1q_f32(p.add(4)))
        }
        #[inline(always)]
        unsafe fn f_store(v: Self::F, dst: &mut [f32; 8]) {
            let p = dst.as_mut_ptr();
            vst1q_f32(p, v.0);
            vst1q_f32(p.add(4), v.1);
        }
        #[inline(always)]
        unsafe fn f_splat(x: f32) -> Self::F {
            let v = vdupq_n_f32(x);
            F4x2(v, v)
        }
        #[inline(always)]
        unsafe fn f_add(a: Self::F, b: Self::F) -> Self::F {
            neon_bin!(vaddq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_sub(a: Self::F, b: Self::F) -> Self::F {
            neon_bin!(vsubq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_mul(a: Self::F, b: Self::F) -> Self::F {
            neon_bin!(vmulq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_min(a: Self::F, b: Self::F) -> Self::F {
            // NEON min/max differ from SSE on NaN; kernels only pass finite
            // values through min/max (see trait docs).
            neon_bin!(vminq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_max(a: Self::F, b: Self::F) -> Self::F {
            neon_bin!(vmaxq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_and(a: Self::F, b: Self::F) -> Self::F {
            F4x2(
                vreinterpretq_f32_u32(vandq_u32(
                    vreinterpretq_u32_f32(a.0),
                    vreinterpretq_u32_f32(b.0),
                )),
                vreinterpretq_f32_u32(vandq_u32(
                    vreinterpretq_u32_f32(a.1),
                    vreinterpretq_u32_f32(b.1),
                )),
            )
        }
        #[inline(always)]
        unsafe fn f_abs(v: Self::F) -> Self::F {
            F4x2(vabsq_f32(v.0), vabsq_f32(v.1))
        }
        #[inline(always)]
        unsafe fn f_cmp_ge(a: Self::F, b: Self::F) -> Self::F {
            neon_cmp!(vcgeq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_gt(a: Self::F, b: Self::F) -> Self::F {
            neon_cmp!(vcgtq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_le(a: Self::F, b: Self::F) -> Self::F {
            neon_cmp!(vcleq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_cmp_lt(a: Self::F, b: Self::F) -> Self::F {
            neon_cmp!(vcltq_f32, a, b)
        }
        #[inline(always)]
        unsafe fn f_any(mask: Self::F) -> bool {
            let sign = vdupq_n_u32(0x8000_0000);
            let lo = vandq_u32(vreinterpretq_u32_f32(mask.0), sign);
            let hi = vandq_u32(vreinterpretq_u32_f32(mask.1), sign);
            vmaxvq_u32(vorrq_u32(lo, hi)) != 0
        }
        #[inline(always)]
        unsafe fn f_all(mask: Self::F) -> bool {
            let sign = vdupq_n_u32(0x8000_0000);
            let lo = vandq_u32(vreinterpretq_u32_f32(mask.0), sign);
            let hi = vandq_u32(vreinterpretq_u32_f32(mask.1), sign);
            vminvq_u32(vandq_u32(lo, hi)) != 0
        }
        #[inline(always)]
        unsafe fn f_bits(v: Self::F) -> Self::I {
            I4x2(vreinterpretq_s32_f32(v.0), vreinterpretq_s32_f32(v.1))
        }
        #[inline(always)]
        unsafe fn f_transpose8(rows: &mut [Self::F; 8]) {
            // Four 4×4 quadrant transposes; the off-diagonal quadrants swap.
            #[inline(always)]
            unsafe fn t4(
                a: float32x4_t,
                b: float32x4_t,
                c: float32x4_t,
                d: float32x4_t,
            ) -> [float32x4_t; 4] {
                let ab = vtrnq_f32(a, b);
                let cd = vtrnq_f32(c, d);
                [
                    vcombine_f32(vget_low_f32(ab.0), vget_low_f32(cd.0)),
                    vcombine_f32(vget_low_f32(ab.1), vget_low_f32(cd.1)),
                    vcombine_f32(vget_high_f32(ab.0), vget_high_f32(cd.0)),
                    vcombine_f32(vget_high_f32(ab.1), vget_high_f32(cd.1)),
                ]
            }
            let a = t4(rows[0].0, rows[1].0, rows[2].0, rows[3].0);
            let b = t4(rows[0].1, rows[1].1, rows[2].1, rows[3].1);
            let c = t4(rows[4].0, rows[5].0, rows[6].0, rows[7].0);
            let d = t4(rows[4].1, rows[5].1, rows[6].1, rows[7].1);
            for i in 0..4 {
                rows[i] = F4x2(a[i], c[i]);
                rows[i + 4] = F4x2(b[i], d[i]);
            }
        }

        #[inline(always)]
        unsafe fn i_load(src: &[i32; 8]) -> Self::I {
            let p = src.as_ptr();
            I4x2(vld1q_s32(p), vld1q_s32(p.add(4)))
        }
        #[inline(always)]
        unsafe fn i_store(v: Self::I, dst: &mut [i32; 8]) {
            let p = dst.as_mut_ptr();
            vst1q_s32(p, v.0);
            vst1q_s32(p.add(4), v.1);
        }
        #[inline(always)]
        unsafe fn i_splat(x: i32) -> Self::I {
            let v = vdupq_n_s32(x);
            I4x2(v, v)
        }
        #[inline(always)]
        unsafe fn i_add(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vaddq_s32(a.0, b.0), vaddq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_sub(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vsubq_s32(a.0, b.0), vsubq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_min(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vminq_s32(a.0, b.0), vminq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_max(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vmaxq_s32(a.0, b.0), vmaxq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_and(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vandq_s32(a.0, b.0), vandq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_or(a: Self::I, b: Self::I) -> Self::I {
            I4x2(vorrq_s32(a.0, b.0), vorrq_s32(a.1, b.1))
        }
        #[inline(always)]
        unsafe fn i_andnot(a: Self::I, b: Self::I) -> Self::I {
            // vbic(a, b) computes a & !b, so swap to get !a & b.
            I4x2(vbicq_s32(b.0, a.0), vbicq_s32(b.1, a.1))
        }
        #[inline(always)]
        unsafe fn i_cmp_gt(a: Self::I, b: Self::I) -> Self::I {
            I4x2(
                vreinterpretq_s32_u32(vcgtq_s32(a.0, b.0)),
                vreinterpretq_s32_u32(vcgtq_s32(a.1, b.1)),
            )
        }
        #[inline(always)]
        unsafe fn i_cmp_eq(a: Self::I, b: Self::I) -> Self::I {
            I4x2(
                vreinterpretq_s32_u32(vceqq_s32(a.0, b.0)),
                vreinterpretq_s32_u32(vceqq_s32(a.1, b.1)),
            )
        }
        #[inline(always)]
        unsafe fn i_to_f(v: Self::I) -> Self::F {
            F4x2(vcvtq_f32_s32(v.0), vcvtq_f32_s32(v.1))
        }
        #[inline(always)]
        unsafe fn i_nonzero_mask(v: Self::I) -> u32 {
            let weights_lo = [1u32, 2, 4, 8];
            let weights_hi = [16u32, 32, 64, 128];
            let wl = vld1q_u32(weights_lo.as_ptr());
            let wh = vld1q_u32(weights_hi.as_ptr());
            let nz_lo = vmvnq_u32(vceqzq_s32(v.0));
            let nz_hi = vmvnq_u32(vceqzq_s32(v.1));
            vaddvq_u32(vandq_u32(nz_lo, wl)) + vaddvq_u32(vandq_u32(nz_hi, wh))
        }

        #[inline(always)]
        unsafe fn rgb_widen(src: &[u8; 24]) -> (Self::I, Self::I, Self::I) {
            // vld3 deinterleaves the 24 bytes in one load; two widening
            // moves per channel zero-extend u8 → u16 → u32.
            let t = vld3_u8(src.as_ptr());
            #[inline(always)]
            unsafe fn widen(v: uint8x8_t) -> I4x2 {
                let w = vmovl_u8(v);
                I4x2(
                    vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(w))),
                    vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(w))),
                )
            }
            (widen(t.0), widen(t.1), widen(t.2))
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub use arm::Neon;

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// The instruction-set backends [`simd_dispatch!`] can route to. All
/// variants exist on every architecture; `available()` reports whether the
/// current CPU/build can actually execute one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    Scalar,
    Sse2,
    Avx2,
    Neon,
}

impl Backend {
    /// Every backend, for "run on all available backends" test loops.
    pub const ALL: [Backend; 4] = [Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon];

    /// Whether this backend can execute on the current CPU/build.
    ///
    /// Under Miri, runtime CPU detection is unavailable, so x86 backends
    /// report compile-time `target_feature` state instead (SSE2 is baseline
    /// on x86-64, so `Sse2` stays testable under Miri).
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Sse2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if cfg!(miri) {
                        cfg!(target_feature = "sse2")
                    } else {
                        is_x86_feature_detected!("sse2")
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if cfg!(miri) {
                        cfg!(target_feature = "avx2")
                    } else {
                        is_x86_feature_detected!("avx2")
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    if cfg!(miri) {
                        cfg!(target_feature = "neon")
                    } else {
                        std::arch::is_aarch64_feature_detected!("neon")
                    }
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Stable lowercase name, matching the `PUPPIES_SIMD` override values.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Width of the f32 vector registers this backend issues (1 for scalar).
    pub fn f32_lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 | Backend::Neon => 4,
            Backend::Avx2 => 8,
        }
    }

    fn encode(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 => 2,
            Backend::Avx2 => 3,
            Backend::Neon => 4,
        }
    }

    fn decode(v: u8) -> Backend {
        match v {
            1 => Backend::Scalar,
            2 => Backend::Sse2,
            3 => Backend::Avx2,
            4 => Backend::Neon,
            _ => unreachable!("corrupt cached SIMD backend tag {v}"),
        }
    }
}

/// 0 = not yet detected; otherwise `Backend::encode()` of the selection.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// The process-wide SIMD backend, detected once and cached.
///
/// Precedence: `PUPPIES_SIMD` env override (panics on unknown/unavailable
/// values) > best detected CPU feature (AVX2 > SSE2 > NEON) > scalar.
/// Under Miri the default (no override) is always scalar.
#[inline]
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => {
            let b = detect();
            // Benign race: every thread detects the same answer.
            BACKEND.store(b.encode(), Ordering::Relaxed);
            b
        }
        tag => Backend::decode(tag),
    }
}

/// Name of the process-wide backend (for bench metadata / logs).
pub fn backend_name() -> &'static str {
    backend().name()
}

fn detect() -> Backend {
    // Miri isolates the environment; default to scalar before consulting it.
    // Explicit-backend dispatch (`*_with`) remains available for features
    // that are enabled at compile time.
    if cfg!(miri) {
        return Backend::Scalar;
    }
    if let Ok(name) = std::env::var("PUPPIES_SIMD") {
        let b = match name.as_str() {
            "scalar" => Backend::Scalar,
            "sse2" => Backend::Sse2,
            "avx2" => Backend::Avx2,
            "neon" => Backend::Neon,
            other => panic!("PUPPIES_SIMD={other:?}: expected scalar|sse2|avx2|neon"),
        };
        assert!(
            b.available(),
            "PUPPIES_SIMD={} requested but this CPU/build does not support it",
            b.name()
        );
        return b;
    }
    if Backend::Avx2.available() {
        Backend::Avx2
    } else if Backend::Sse2.available() {
        Backend::Sse2
    } else if Backend::Neon.available() {
        Backend::Neon
    } else {
        Backend::Scalar
    }
}

/// Declares runtime-dispatched frontends for a generic [`Simd8`] kernel.
///
/// ```ignore
/// simd_dispatch! {
///     pub fn fdct_block / fdct_block_with(src: &[f32; 64], dst: &mut [f32; 64]) = kernels::fdct8x8;
/// }
/// ```
///
/// generates two functions:
///
/// * `fdct_block(...)` — dispatches on the cached [`backend()`] through
///   `#[target_feature]` wrappers. Backend availability was verified at
///   detection time, so the per-call cost is one atomic load and a jump.
/// * `fdct_block_with(backend, ...)` — runs the kernel on an explicitly
///   chosen backend (asserting availability). This is what cross-backend
///   identity tests use to exercise several backends in one process.
///
/// The kernel must be an `unsafe fn` generic over `S: Simd8`, safe to call
/// whenever the backend's CPU features are present (scalar: always), and
/// it must be `#[inline(always)]`: the kernel itself carries no
/// `#[target_feature]` attribute, so unless its monomorphization fuses
/// into the generated wrapper, the `core::arch` intrinsics inside cannot
/// be inlined (caller features would not cover them) and every lane op
/// degenerates to an opaque function call through memory — an order of
/// magnitude slower than scalar.
#[macro_export]
macro_rules! simd_dispatch {
    ($(
        $vis:vis fn $name:ident / $name_with:ident ( $($arg:ident : $ty:ty),* $(,)? ) $(-> $ret:ty)? = $($kernel:ident)::+ ;
    )*) => {$(
        #[inline]
        #[allow(dead_code)]
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn dispatch_avx2($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Avx2>($($arg),*) }
                }
                #[target_feature(enable = "sse2")]
                unsafe fn dispatch_sse2($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Sse2>($($arg),*) }
                }
                match $crate::simd::backend() {
                    // Safety: backend() only returns feature-verified backends.
                    $crate::simd::Backend::Avx2 => return unsafe { dispatch_avx2($($arg),*) },
                    $crate::simd::Backend::Sse2 => return unsafe { dispatch_sse2($($arg),*) },
                    _ => {}
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                #[target_feature(enable = "neon")]
                unsafe fn dispatch_neon($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Neon>($($arg),*) }
                }
                if let $crate::simd::Backend::Neon = $crate::simd::backend() {
                    // Safety: backend() only returns feature-verified backends.
                    return unsafe { dispatch_neon($($arg),*) };
                }
            }
            // Safety: the scalar backend has no CPU feature requirements.
            unsafe { $($kernel)::+::<$crate::simd::Scalar8>($($arg),*) }
        }

        /// Explicit-backend variant of the dispatcher (checked; test-facing).
        #[allow(dead_code)]
        $vis fn $name_with(backend: $crate::simd::Backend, $($arg: $ty),*) $(-> $ret)? {
            assert!(
                backend.available(),
                "SIMD backend {} is not available on this CPU/build",
                backend.name()
            );
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2")]
                unsafe fn dispatch_avx2($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Avx2>($($arg),*) }
                }
                #[target_feature(enable = "sse2")]
                unsafe fn dispatch_sse2($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Sse2>($($arg),*) }
                }
                match backend {
                    // Safety: availability asserted above.
                    $crate::simd::Backend::Avx2 => return unsafe { dispatch_avx2($($arg),*) },
                    $crate::simd::Backend::Sse2 => return unsafe { dispatch_sse2($($arg),*) },
                    _ => {}
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                #[target_feature(enable = "neon")]
                unsafe fn dispatch_neon($($arg: $ty),*) $(-> $ret)? {
                    unsafe { $($kernel)::+::<$crate::simd::Neon>($($arg),*) }
                }
                if let $crate::simd::Backend::Neon = backend {
                    // Safety: availability asserted above.
                    return unsafe { dispatch_neon($($arg),*) };
                }
            }
            let _ = backend;
            // Safety: the scalar backend has no CPU feature requirements.
            unsafe { $($kernel)::+::<$crate::simd::Scalar8>($($arg),*) }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Kernels exercised through the dispatch macro so the tests cover the
    // macro plumbing as well as every backend's ops.

    /// Runs every f32 op; masks are stored raw (bit patterns compared).
    unsafe fn k_f_ops<S: Simd8>(
        a: &[f32; 8],
        b: &[f32; 8],
        out: &mut [[f32; 8]; 12],
        flags: &mut u32,
    ) {
        unsafe {
            let va = S::f_load(a);
            let vb = S::f_load(b);
            S::f_store(S::f_add(va, vb), &mut out[0]);
            S::f_store(S::f_sub(va, vb), &mut out[1]);
            S::f_store(S::f_mul(va, vb), &mut out[2]);
            S::f_store(S::f_min(va, vb), &mut out[3]);
            S::f_store(S::f_max(va, vb), &mut out[4]);
            S::f_store(S::f_abs(vb), &mut out[5]);
            S::f_store(S::f_cmp_ge(va, vb), &mut out[6]);
            S::f_store(S::f_cmp_gt(va, vb), &mut out[7]);
            S::f_store(S::f_cmp_le(va, vb), &mut out[8]);
            S::f_store(S::f_cmp_lt(va, vb), &mut out[9]);
            // Mask -> 0.0/1.0 floats via AND with splat(1.0).
            S::f_store(S::f_and(S::f_cmp_ge(va, vb), S::f_splat(1.0)), &mut out[10]);
            S::f_store(S::f_splat(a[0]), &mut out[11]);
            let ge = S::f_cmp_ge(va, vb);
            *flags = u32::from(S::f_any(ge)) | (u32::from(S::f_all(ge)) << 1);
        }
    }

    /// Runs every i32 op plus the f32<->i32 bridges.
    unsafe fn k_i_ops<S: Simd8>(
        a: &[i32; 8],
        b: &[i32; 8],
        out: &mut [[i32; 8]; 11],
        fout: &mut [f32; 8],
        mask: &mut u32,
    ) {
        unsafe {
            let va = S::i_load(a);
            let vb = S::i_load(b);
            S::i_store(S::i_add(va, vb), &mut out[0]);
            S::i_store(S::i_sub(va, vb), &mut out[1]);
            S::i_store(S::i_min(va, vb), &mut out[2]);
            S::i_store(S::i_max(va, vb), &mut out[3]);
            S::i_store(S::i_splat(b[3]), &mut out[4]);
            S::i_store(S::i_and(va, vb), &mut out[6]);
            S::i_store(S::i_or(va, vb), &mut out[7]);
            S::i_store(S::i_andnot(va, vb), &mut out[8]);
            S::i_store(S::i_cmp_gt(va, vb), &mut out[9]);
            S::i_store(S::i_cmp_eq(va, vb), &mut out[10]);
            // f_bits round-trip: bitcast i->f via store/load is not provided,
            // so check f_bits on the float view of `a` instead.
            let mut af = [0f32; 8];
            for i in 0..8 {
                af[i] = f32::from_bits(a[i] as u32);
            }
            S::i_store(S::f_bits(S::f_load(&af)), &mut out[5]);
            S::f_store(S::i_to_f(va), fout);
            *mask = S::i_nonzero_mask(va);
        }
    }

    /// 8×8 transpose through the lane registers.
    unsafe fn k_transpose<S: Simd8>(m: &[f32; 64], out: &mut [f32; 64]) {
        unsafe {
            let rows_in = &*(m.as_ptr() as *const [[f32; 8]; 8]);
            let rows_out = &mut *(out.as_mut_ptr() as *mut [[f32; 8]; 8]);
            let mut rows = [S::f_load(&rows_in[0]); 8];
            for i in 1..8 {
                rows[i] = S::f_load(&rows_in[i]);
            }
            S::f_transpose8(&mut rows);
            for i in 0..8 {
                S::f_store(rows[i], &mut rows_out[i]);
            }
        }
    }

    crate::simd_dispatch! {
        fn f_ops / f_ops_with(a: &[f32; 8], b: &[f32; 8], out: &mut [[f32; 8]; 12], flags: &mut u32) = k_f_ops;
        fn i_ops / i_ops_with(a: &[i32; 8], b: &[i32; 8], out: &mut [[i32; 8]; 11], fout: &mut [f32; 8], mask: &mut u32) = k_i_ops;
        fn transpose / transpose_with(m: &[f32; 64], out: &mut [f32; 64]) = k_transpose;
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn rand_f32(state: &mut u64) -> f32 {
        // Finite values spanning sign, magnitude, and exact-tie patterns.
        let bits = xorshift(state);
        let v = ((bits as i32 as i64) % 100_000) as f32 / 16.0;
        if bits & 0x10000 != 0 {
            v + 0.5
        } else {
            v
        }
    }

    fn others() -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| *b != Backend::Scalar && b.available())
            .collect()
    }

    fn bits12(out: &[[f32; 8]; 12]) -> Vec<u32> {
        out.iter().flatten().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn f32_ops_match_scalar_bitwise_on_all_backends() {
        let mut st = 0x1234_5678_9ABC_DEF0u64;
        for case in 0..256 {
            let mut a = [0f32; 8];
            let mut b = [0f32; 8];
            for i in 0..8 {
                a[i] = rand_f32(&mut st);
                b[i] = rand_f32(&mut st);
            }
            if case % 7 == 0 {
                b = a; // exercise the equality edges of the compares
            }
            let mut want = [[0f32; 8]; 12];
            let mut want_flags = 0u32;
            f_ops_with(Backend::Scalar, &a, &b, &mut want, &mut want_flags);
            for backend in others() {
                let mut got = [[0f32; 8]; 12];
                let mut flags = 0u32;
                f_ops_with(backend, &a, &b, &mut got, &mut flags);
                assert_eq!(
                    bits12(&want),
                    bits12(&got),
                    "f32 ops diverge on {} (case {case})",
                    backend.name()
                );
                assert_eq!(
                    want_flags,
                    flags,
                    "any/all diverge on {} (case {case})",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn i32_ops_match_scalar_on_all_backends() {
        let mut st = 0xDEAD_BEEF_0BAD_F00Du64;
        for case in 0..256 {
            let mut a = [0i32; 8];
            let mut b = [0i32; 8];
            for i in 0..8 {
                a[i] = (xorshift(&mut st) as i32) % 3000;
                b[i] = (xorshift(&mut st) as i32) % 3000;
                if xorshift(&mut st) % 5 == 0 {
                    a[i] = 0; // make nonzero masks interesting
                }
            }
            let mut want = [[0i32; 8]; 11];
            let mut want_f = [0f32; 8];
            let mut want_mask = 0u32;
            i_ops_with(
                Backend::Scalar,
                &a,
                &b,
                &mut want,
                &mut want_f,
                &mut want_mask,
            );
            // Scalar oracle for the nonzero mask, computed independently.
            let direct: u32 = a
                .iter()
                .enumerate()
                .map(|(i, &x)| u32::from(x != 0) << i)
                .sum();
            assert_eq!(want_mask, direct);
            for backend in others() {
                let mut got = [[0i32; 8]; 11];
                let mut got_f = [0f32; 8];
                let mut got_mask = 0u32;
                i_ops_with(backend, &a, &b, &mut got, &mut got_f, &mut got_mask);
                assert_eq!(
                    want,
                    got,
                    "i32 ops diverge on {} (case {case})",
                    backend.name()
                );
                assert_eq!(
                    want_f.map(f32::to_bits),
                    got_f.map(f32::to_bits),
                    "i_to_f diverges on {} (case {case})",
                    backend.name()
                );
                assert_eq!(
                    want_mask,
                    got_mask,
                    "nonzero mask diverges on {} (case {case})",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn transpose8_is_exact_on_all_backends() {
        let mut m = [0f32; 64];
        for (i, v) in m.iter_mut().enumerate() {
            *v = (i as f32) * 1.25 - 17.0;
        }
        let mut want = [0f32; 64];
        for r in 0..8 {
            for c in 0..8 {
                want[c * 8 + r] = m[r * 8 + c];
            }
        }
        for backend in Backend::ALL.into_iter().filter(|b| b.available()) {
            let mut got = [0f32; 64];
            transpose_with(backend, &m, &mut got);
            assert_eq!(want, got, "transpose diverges on {}", backend.name());
        }
    }

    #[test]
    fn default_dispatch_matches_scalar() {
        let a = [1.5f32, -2.25, 3.0, 0.5, -0.5, 1e20, -1e-20, 0.0];
        let b = [0.5f32, -2.25, 4.0, 0.5, 0.25, 1e19, 1.0, -0.0];
        let mut want = [[0f32; 8]; 12];
        let mut want_flags = 0u32;
        f_ops_with(Backend::Scalar, &a, &b, &mut want, &mut want_flags);
        let mut got = [[0f32; 8]; 12];
        let mut flags = 0u32;
        f_ops(&a, &b, &mut got, &mut flags);
        assert_eq!(bits12(&want), bits12(&got));
        assert_eq!(want_flags, flags);

        let mut m = [0f32; 64];
        for (i, v) in m.iter_mut().enumerate() {
            *v = i as f32;
        }
        let mut t1 = [0f32; 64];
        let mut t2 = [0f32; 64];
        transpose(&m, &mut t1);
        transpose(&t1, &mut t2);
        assert_eq!(m, t2, "transpose must be an involution");
    }

    #[test]
    fn backend_metadata_is_consistent() {
        let b = backend();
        assert!(b.available(), "selected backend must be available");
        assert_eq!(backend_name(), b.name());
        assert!(matches!(b.f32_lanes(), 1 | 4 | 8));
        assert!(Backend::Scalar.available());
        for x in Backend::ALL {
            assert_eq!(Backend::decode(x.encode()), x);
        }
    }

    #[test]
    fn magic_number_rounding_primitive_holds() {
        // The quantize kernels rely on (x + 1.5*2^23) - 1.5*2^23 performing
        // round-half-even for |x| < 2^22; pin that here once, on every
        // backend, so kernel-level debugging never has to requestion it.
        const MAGIC: f32 = 12_582_912.0;
        let vals = [
            0.5f32, 1.5, 2.5, -0.5, -1.5, -2.5, 3.49, -3.51, 1000.75, -0.25,
        ];
        for v in vals {
            let rounded = (v + MAGIC) - MAGIC;
            let expect = {
                // round-half-even reference
                let f = v.floor();
                let d = v - f;
                let tie_up = d >= 0.5 && (d > 0.5 || (f as i64) % 2 != 0);
                if tie_up {
                    f + 1.0
                } else {
                    f
                }
            };
            assert_eq!(rounded, expect, "magic rounding broke for {v}");
        }
    }
}
