//! Drawing primitives used by the synthetic dataset generators.

use crate::buffer::RgbImage;
use crate::color::Rgb;
use crate::geometry::{Point, Rect};

/// Fills `rect` (clipped to the image) with `color`.
pub fn fill_rect(img: &mut RgbImage, rect: Rect, color: Rgb) {
    let r = rect.intersect(img.bounds());
    for y in r.y..r.bottom() {
        for x in r.x..r.right() {
            img.set(x, y, color);
        }
    }
}

/// Draws a 1-pixel rectangle outline (clipped).
pub fn stroke_rect(img: &mut RgbImage, rect: Rect, color: Rgb) {
    if rect.is_empty() {
        return;
    }
    let b = img.bounds();
    for x in rect.x..rect.right() {
        if b.contains(x, rect.y) {
            img.set(x, rect.y, color);
        }
        if rect.h > 0 && b.contains(x, rect.bottom() - 1) {
            img.set(x, rect.bottom() - 1, color);
        }
    }
    for y in rect.y..rect.bottom() {
        if b.contains(rect.x, y) {
            img.set(rect.x, y, color);
        }
        if rect.w > 0 && b.contains(rect.right() - 1, y) {
            img.set(rect.right() - 1, y, color);
        }
    }
}

/// Draws a line segment with Bresenham's algorithm (clipped).
pub fn line(img: &mut RgbImage, a: Point, b: Point, color: Rgb) {
    let (mut x0, mut y0) = (a.x, a.y);
    let (x1, y1) = (b.x, b.y);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x0 >= 0 && y0 >= 0 && (x0 as u32) < img.width() && (y0 as u32) < img.height() {
            img.set(x0 as u32, y0 as u32, color);
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Fills an axis-aligned ellipse centered at `(cx, cy)` with radii
/// `(rx, ry)` (clipped).
pub fn fill_ellipse(img: &mut RgbImage, cx: i32, cy: i32, rx: i32, ry: i32, color: Rgb) {
    if rx <= 0 || ry <= 0 {
        return;
    }
    let (rx2, ry2) = ((rx as i64) * (rx as i64), (ry as i64) * (ry as i64));
    for dy in -ry..=ry {
        for dx in -rx..=rx {
            if (dx as i64) * (dx as i64) * ry2 + (dy as i64) * (dy as i64) * rx2 <= rx2 * ry2 {
                let (x, y) = (cx + dx, cy + dy);
                if x >= 0 && y >= 0 && (x as u32) < img.width() && (y as u32) < img.height() {
                    img.set(x as u32, y as u32, color);
                }
            }
        }
    }
}

/// Fills a convex polygon given its vertices in order (clipped). Uses a
/// scanline fill with the even-odd rule, which is exact for convex shapes.
pub fn fill_polygon(img: &mut RgbImage, pts: &[Point], color: Rgb) {
    if pts.len() < 3 {
        return;
    }
    let min_y = pts.iter().map(|p| p.y).min().unwrap().max(0);
    let max_y = pts
        .iter()
        .map(|p| p.y)
        .max()
        .unwrap()
        .min(img.height() as i32 - 1);
    for y in min_y..=max_y {
        let mut xs: Vec<f64> = Vec::new();
        let fy = y as f64 + 0.5;
        for i in 0..pts.len() {
            let p = pts[i];
            let q = pts[(i + 1) % pts.len()];
            let (y0, y1) = (p.y as f64, q.y as f64);
            if (y0 <= fy && fy < y1) || (y1 <= fy && fy < y0) {
                let t = (fy - y0) / (y1 - y0);
                xs.push(p.x as f64 + t * (q.x as f64 - p.x as f64));
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in xs.chunks(2) {
            if pair.len() == 2 {
                let x0 = pair[0].ceil().max(0.0) as u32;
                let x1 = (pair[1].floor() as i64).min(img.width() as i64 - 1);
                for x in x0 as i64..=x1 {
                    if x >= 0 {
                        img.set(x as u32, y as u32, color);
                    }
                }
            }
        }
    }
}

/// Fills the whole image with a vertical gradient from `top` to `bottom`.
pub fn vertical_gradient(img: &mut RgbImage, top: Rgb, bottom: Rgb) {
    let h = img.height();
    for y in 0..h {
        let t = if h > 1 {
            y as f32 / (h - 1) as f32
        } else {
            0.0
        };
        let c = top.lerp(bottom, t);
        for x in 0..img.width() {
            img.set(x, y, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_paints_expected_area() {
        let mut img = RgbImage::new(10, 10);
        fill_rect(&mut img, Rect::new(2, 2, 3, 3), Rgb::WHITE);
        let white = img.pixels().iter().filter(|&&c| c == Rgb::WHITE).count();
        assert_eq!(white, 9);
    }

    #[test]
    fn stroke_rect_is_hollow() {
        let mut img = RgbImage::new(10, 10);
        stroke_rect(&mut img, Rect::new(1, 1, 5, 5), Rgb::WHITE);
        assert_eq!(img.get(1, 1), Rgb::WHITE);
        assert_eq!(img.get(3, 3), Rgb::BLACK);
        assert_eq!(img.get(5, 5), Rgb::WHITE);
    }

    #[test]
    fn line_endpoints_are_painted() {
        let mut img = RgbImage::new(16, 16);
        line(&mut img, Point::new(0, 0), Point::new(15, 10), Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::WHITE);
        assert_eq!(img.get(15, 10), Rgb::WHITE);
    }

    #[test]
    fn line_clips_outside() {
        let mut img = RgbImage::new(8, 8);
        line(&mut img, Point::new(-5, -5), Point::new(20, 20), Rgb::WHITE);
        assert_eq!(img.get(3, 3), Rgb::WHITE);
    }

    #[test]
    fn ellipse_center_painted_edges_not() {
        let mut img = RgbImage::new(21, 21);
        fill_ellipse(&mut img, 10, 10, 5, 3, Rgb::WHITE);
        assert_eq!(img.get(10, 10), Rgb::WHITE);
        assert_eq!(img.get(10 + 5, 10), Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.get(10 + 5, 10 + 3), Rgb::BLACK);
    }

    #[test]
    fn polygon_triangle_fill() {
        let mut img = RgbImage::new(20, 20);
        fill_polygon(
            &mut img,
            &[Point::new(2, 2), Point::new(18, 2), Point::new(10, 16)],
            Rgb::WHITE,
        );
        assert_eq!(img.get(10, 5), Rgb::WHITE);
        assert_eq!(img.get(1, 18), Rgb::BLACK);
    }

    #[test]
    fn gradient_monotone() {
        let mut img = RgbImage::new(4, 16);
        vertical_gradient(&mut img, Rgb::BLACK, Rgb::WHITE);
        let mut prev = 0u8;
        for y in 0..16 {
            let v = img.get(0, y).r;
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(img.get(0, 0), Rgb::BLACK);
        assert_eq!(img.get(0, 15), Rgb::WHITE);
    }
}
