//! Resampling, rotation and flipping.
//!
//! These are the pixel-domain transformations a PSP applies to uploaded
//! images (§II-B of the paper: scaling, cropping, rotation, ...). They are
//! deliberately *perturbation-agnostic*: the same code runs on original and
//! PuPPIeS-perturbed images, which is exactly the property the paper relies
//! on.

use crate::buffer::{GrayImage, Plane, RgbImage};
use crate::color::Rgb;

/// Resampling filter selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Filter {
    /// Nearest-neighbour (point) sampling.
    Nearest,
    /// Bilinear interpolation; the default, and what a typical PSP uses.
    #[default]
    Bilinear,
    /// Box (area-average) filter, best for strong downscaling.
    Box,
}

/// Scales an RGB image to `(nw, nh)` with the given filter.
///
/// # Panics
/// Panics if either target dimension is zero.
pub fn scale_rgb(src: &RgbImage, nw: u32, nh: u32, filter: Filter) -> RgbImage {
    assert!(nw > 0 && nh > 0, "target dimensions must be nonzero");
    let planes = split_channels(src);
    let scaled = planes.map(|p| scale_plane(&p, nw, nh, filter));
    merge_channels(&scaled)
}

/// Scales a grayscale image to `(nw, nh)` with the given filter.
///
/// # Panics
/// Panics if either target dimension is zero.
pub fn scale_gray(src: &GrayImage, nw: u32, nh: u32, filter: Filter) -> GrayImage {
    scale_plane(&src.to_plane(), nw, nh, filter).to_gray()
}

/// Scales a float plane to `(nw, nh)` with the given filter. This is the
/// shared kernel for all scaling; running it on a plane keeps intermediate
/// precision, which matters for shadow-ROI subtraction.
///
/// # Panics
/// Panics if either target dimension is zero.
pub fn scale_plane(src: &Plane, nw: u32, nh: u32, filter: Filter) -> Plane {
    assert!(nw > 0 && nh > 0, "target dimensions must be nonzero");
    match filter {
        Filter::Nearest => scale_nearest(src, nw, nh),
        Filter::Bilinear => scale_bilinear(src, nw, nh),
        Filter::Box => scale_box(src, nw, nh),
    }
}

fn scale_nearest(src: &Plane, nw: u32, nh: u32) -> Plane {
    let (w, h) = (src.width(), src.height());
    Plane::from_fn(nw, nh, |x, y| {
        let sx = ((x as u64 * w as u64) / nw as u64).min(w as u64 - 1) as u32;
        let sy = ((y as u64 * h as u64) / nh as u64).min(h as u64 - 1) as u32;
        src.get(sx, sy)
    })
}

fn scale_bilinear(src: &Plane, nw: u32, nh: u32) -> Plane {
    let (w, h) = (src.width() as f64, src.height() as f64);
    let sx = w / nw as f64;
    let sy = h / nh as f64;
    Plane::from_fn(nw, nh, |x, y| {
        // Pixel-center convention.
        let fx = (x as f64 + 0.5) * sx - 0.5;
        let fy = (y as f64 + 0.5) * sy - 0.5;
        let x0 = fx.floor();
        let y0 = fy.floor();
        let tx = (fx - x0) as f32;
        let ty = (fy - y0) as f32;
        let (x0, y0) = (x0 as i64, y0 as i64);
        let p00 = src.get_clamped(x0, y0);
        let p10 = src.get_clamped(x0 + 1, y0);
        let p01 = src.get_clamped(x0, y0 + 1);
        let p11 = src.get_clamped(x0 + 1, y0 + 1);
        let top = p00 + (p10 - p00) * tx;
        let bot = p01 + (p11 - p01) * tx;
        top + (bot - top) * ty
    })
}

fn scale_box(src: &Plane, nw: u32, nh: u32) -> Plane {
    let (w, h) = (src.width() as f64, src.height() as f64);
    Plane::from_fn(nw, nh, |x, y| {
        let x0 = x as f64 * w / nw as f64;
        let x1 = (x + 1) as f64 * w / nw as f64;
        let y0 = y as f64 * h / nh as f64;
        let y1 = (y + 1) as f64 * h / nh as f64;
        let (ix0, ix1) = (x0.floor() as u32, (x1.ceil() as u32).min(src.width()));
        let (iy0, iy1) = (y0.floor() as u32, (y1.ceil() as u32).min(src.height()));
        let mut acc = 0.0f64;
        let mut wsum = 0.0f64;
        for py in iy0..iy1 {
            let wy = overlap(py as f64, py as f64 + 1.0, y0, y1);
            for px in ix0..ix1 {
                let wx = overlap(px as f64, px as f64 + 1.0, x0, x1);
                acc += src.get(px, py) as f64 * wx * wy;
                wsum += wx * wy;
            }
        }
        if wsum > 0.0 {
            (acc / wsum) as f32
        } else {
            src.get_clamped(x as i64, y as i64)
        }
    })
}

fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

/// 90° clockwise rotation.
pub fn rotate90(src: &RgbImage) -> RgbImage {
    RgbImage::from_fn(src.height(), src.width(), |x, y| {
        src.get(y, src.height() - 1 - x)
    })
}

/// 180° rotation.
pub fn rotate180(src: &RgbImage) -> RgbImage {
    RgbImage::from_fn(src.width(), src.height(), |x, y| {
        src.get(src.width() - 1 - x, src.height() - 1 - y)
    })
}

/// 270° clockwise (= 90° counter-clockwise) rotation.
pub fn rotate270(src: &RgbImage) -> RgbImage {
    RgbImage::from_fn(src.height(), src.width(), |x, y| {
        src.get(src.width() - 1 - y, x)
    })
}

/// Horizontal mirror.
pub fn flip_horizontal(src: &RgbImage) -> RgbImage {
    RgbImage::from_fn(src.width(), src.height(), |x, y| {
        src.get(src.width() - 1 - x, y)
    })
}

/// Vertical mirror.
pub fn flip_vertical(src: &RgbImage) -> RgbImage {
    RgbImage::from_fn(src.width(), src.height(), |x, y| {
        src.get(x, src.height() - 1 - y)
    })
}

/// Rotates by an arbitrary angle (radians, counter-clockwise) around the
/// image center with bilinear sampling; pixels mapped from outside the
/// source take `fill`. The output has the same dimensions as the input.
pub fn rotate_arbitrary(src: &RgbImage, angle: f64, fill: Rgb) -> RgbImage {
    let (w, h) = (src.width() as f64, src.height() as f64);
    let (cx, cy) = (w / 2.0, h / 2.0);
    let (sin, cos) = angle.sin_cos();
    RgbImage::from_fn(src.width(), src.height(), |x, y| {
        // Inverse-map the destination pixel into the source.
        let dx = x as f64 + 0.5 - cx;
        let dy = y as f64 + 0.5 - cy;
        let sx = cos * dx + sin * dy + cx - 0.5;
        let sy = -sin * dx + cos * dy + cy - 0.5;
        if sx < -0.5 || sy < -0.5 || sx > w - 0.5 || sy > h - 0.5 {
            return fill;
        }
        let x0 = sx.floor() as i64;
        let y0 = sy.floor() as i64;
        let tx = (sx - x0 as f64) as f32;
        let ty = (sy - y0 as f64) as f32;
        let lerp = |a: u8, b: u8, t: f32| a as f32 + (b as f32 - a as f32) * t;
        let sample = |ch: fn(Rgb) -> u8| {
            let p00 = ch(src.get_clamped(x0, y0));
            let p10 = ch(src.get_clamped(x0 + 1, y0));
            let p01 = ch(src.get_clamped(x0, y0 + 1));
            let p11 = ch(src.get_clamped(x0 + 1, y0 + 1));
            let top = lerp(p00, p10, tx);
            let bot = lerp(p01, p11, tx);
            (top + (bot - top) * ty).round().clamp(0.0, 255.0) as u8
        };
        Rgb::new(sample(|c| c.r), sample(|c| c.g), sample(|c| c.b))
    })
}

/// Splits an RGB image into three float planes (R, G, B order).
pub fn split_channels(src: &RgbImage) -> [Plane; 3] {
    let mut planes = [
        Plane::new(src.width(), src.height()),
        Plane::new(src.width(), src.height()),
        Plane::new(src.width(), src.height()),
    ];
    for y in 0..src.height() {
        for x in 0..src.width() {
            let c = src.get(x, y);
            planes[0].set(x, y, c.r as f32);
            planes[1].set(x, y, c.g as f32);
            planes[2].set(x, y, c.b as f32);
        }
    }
    planes
}

/// Merges three float planes (R, G, B) back into an RGB image with rounding
/// and clamping.
///
/// # Panics
/// Panics if the planes disagree in size.
pub fn merge_channels(planes: &[Plane; 3]) -> RgbImage {
    let (w, h) = (planes[0].width(), planes[0].height());
    assert!(
        planes.iter().all(|p| p.width() == w && p.height() == h),
        "plane sizes differ"
    );
    RgbImage::from_fn(w, h, |x, y| {
        Rgb::new(
            planes[0].get(x, y).round().clamp(0.0, 255.0) as u8,
            planes[1].get(x, y).round().clamp(0.0, 255.0) as u8,
            planes[2].get(x, y).round().clamp(0.0, 255.0) as u8,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Rgb::new((x * 7 % 256) as u8, (y * 5 % 256) as u8, 99)
        })
    }

    #[test]
    fn identity_scale_is_lossless_for_all_filters() {
        let img = gradient(17, 13);
        for f in [Filter::Nearest, Filter::Bilinear, Filter::Box] {
            let out = scale_rgb(&img, 17, 13, f);
            assert_eq!(out, img, "{f:?}");
        }
    }

    #[test]
    fn constant_image_stays_constant_under_scaling() {
        let img = RgbImage::filled(20, 20, Rgb::new(100, 150, 200));
        for f in [Filter::Nearest, Filter::Bilinear, Filter::Box] {
            let out = scale_rgb(&img, 7, 31, f);
            for p in out.pixels() {
                assert_eq!(*p, Rgb::new(100, 150, 200), "{f:?}");
            }
        }
    }

    #[test]
    fn box_downscale_preserves_mean() {
        let img = gradient(64, 64).to_gray();
        let down = scale_gray(&img, 8, 8, Filter::Box);
        assert!((img.mean() - down.mean()).abs() < 1.5);
    }

    #[test]
    fn rotations_compose_to_identity() {
        let img = gradient(9, 14);
        assert_eq!(rotate180(&rotate180(&img)), img);
        assert_eq!(rotate270(&rotate90(&img)), img);
        assert_eq!(rotate90(&rotate90(&img)), rotate180(&img));
    }

    #[test]
    fn rotate90_moves_topleft_to_topright() {
        let mut img = RgbImage::new(4, 4);
        img.set(0, 0, Rgb::WHITE);
        let r = rotate90(&img);
        assert_eq!(r.get(3, 0), Rgb::WHITE);
    }

    #[test]
    fn flips_are_involutions() {
        let img = gradient(11, 6);
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn rotate_arbitrary_zero_angle_is_identity() {
        let img = gradient(12, 12);
        let r = rotate_arbitrary(&img, 0.0, Rgb::BLACK);
        assert_eq!(r, img);
    }

    #[test]
    fn rotate_arbitrary_fills_corners() {
        let img = RgbImage::filled(20, 20, Rgb::WHITE);
        let r = rotate_arbitrary(&img, std::f64::consts::FRAC_PI_4, Rgb::BLACK);
        assert_eq!(r.get(0, 0), Rgb::BLACK, "corner must be fill color");
        assert_eq!(r.get(10, 10), Rgb::WHITE, "center preserved");
    }

    #[test]
    fn split_merge_roundtrip() {
        let img = gradient(10, 10);
        let planes = split_channels(&img);
        assert_eq!(merge_channels(&planes), img);
    }

    #[test]
    fn upscale_then_downscale_approximates_identity() {
        let img = gradient(16, 16).to_gray();
        let up = scale_gray(&img, 32, 32, Filter::Bilinear);
        let back = scale_gray(&up, 16, 16, Filter::Box);
        let mut max_err = 0i32;
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            max_err = max_err.max((*a as i32 - *b as i32).abs());
        }
        assert!(max_err <= 16, "max error {max_err} too large");
    }
}
