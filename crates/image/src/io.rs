//! Binary PPM (P6) and PGM (P5) reading and writing.
//!
//! The experiment binaries dump intermediate images (perturbed, attacked,
//! recovered) so a human can eyeball them; PPM/PGM keeps that dependency
//! free. JPEG IO lives in `puppies-jpeg`.

use crate::buffer::{GrayImage, RgbImage};
use crate::color::Rgb;
use crate::{ImageError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes `img` as a binary PPM (P6) stream.
///
/// # Errors
/// Propagates IO failures from the writer.
pub fn write_ppm<W: Write>(img: &RgbImage, mut w: W) -> Result<()> {
    write!(w, "P6\n{} {}\n255\n", img.width(), img.height())?;
    let mut buf = Vec::with_capacity(img.pixels().len() * 3);
    for p in img.pixels() {
        buf.extend_from_slice(&[p.r, p.g, p.b]);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes `img` as a binary PGM (P5) stream.
///
/// # Errors
/// Propagates IO failures from the writer.
pub fn write_pgm<W: Write>(img: &GrayImage, mut w: W) -> Result<()> {
    write!(w, "P5\n{} {}\n255\n", img.width(), img.height())?;
    w.write_all(img.pixels())?;
    Ok(())
}

/// Saves `img` to `path` as binary PPM.
///
/// # Errors
/// Propagates file-creation and write failures.
pub fn save_ppm<P: AsRef<Path>>(img: &RgbImage, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_ppm(img, std::io::BufWriter::new(f))
}

/// Saves `img` to `path` as binary PGM.
///
/// # Errors
/// Propagates file-creation and write failures.
pub fn save_pgm<P: AsRef<Path>>(img: &GrayImage, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_pgm(img, std::io::BufWriter::new(f))
}

fn read_token<R: BufRead>(r: &mut R) -> Result<String> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && !tok.is_empty() => break,
            Err(e) => return Err(ImageError::Io(e)),
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_ascii_whitespace() {
            if tok.is_empty() {
                continue;
            }
            break;
        }
        tok.push(c);
    }
    Ok(tok)
}

fn parse_header<R: BufRead>(r: &mut R, magic: &str) -> Result<(u32, u32)> {
    let m = read_token(r)?;
    if m != magic {
        return Err(ImageError::Format(format!(
            "expected magic {magic}, found {m:?}"
        )));
    }
    let w: u32 = read_token(r)?
        .parse()
        .map_err(|e| ImageError::Format(format!("bad width: {e}")))?;
    let h: u32 = read_token(r)?
        .parse()
        .map_err(|e| ImageError::Format(format!("bad height: {e}")))?;
    let maxval: u32 = read_token(r)?
        .parse()
        .map_err(|e| ImageError::Format(format!("bad maxval: {e}")))?;
    if maxval != 255 {
        return Err(ImageError::Format(format!(
            "only maxval 255 supported, found {maxval}"
        )));
    }
    if w == 0 || h == 0 {
        return Err(ImageError::InvalidDimensions {
            width: w,
            height: h,
        });
    }
    Ok((w, h))
}

/// Reads a binary PPM (P6) stream.
///
/// # Errors
/// Returns [`ImageError::Format`] on malformed headers and IO errors on
/// truncated payloads.
pub fn read_ppm<R: Read>(r: R) -> Result<RgbImage> {
    let mut r = BufReader::new(r);
    let (w, h) = parse_header(&mut r, "P6")?;
    let mut data = vec![0u8; (w as usize) * (h as usize) * 3];
    r.read_exact(&mut data)?;
    let mut img = RgbImage::new(w, h);
    for (i, px) in img.pixels_mut().iter_mut().enumerate() {
        *px = Rgb::new(data[i * 3], data[i * 3 + 1], data[i * 3 + 2]);
    }
    Ok(img)
}

/// Reads a binary PGM (P5) stream.
///
/// # Errors
/// Returns [`ImageError::Format`] on malformed headers and IO errors on
/// truncated payloads.
pub fn read_pgm<R: Read>(r: R) -> Result<GrayImage> {
    let mut r = BufReader::new(r);
    let (w, h) = parse_header(&mut r, "P5")?;
    let mut data = vec![0u8; (w as usize) * (h as usize)];
    r.read_exact(&mut data)?;
    let mut img = GrayImage::new(w, h);
    img.pixels_mut().copy_from_slice(&data);
    Ok(img)
}

/// Loads a binary PPM from `path`.
///
/// # Errors
/// Propagates open/parse failures.
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    read_ppm(std::fs::File::open(path)?)
}

/// Loads a binary PGM from `path`.
///
/// # Errors
/// Propagates open/parse failures.
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<GrayImage> {
    read_pgm(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_roundtrip() {
        let img = RgbImage::from_fn(7, 5, |x, y| Rgb::new(x as u8, y as u8, (x + y) as u8));
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(9, 4, |x, y| (x * 11 + y) as u8);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_comments_are_skipped() {
        let img = GrayImage::filled(2, 2, 5);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        // Inject a comment line after the magic.
        let s = String::from_utf8_lossy(&buf[..2]).to_string();
        let mut patched = format!("{s}\n# a comment\n").into_bytes();
        patched.extend_from_slice(&buf[3..]);
        let back = read_pgm(&patched[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let err = read_pgm(&b"P6\n2 2\n255\n0000"[..]).unwrap_err();
        assert!(matches!(err, ImageError::Format(_)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let err = read_pgm(&b"P5\n4 4\n255\nxx"[..]).unwrap_err();
        assert!(matches!(err, ImageError::Io(_)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("puppies_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let img = RgbImage::filled(3, 3, Rgb::new(1, 2, 3));
        save_ppm(&img, &path).unwrap();
        assert_eq!(load_ppm(&path).unwrap(), img);
        std::fs::remove_file(&path).ok();
    }
}
