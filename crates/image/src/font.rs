//! A built-in 5×7 bitmap font.
//!
//! The synthetic datasets embed sensitive text (SSNs, license plates,
//! "Hello World!") that the OCR-style detector must find and that the
//! signal-correlation attacks of §VI-B try to recover, so text rendering has
//! to be deterministic and dependency-free.

use crate::buffer::RgbImage;
use crate::color::Rgb;
use crate::geometry::Rect;

/// Glyph cell width in pixels (excluding inter-character spacing).
pub const GLYPH_W: u32 = 5;
/// Glyph cell height in pixels.
pub const GLYPH_H: u32 = 7;

/// Returns the 7 bitmap rows (low 5 bits used, MSB of the 5 = leftmost
/// pixel) for a supported character, or `None` for unsupported ones.
///
/// Supported: ASCII digits, uppercase letters, space and `- ! . , : ' ?`.
/// Lowercase letters are rendered with their uppercase glyph.
pub fn glyph(c: char) -> Option<[u8; 7]> {
    let c = c.to_ascii_uppercase();
    let g: [u8; 7] = match c {
        ' ' => [0, 0, 0, 0, 0, 0, 0],
        '-' => [0, 0, 0, 0b11111, 0, 0, 0],
        '!' => [0b00100; 7].map_idx(|i, v| if i == 5 { 0 } else { v }),
        '.' => [0, 0, 0, 0, 0, 0b00100, 0b00100],
        ',' => [0, 0, 0, 0, 0b00100, 0b00100, 0b01000],
        ':' => [0, 0b00100, 0b00100, 0, 0b00100, 0b00100, 0],
        '\'' => [0b00100, 0b00100, 0, 0, 0, 0, 0],
        '?' => [0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100],
        '0' => [
            0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
        ],
        '1' => [
            0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        '2' => [
            0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
        ],
        '3' => [
            0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
        ],
        '4' => [
            0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
        ],
        '5' => [
            0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
        ],
        '6' => [
            0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
        ],
        '7' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
        ],
        '8' => [
            0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
        ],
        '9' => [
            0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
        ],
        'A' => [
            0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001,
        ],
        'B' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110,
        ],
        'C' => [
            0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110,
        ],
        'D' => [
            0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100,
        ],
        'E' => [
            0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111,
        ],
        'F' => [
            0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000,
        ],
        'G' => [
            0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111,
        ],
        'H' => [
            0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001,
        ],
        'I' => [
            0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        'J' => [
            0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100,
        ],
        'K' => [
            0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001,
        ],
        'L' => [
            0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111,
        ],
        'M' => [
            0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001,
        ],
        'N' => [
            0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001,
        ],
        'O' => [
            0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110,
        ],
        'P' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000,
        ],
        'Q' => [
            0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101,
        ],
        'R' => [
            0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001,
        ],
        'S' => [
            0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110,
        ],
        'T' => [
            0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100,
        ],
        'U' => [
            0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110,
        ],
        'V' => [
            0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100,
        ],
        'W' => [
            0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010,
        ],
        'X' => [
            0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001,
        ],
        'Y' => [
            0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100,
        ],
        'Z' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111,
        ],
        _ => return None,
    };
    Some(g)
}

trait MapIdx {
    fn map_idx(self, f: impl Fn(usize, u8) -> u8) -> Self;
}

impl MapIdx for [u8; 7] {
    fn map_idx(self, f: impl Fn(usize, u8) -> u8) -> Self {
        let mut out = self;
        for (i, v) in out.iter_mut().enumerate() {
            *v = f(i, *v);
        }
        out
    }
}

/// Draws `text` with its top-left corner at `(x, y)`, scaling each glyph
/// pixel to a `scale`×`scale` block, and returns the bounding rectangle of
/// what was drawn (before clipping). Unsupported characters render as
/// spaces.
pub fn draw_text(img: &mut RgbImage, text: &str, x: u32, y: u32, scale: u32, color: Rgb) -> Rect {
    let scale = scale.max(1);
    let mut cx = x;
    for ch in text.chars() {
        if let Some(rows) = glyph(ch) {
            for (ry, row) in rows.iter().enumerate() {
                for rx in 0..GLYPH_W {
                    if row & (1 << (GLYPH_W - 1 - rx)) != 0 {
                        for sy in 0..scale {
                            for sx in 0..scale {
                                let px = cx + rx * scale + sx;
                                let py = y + ry as u32 * scale + sy;
                                if px < img.width() && py < img.height() {
                                    img.set(px, py, color);
                                }
                            }
                        }
                    }
                }
            }
        }
        cx += (GLYPH_W + 1) * scale;
    }
    let w = cx.saturating_sub(x).saturating_sub(scale); // drop trailing gap
    Rect::new(x, y, w, GLYPH_H * scale)
}

/// Pixel width of `text` when drawn at the given scale (excluding the
/// trailing inter-character gap).
pub fn text_width(text: &str, scale: u32) -> u32 {
    let n = text.chars().count() as u32;
    if n == 0 {
        0
    } else {
        n * (GLYPH_W + 1) * scale.max(1) - scale.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_advertised_chars_have_glyphs() {
        for c in ('0'..='9').chain('A'..='Z').chain(" -!.,:'?".chars()) {
            assert!(glyph(c).is_some(), "missing glyph for {c:?}");
        }
        assert!(glyph('a').is_some(), "lowercase maps to uppercase");
        assert!(glyph('€').is_none());
    }

    #[test]
    fn glyphs_fit_in_five_columns() {
        for c in ('0'..='9').chain('A'..='Z') {
            for row in glyph(c).unwrap() {
                assert_eq!(row & !0b11111, 0, "glyph {c} uses more than 5 bits");
            }
        }
    }

    #[test]
    fn draw_text_paints_pixels_and_reports_bounds() {
        let mut img = RgbImage::new(100, 20);
        let r = draw_text(&mut img, "AB", 2, 3, 1, Rgb::WHITE);
        assert_eq!(r, Rect::new(2, 3, 11, 7));
        let painted = img.pixels().iter().filter(|&&c| c == Rgb::WHITE).count();
        assert!(painted > 10, "expected some pixels painted, got {painted}");
    }

    #[test]
    fn scale_multiplies_extent() {
        let mut img = RgbImage::new(200, 50);
        let r1 = draw_text(&mut img, "8", 0, 0, 1, Rgb::WHITE);
        let r3 = draw_text(&mut img, "8", 0, 20, 3, Rgb::WHITE);
        assert_eq!(r3.w, r1.w * 3);
        assert_eq!(r3.h, r1.h * 3);
    }

    #[test]
    fn text_width_matches_draw() {
        let mut img = RgbImage::new(300, 20);
        let r = draw_text(&mut img, "HELLO", 0, 0, 2, Rgb::WHITE);
        assert_eq!(r.w, text_width("HELLO", 2));
        assert_eq!(text_width("", 2), 0);
    }

    #[test]
    fn drawing_clips_at_border() {
        let mut img = RgbImage::new(8, 8);
        // Must not panic even though the text exceeds the canvas.
        draw_text(&mut img, "WWWW", 0, 0, 2, Rgb::WHITE);
    }
}
