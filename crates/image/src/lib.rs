//! Pixel-domain image substrate for the PuPPIeS reproduction.
//!
//! This crate provides everything the rest of the workspace needs to work
//! with raster images without any external imaging dependency:
//!
//! - [`RgbImage`] / [`GrayImage`] pixel buffers and the [`Plane`] float plane
//! - color conversion between RGB and the JPEG full-range YCbCr space
//!   ([`color`])
//! - geometry primitives ([`Rect`], [`Point`]) with the rectangle
//!   decomposition used by ROI handling
//! - drawing primitives and a built-in 5×7 bitmap font ([`draw`], [`font`])
//! - resampling, rotation and flipping ([`resample`])
//! - convolution and common kernels ([`convolve`])
//! - integral images ([`integral`])
//! - quality metrics such as PSNR ([`metrics`])
//! - PPM/PGM file IO ([`io`])
//!
//! # Example
//!
//! ```
//! use puppies_image::{GrayImage, Rect};
//!
//! let mut img = GrayImage::new(64, 64);
//! img.fill_rect(Rect::new(8, 8, 16, 16), 200);
//! assert_eq!(img.get(10, 10), 200);
//! assert_eq!(img.get(0, 0), 0);
//! ```

pub mod buffer;
pub mod color;
pub mod convolve;
pub mod draw;
pub mod font;
pub mod geometry;
pub mod integral;
pub mod io;
pub mod metrics;
pub mod resample;
pub mod simd;

pub use buffer::{GrayImage, Plane, RgbImage};
pub use color::{Rgb, YCbCr};
pub use geometry::{Point, Rect};

use std::fmt;

/// Errors produced by image operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImageError {
    /// The requested dimensions are zero or would overflow.
    InvalidDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
    },
    /// A rectangle falls (partially) outside the image bounds.
    OutOfBounds {
        /// The offending rectangle.
        rect: Rect,
        /// Image width.
        width: u32,
        /// Image height.
        height: u32,
    },
    /// A file could not be parsed as PPM/PGM.
    Format(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            ImageError::OutOfBounds {
                rect,
                width,
                height,
            } => write!(f, "rectangle {rect:?} outside {width}x{height} image"),
            ImageError::Format(msg) => write!(f, "image format error: {msg}"),
            ImageError::Io(e) => write!(f, "image io error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// Convenient result alias for image operations.
pub type Result<T> = std::result::Result<T, ImageError>;
