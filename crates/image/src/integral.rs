//! Integral images (summed-area tables).
//!
//! The Haar-cascade-style face detector in `puppies-vision` evaluates
//! thousands of rectangle sums per window; integral images make each sum
//! O(1), exactly as in the Viola–Jones detector the paper's ROI module and
//! face-detection attack (§VI-B.3) rely on.

use crate::buffer::GrayImage;
use crate::geometry::Rect;

/// A summed-area table over an 8-bit image.
///
/// `sum(r)` returns the sum of pixel values inside rectangle `r` in O(1).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: u32,
    height: u32,
    // (width+1) x (height+1), first row/col zero.
    table: Vec<u64>,
    // Squared-value table for variance queries.
    sq_table: Vec<u64>,
}

impl IntegralImage {
    /// Builds the integral image of `src`.
    pub fn build(src: &GrayImage) -> Self {
        let w = src.width() as usize;
        let h = src.height() as usize;
        let stride = w + 1;
        let mut table = vec![0u64; stride * (h + 1)];
        let mut sq_table = vec![0u64; stride * (h + 1)];
        for y in 0..h {
            let mut row = 0u64;
            let mut sq_row = 0u64;
            for x in 0..w {
                let v = src.get(x as u32, y as u32) as u64;
                row += v;
                sq_row += v * v;
                table[(y + 1) * stride + x + 1] = table[y * stride + x + 1] + row;
                sq_table[(y + 1) * stride + x + 1] = sq_table[y * stride + x + 1] + sq_row;
            }
        }
        IntegralImage {
            width: src.width(),
            height: src.height(),
            table,
            sq_table,
        }
    }

    /// Source image width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn at(&self, x: u32, y: u32) -> u64 {
        self.table[(y as usize) * (self.width as usize + 1) + x as usize]
    }

    #[inline]
    fn sq_at(&self, x: u32, y: u32) -> u64 {
        self.sq_table[(y as usize) * (self.width as usize + 1) + x as usize]
    }

    /// Sum of pixels inside `r`, which is clipped to the image.
    pub fn sum(&self, r: Rect) -> u64 {
        let r = r.intersect(Rect::new(0, 0, self.width, self.height));
        if r.is_empty() {
            return 0;
        }
        self.at(r.right(), r.bottom()) + self.at(r.x, r.y)
            - self.at(r.right(), r.y)
            - self.at(r.x, r.bottom())
    }

    /// Mean pixel value inside `r` (0 for an empty clip).
    pub fn mean(&self, r: Rect) -> f64 {
        let r = r.intersect(Rect::new(0, 0, self.width, self.height));
        if r.is_empty() {
            return 0.0;
        }
        self.sum(r) as f64 / r.area() as f64
    }

    /// Variance of pixel values inside `r` (0 for an empty clip).
    pub fn variance(&self, r: Rect) -> f64 {
        let r = r.intersect(Rect::new(0, 0, self.width, self.height));
        if r.is_empty() {
            return 0.0;
        }
        let n = r.area() as f64;
        let s = self.sum(r) as f64;
        let sq = (self.sq_at(r.right(), r.bottom()) + self.sq_at(r.x, r.y)
            - self.sq_at(r.right(), r.y)
            - self.sq_at(r.x, r.bottom())) as f64;
        (sq / n - (s / n).powi(2)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| if (x + y) % 2 == 0 { 10 } else { 30 })
    }

    #[test]
    fn full_sum_matches_naive() {
        let img = checker(13, 9);
        let ii = IntegralImage::build(&img);
        let naive: u64 = img.pixels().iter().map(|&v| v as u64).sum();
        assert_eq!(ii.sum(img.bounds()), naive);
    }

    #[test]
    fn arbitrary_rect_matches_naive() {
        let img = GrayImage::from_fn(17, 11, |x, y| ((x * 31 + y * 7) % 251) as u8);
        let ii = IntegralImage::build(&img);
        for r in [
            Rect::new(0, 0, 1, 1),
            Rect::new(3, 2, 5, 4),
            Rect::new(10, 5, 7, 6),
            Rect::new(16, 10, 1, 1),
        ] {
            let mut naive = 0u64;
            for y in r.y..r.bottom().min(11) {
                for x in r.x..r.right().min(17) {
                    naive += img.get(x, y) as u64;
                }
            }
            assert_eq!(ii.sum(r), naive, "{r:?}");
        }
    }

    #[test]
    fn out_of_bounds_rect_is_clipped() {
        let img = GrayImage::filled(5, 5, 1);
        let ii = IntegralImage::build(&img);
        assert_eq!(ii.sum(Rect::new(3, 3, 10, 10)), 4);
        assert_eq!(ii.sum(Rect::new(100, 100, 5, 5)), 0);
    }

    #[test]
    fn mean_and_variance_of_constant() {
        let img = GrayImage::filled(8, 8, 77);
        let ii = IntegralImage::build(&img);
        let r = Rect::new(1, 1, 5, 5);
        assert!((ii.mean(r) - 77.0).abs() < 1e-9);
        assert!(ii.variance(r) < 1e-9);
    }

    #[test]
    fn variance_of_checker() {
        let img = checker(8, 8);
        let ii = IntegralImage::build(&img);
        // Values 10/30 half-half -> mean 20, variance 100.
        assert!((ii.mean(img.bounds()) - 20.0).abs() < 1e-9);
        assert!((ii.variance(img.bounds()) - 100.0).abs() < 1e-9);
    }
}
