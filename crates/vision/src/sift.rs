//! A scale-invariant feature transform in the spirit of Lowe's SIFT:
//! Gaussian scale space, DoG extrema, orientation assignment and 128-d
//! gradient-histogram descriptors with ratio-test matching.
//!
//! This powers the SIFT-feature attack of §VI-B.1 (Fig. 20): an adversary
//! extracts features from a perturbed image and tries to match them to
//! features of the original. The implementation favours clarity over the
//! last bit of repeatability — the attack metric only needs honest feature
//! extraction on both sides.

use puppies_image::convolve::gaussian_blur;
use puppies_image::resample::{scale_plane, Filter};
use puppies_image::{GrayImage, Plane};

/// A detected keypoint with its descriptor.
#[derive(Debug, Clone)]
pub struct SiftKeypoint {
    /// X coordinate in original-image pixels.
    pub x: f32,
    /// Y coordinate in original-image pixels.
    pub y: f32,
    /// Scale (sigma) in original-image pixels.
    pub scale: f32,
    /// Dominant gradient orientation in radians.
    pub orientation: f32,
    /// 128-dimensional normalized descriptor.
    pub descriptor: Vec<f32>,
}

/// Detector/descriptor parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftParams {
    /// Scales per octave (DoG layers searched = this value).
    pub scales_per_octave: u32,
    /// Base sigma of the scale space.
    pub base_sigma: f32,
    /// DoG contrast threshold (on values in 0..255 scale).
    pub contrast_threshold: f32,
    /// Hessian edge-response ratio threshold (Lowe uses 10).
    pub edge_threshold: f32,
    /// Maximum keypoints returned (strongest first); guards attack runtime.
    pub max_keypoints: usize,
}

impl Default for SiftParams {
    fn default() -> Self {
        SiftParams {
            scales_per_octave: 3,
            base_sigma: 1.6,
            contrast_threshold: 4.0,
            edge_threshold: 10.0,
            max_keypoints: 512,
        }
    }
}

struct Octave {
    /// Gaussian-blurred images, scales_per_octave + 3 of them.
    gaussians: Vec<Plane>,
    /// Difference-of-Gaussian layers.
    dogs: Vec<Plane>,
    /// Scale factor from octave coords to original coords.
    factor: f32,
}

/// Extracts SIFT-like keypoints and descriptors from a grayscale image.
pub fn extract_sift(img: &GrayImage, params: &SiftParams) -> Vec<SiftKeypoint> {
    let mut plane = img.to_plane();
    let mut factor = 1.0f32;
    let mut octaves = Vec::new();
    let s = params.scales_per_octave.max(1);
    let k = 2f32.powf(1.0 / s as f32);
    while plane.width() >= 16 && plane.height() >= 16 && octaves.len() < 5 {
        let mut gaussians = Vec::with_capacity((s + 3) as usize);
        for i in 0..(s + 3) {
            let sigma = params.base_sigma * k.powi(i as i32);
            gaussians.push(gaussian_blur(&plane, sigma));
        }
        let dogs: Vec<Plane> = gaussians
            .windows(2)
            .map(|w| {
                Plane::from_fn(plane.width(), plane.height(), |x, y| {
                    w[1].get(x, y) - w[0].get(x, y)
                })
            })
            .collect();
        octaves.push(Octave {
            gaussians,
            dogs,
            factor,
        });
        let (nw, nh) = (plane.width() / 2, plane.height() / 2);
        if nw < 16 || nh < 16 {
            break;
        }
        plane = scale_plane(&plane, nw, nh, Filter::Bilinear);
        factor *= 2.0;
    }

    let mut keypoints: Vec<(f32, SiftKeypoint)> = Vec::new();
    for oct in &octaves {
        for li in 1..oct.dogs.len() - 1 {
            let (below, cur, above) = (&oct.dogs[li - 1], &oct.dogs[li], &oct.dogs[li + 1]);
            let (w, h) = (cur.width(), cur.height());
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let v = cur.get(x, y);
                    if v.abs() < params.contrast_threshold {
                        continue;
                    }
                    if !is_extremum(below, cur, above, x, y, v) {
                        continue;
                    }
                    if edge_like(cur, x, y, params.edge_threshold) {
                        continue;
                    }
                    let sigma = params.base_sigma * k.powi(li as i32);
                    let gauss = &oct.gaussians[li];
                    let ori = dominant_orientation(gauss, x, y, sigma);
                    let descriptor = describe(gauss, x, y, sigma, ori);
                    keypoints.push((
                        v.abs(),
                        SiftKeypoint {
                            x: (x as f32 + 0.5) * oct.factor,
                            y: (y as f32 + 0.5) * oct.factor,
                            scale: sigma * oct.factor,
                            orientation: ori,
                            descriptor,
                        },
                    ));
                }
            }
        }
    }
    keypoints.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    keypoints.truncate(params.max_keypoints);
    keypoints.into_iter().map(|(_, kp)| kp).collect()
}

fn is_extremum(below: &Plane, cur: &Plane, above: &Plane, x: u32, y: u32, v: f32) -> bool {
    let mut is_max = true;
    let mut is_min = true;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            for (pi, p) in [below, cur, above].iter().enumerate() {
                if pi == 1 && dx == 0 && dy == 0 {
                    continue;
                }
                let n = p.get_clamped(x as i64 + dx, y as i64 + dy);
                if n >= v {
                    is_max = false;
                }
                if n <= v {
                    is_min = false;
                }
                if !is_max && !is_min {
                    return false;
                }
            }
        }
    }
    is_max || is_min
}

fn edge_like(dog: &Plane, x: u32, y: u32, r: f32) -> bool {
    let (x, y) = (x as i64, y as i64);
    let dxx = dog.get_clamped(x + 1, y) + dog.get_clamped(x - 1, y) - 2.0 * dog.get_clamped(x, y);
    let dyy = dog.get_clamped(x, y + 1) + dog.get_clamped(x, y - 1) - 2.0 * dog.get_clamped(x, y);
    let dxy = 0.25
        * (dog.get_clamped(x + 1, y + 1)
            - dog.get_clamped(x + 1, y - 1)
            - dog.get_clamped(x - 1, y + 1)
            + dog.get_clamped(x - 1, y - 1));
    let tr = dxx + dyy;
    let det = dxx * dyy - dxy * dxy;
    if det <= 0.0 {
        return true;
    }
    tr * tr / det >= (r + 1.0) * (r + 1.0) / r
}

fn gradient(p: &Plane, x: i64, y: i64) -> (f32, f32) {
    let gx = p.get_clamped(x + 1, y) - p.get_clamped(x - 1, y);
    let gy = p.get_clamped(x, y + 1) - p.get_clamped(x, y - 1);
    ((gx * gx + gy * gy).sqrt(), gy.atan2(gx))
}

fn dominant_orientation(p: &Plane, x: u32, y: u32, sigma: f32) -> f32 {
    let radius = (3.0 * sigma).ceil() as i64;
    let mut hist = [0f32; 36];
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let (mag, ori) = gradient(p, x as i64 + dx, y as i64 + dy);
            let weight = (-((dx * dx + dy * dy) as f32) / (2.0 * sigma * sigma * 2.25)).exp();
            let bin = (((ori + std::f32::consts::PI) / (2.0 * std::f32::consts::PI) * 36.0)
                as usize)
                .min(35);
            hist[bin] += mag * weight;
        }
    }
    let best = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best as f32 + 0.5) / 36.0 * 2.0 * std::f32::consts::PI - std::f32::consts::PI
}

fn describe(p: &Plane, x: u32, y: u32, sigma: f32, orientation: f32) -> Vec<f32> {
    // 4×4 spatial cells of (cell) pixels each, 8 orientation bins,
    // gradients rotated into the keypoint frame.
    let mut desc = vec![0f32; 128];
    let cell = (sigma * 1.5).max(1.0);
    let half = (cell * 2.0).ceil() as i64 * 2;
    let (sin, cos) = orientation.sin_cos();
    for dy in -half..half {
        for dx in -half..half {
            // Rotate the offset into the keypoint frame.
            let rx = cos * dx as f32 + sin * dy as f32;
            let ry = -sin * dx as f32 + cos * dy as f32;
            let cx = rx / cell + 2.0;
            let cy = ry / cell + 2.0;
            if !(0.0..4.0).contains(&cx) || !(0.0..4.0).contains(&cy) {
                continue;
            }
            let (mag, ori) = gradient(p, x as i64 + dx, y as i64 + dy);
            let rel = ori - orientation;
            let bin = ((rel.rem_euclid(2.0 * std::f32::consts::PI)) / (2.0 * std::f32::consts::PI)
                * 8.0) as usize;
            let idx = (cy as usize).min(3) * 32 + (cx as usize).min(3) * 8 + bin.min(7);
            desc[idx] += mag;
        }
    }
    normalize_descriptor(&mut desc);
    desc
}

fn normalize_descriptor(desc: &mut [f32]) {
    let norm = |d: &[f32]| d.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    let n = norm(desc);
    for v in desc.iter_mut() {
        *v = (*v / n).min(0.2); // clamp strong gradients (illumination robustness)
    }
    let n = norm(desc);
    for v in desc.iter_mut() {
        *v /= n;
    }
}

/// Matches descriptors with Lowe's ratio test; returns index pairs
/// `(i_a, i_b)`.
pub fn match_descriptors(
    a: &[SiftKeypoint],
    b: &[SiftKeypoint],
    ratio: f32,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, ka) in a.iter().enumerate() {
        let mut best = f32::INFINITY;
        let mut second = f32::INFINITY;
        let mut best_j = usize::MAX;
        for (j, kb) in b.iter().enumerate() {
            let d: f32 = ka
                .descriptor
                .iter()
                .zip(kb.descriptor.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            if d < best {
                second = best;
                best = d;
                best_j = j;
            } else if d < second {
                second = d;
            }
        }
        if best_j != usize::MAX && best < ratio * ratio * second {
            out.push((i, best_j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::draw;
    use puppies_image::{Rect, Rgb, RgbImage};

    fn textured_scene() -> GrayImage {
        let mut img = RgbImage::filled(128, 128, Rgb::new(90, 90, 90));
        draw::fill_rect(&mut img, Rect::new(20, 20, 30, 24), Rgb::new(200, 200, 200));
        draw::fill_ellipse(&mut img, 90, 40, 18, 12, Rgb::new(30, 30, 30));
        draw::fill_rect(&mut img, Rect::new(60, 80, 40, 30), Rgb::new(160, 40, 40));
        draw::line(
            &mut img,
            puppies_image::Point::new(5, 120),
            puppies_image::Point::new(120, 70),
            Rgb::new(240, 240, 240),
        );
        draw::fill_ellipse(&mut img, 30, 95, 9, 9, Rgb::new(250, 220, 40));
        draw::fill_rect(&mut img, Rect::new(100, 100, 18, 18), Rgb::new(20, 80, 200));
        draw::fill_ellipse(&mut img, 64, 20, 6, 10, Rgb::new(10, 150, 150));
        img.to_gray()
    }

    #[test]
    fn finds_features_on_textured_scene() {
        let kps = extract_sift(&textured_scene(), &SiftParams::default());
        assert!(kps.len() >= 8, "only {} keypoints", kps.len());
        for kp in &kps {
            assert_eq!(kp.descriptor.len(), 128);
            let norm: f32 = kp.descriptor.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-3, "descriptor norm {norm}");
        }
    }

    #[test]
    fn flat_image_has_no_features() {
        let img = GrayImage::filled(64, 64, 128);
        let kps = extract_sift(&img, &SiftParams::default());
        assert!(kps.is_empty(), "{} keypoints on flat image", kps.len());
    }

    #[test]
    fn self_match_is_strong() {
        let kps = extract_sift(&textured_scene(), &SiftParams::default());
        let matches = match_descriptors(&kps, &kps, 0.8);
        // Matching an image against itself: nearly every keypoint matches
        // itself (identical descriptors have distance 0).
        assert!(
            matches.len() * 10 >= kps.len() * 5,
            "{} matches for {} keypoints",
            matches.len(),
            kps.len()
        );
        let identity = matches.iter().filter(|(i, j)| i == j).count();
        assert!(identity * 10 >= matches.len() * 8);
    }

    #[test]
    fn noise_does_not_match_scene() {
        let kps_scene = extract_sift(&textured_scene(), &SiftParams::default());
        let noise = GrayImage::from_fn(128, 128, |x, y| {
            ((x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503)) % 256) as u8
        });
        let kps_noise = extract_sift(&noise, &SiftParams::default());
        let matches = match_descriptors(&kps_scene, &kps_noise, 0.7);
        assert!(
            matches.len() <= kps_scene.len() / 8,
            "{} spurious matches",
            matches.len()
        );
    }

    #[test]
    fn keypoints_inside_image_bounds() {
        let kps = extract_sift(&textured_scene(), &SiftParams::default());
        for kp in &kps {
            assert!(kp.x >= 0.0 && kp.x <= 128.0);
            assert!(kp.y >= 0.0 && kp.y <= 128.0);
            assert!(kp.scale > 0.0);
        }
    }

    #[test]
    fn max_keypoints_is_respected() {
        let params = SiftParams {
            max_keypoints: 5,
            ..SiftParams::default()
        };
        let kps = extract_sift(&textured_scene(), &params);
        assert!(kps.len() <= 5);
    }

    #[test]
    fn shifted_copy_still_matches() {
        // Repeatability sanity: the same content shifted by 4 pixels should
        // keep a good share of matches.
        let base = textured_scene();
        let shifted = GrayImage::from_fn(128, 128, |x, y| {
            base.get_clamped(x as i64 - 4, y as i64 - 4)
        });
        let ka = extract_sift(&base, &SiftParams::default());
        let kb = extract_sift(&shifted, &SiftParams::default());
        let matches = match_descriptors(&ka, &kb, 0.8);
        assert!(
            matches.len() >= ka.len() / 4,
            "{} matches for {} keypoints",
            matches.len(),
            ka.len()
        );
    }
}
