//! A generic "objectness" proposer in the spirit of Alexe et al.'s *What
//! is an object?* (CVPR 2010), the paper's third ROI source (§IV-A).
//!
//! Windows are scored by two cheap cues: (a) *center–surround contrast* —
//! objects differ from their immediate surroundings, and (b) *edge-density
//! interiority* — object windows contain their own edges rather than
//! straddling them. Scores are pooled over a scale/position grid and the
//! top-N non-overlapping windows are proposed.

use crate::edges::{canny, CannyParams};
use puppies_image::integral::IntegralImage;
use puppies_image::{GrayImage, Rect};

/// Parameters for [`propose_objects`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectnessParams {
    /// Number of proposals returned.
    pub top_n: usize,
    /// Smallest window side as a fraction of the short image side.
    pub min_frac: f32,
    /// Largest window side as a fraction of the short image side.
    pub max_frac: f32,
    /// Minimum center–surround contrast (gray levels).
    pub min_contrast: f64,
    /// NMS IoU threshold between proposals.
    pub nms_iou: f64,
}

impl Default for ObjectnessParams {
    fn default() -> Self {
        ObjectnessParams {
            top_n: 3,
            min_frac: 0.15,
            max_frac: 0.6,
            min_contrast: 10.0,
            nms_iou: 0.4,
        }
    }
}

/// A scored object proposal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectProposal {
    /// Bounding box.
    pub rect: Rect,
    /// Objectness score (larger = more object-like).
    pub score: f64,
}

/// Proposes up to `top_n` object windows.
pub fn propose_objects(img: &GrayImage, params: &ObjectnessParams) -> Vec<ObjectProposal> {
    let ii = IntegralImage::build(img);
    let edges = canny(img, &CannyParams::default());
    let edge_ii = IntegralImage::build(&edges);
    let short = img.width().min(img.height());
    let min_size = ((short as f32 * params.min_frac) as u32).max(16);
    let max_size = ((short as f32 * params.max_frac) as u32).max(min_size);

    let mut proposals = Vec::new();
    let mut size = min_size;
    while size <= max_size {
        let stride = (size / 4).max(4);
        let mut y = 0;
        while y + size <= img.height() {
            let mut x = 0;
            while x + size <= img.width() {
                let w = Rect::new(x, y, size, size);
                if let Some(score) = score_window(&ii, &edge_ii, w, img.bounds(), params) {
                    proposals.push(ObjectProposal { rect: w, score });
                }
                x += stride;
            }
            y += stride;
        }
        size = ((size as f32 * 1.4) as u32).max(size + 1);
    }
    proposals.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let mut kept: Vec<ObjectProposal> = Vec::new();
    for p in proposals {
        if kept.len() >= params.top_n {
            break;
        }
        if kept.iter().all(|k| k.rect.iou(p.rect) < params.nms_iou) {
            kept.push(p);
        }
    }
    kept
}

fn score_window(
    ii: &IntegralImage,
    edge_ii: &IntegralImage,
    w: Rect,
    bounds: Rect,
    params: &ObjectnessParams,
) -> Option<f64> {
    // Center–surround contrast: window mean vs a ring around it.
    let ring = w.inflate_clamped(w.w / 2, bounds);
    let win_sum = ii.sum(w) as f64;
    let ring_sum = ii.sum(ring) as f64 - win_sum;
    let ring_area = (ring.area() - w.area()) as f64;
    if ring_area <= 0.0 {
        return None;
    }
    let contrast = (win_sum / w.area() as f64 - ring_sum / ring_area).abs();
    if contrast < params.min_contrast {
        return None;
    }
    // Edge interiority: edges inside vs edges crossing the boundary ring.
    let inner = Rect::new(w.x + w.w / 8, w.y + w.h / 8, w.w * 3 / 4, w.h * 3 / 4);
    let edges_inside = edge_ii.sum(inner) as f64 / 255.0;
    let edges_window = edge_ii.sum(w) as f64 / 255.0;
    let boundary_edges = edges_window - edges_inside;
    let interiority = (edges_inside + 1.0) / (boundary_edges + 1.0);
    // Variance: objects have texture.
    let var = ii.variance(w).sqrt();
    Some(contrast + 5.0 * interiority.min(10.0) + 0.2 * var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::draw;
    use puppies_image::{Rgb, RgbImage};

    #[test]
    fn proposes_salient_object() {
        let mut img = RgbImage::filled(160, 120, Rgb::new(200, 200, 200));
        let obj = Rect::new(50, 35, 44, 44);
        draw::fill_rect(&mut img, obj, Rgb::new(40, 40, 120));
        draw::fill_ellipse(&mut img, 72, 57, 12, 12, Rgb::new(220, 220, 60));
        let props = propose_objects(&img.to_gray(), &ObjectnessParams::default());
        assert!(!props.is_empty());
        let best_iou = props.iter().map(|p| p.rect.iou(obj)).fold(0.0f64, f64::max);
        assert!(best_iou > 0.25, "best IoU {best_iou}");
    }

    #[test]
    fn flat_image_yields_nothing() {
        let img = GrayImage::filled(128, 96, 128);
        let props = propose_objects(&img, &ObjectnessParams::default());
        assert!(props.is_empty(), "{props:?}");
    }

    #[test]
    fn top_n_respected_and_disjoint() {
        let mut img = RgbImage::filled(200, 150, Rgb::new(190, 190, 190));
        for (i, &(x, y)) in [(20u32, 20u32), (120, 30), (60, 90)].iter().enumerate() {
            let c = [
                Rgb::new(30, 30, 30),
                Rgb::new(200, 40, 40),
                Rgb::new(40, 160, 40),
            ][i];
            draw::fill_rect(&mut img, Rect::new(x, y, 36, 36), c);
        }
        let params = ObjectnessParams {
            top_n: 3,
            ..ObjectnessParams::default()
        };
        let props = propose_objects(&img.to_gray(), &params);
        assert!(props.len() <= 3);
        for (i, a) in props.iter().enumerate() {
            for b in &props[i + 1..] {
                assert!(a.rect.iou(b.rect) < 0.4);
            }
        }
    }

    #[test]
    fn scores_sorted_descending() {
        let mut img = RgbImage::filled(160, 120, Rgb::new(180, 180, 180));
        draw::fill_rect(&mut img, Rect::new(30, 30, 40, 40), Rgb::new(20, 20, 20));
        draw::fill_rect(
            &mut img,
            Rect::new(100, 60, 30, 30),
            Rgb::new(150, 150, 150),
        );
        let props = propose_objects(&img.to_gray(), &ObjectnessParams::default());
        for w in props.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
