//! Canny edge detection (§VI-B.2's edge-detection attack) and the
//! edge-match metric of Fig. 21.

use puppies_image::convolve::{gaussian_blur, sobel_gradients};
use puppies_image::{GrayImage, Plane};

/// Parameters for [`canny`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CannyParams {
    /// Gaussian pre-smoothing sigma.
    pub sigma: f32,
    /// Low hysteresis threshold on gradient magnitude.
    pub low: f32,
    /// High hysteresis threshold on gradient magnitude.
    pub high: f32,
}

impl Default for CannyParams {
    fn default() -> Self {
        CannyParams {
            sigma: 1.4,
            low: 40.0,
            high: 100.0,
        }
    }
}

/// Canny edge detector: Gaussian blur → Sobel gradients → non-maximum
/// suppression → double-threshold hysteresis. Returns a binary image
/// (255 = edge).
///
/// # Panics
/// Panics if thresholds are not `0 < low <= high` or sigma is not positive.
pub fn canny(img: &GrayImage, params: &CannyParams) -> GrayImage {
    assert!(params.sigma > 0.0, "sigma must be positive");
    assert!(
        params.low > 0.0 && params.low <= params.high,
        "need 0 < low <= high"
    );
    let plane = img.to_plane();
    let smooth = gaussian_blur(&plane, params.sigma);
    let (mag, ori) = sobel_gradients(&smooth);
    let nms = non_max_suppress(&mag, &ori);
    hysteresis(&nms, params.low, params.high)
}

fn non_max_suppress(mag: &Plane, ori: &Plane) -> Plane {
    let (w, h) = (mag.width(), mag.height());
    Plane::from_fn(w, h, |x, y| {
        let m = mag.get(x, y);
        if m == 0.0 {
            return 0.0;
        }
        // Quantize orientation into 4 directions.
        let angle = ori.get(x, y).to_degrees();
        let a = ((angle + 180.0) % 180.0 + 180.0) % 180.0;
        let (dx, dy): (i64, i64) = if !(22.5..157.5).contains(&a) {
            (1, 0) // horizontal gradient -> compare left/right
        } else if a < 67.5 {
            (1, 1)
        } else if a < 112.5 {
            (0, 1)
        } else {
            (-1, 1)
        };
        let m1 = mag.get_clamped(x as i64 + dx, y as i64 + dy);
        let m2 = mag.get_clamped(x as i64 - dx, y as i64 - dy);
        if m >= m1 && m >= m2 {
            m
        } else {
            0.0
        }
    })
}

fn hysteresis(nms: &Plane, low: f32, high: f32) -> GrayImage {
    let (w, h) = (nms.width(), nms.height());
    let mut out = GrayImage::new(w, h);
    let mut stack = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if nms.get(x, y) >= high && out.get(x, y) == 0 {
                out.set(x, y, 255);
                stack.push((x, y));
                // Grow weak-edge chains connected to this strong seed.
                while let Some((cx, cy)) = stack.pop() {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let nx = cx as i64 + dx;
                            let ny = cy as i64 + dy;
                            if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                                continue;
                            }
                            let (nx, ny) = (nx as u32, ny as u32);
                            if out.get(nx, ny) == 0 && nms.get(nx, ny) >= low {
                                out.set(nx, ny, 255);
                                stack.push((nx, ny));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Fraction of edge pixels of `reference` that are also edges (within a
/// 1-pixel tolerance) in `candidate` — the "ratio of detected pixels"
/// measure behind Fig. 21. Returns 0 when the reference has no edges.
///
/// # Panics
/// Panics if the images differ in size.
pub fn edge_match_ratio(reference: &GrayImage, candidate: &GrayImage) -> f64 {
    assert_eq!(
        (reference.width(), reference.height()),
        (candidate.width(), candidate.height()),
        "image sizes differ"
    );
    let mut matched = 0u64;
    let mut total = 0u64;
    for y in 0..reference.height() {
        for x in 0..reference.width() {
            if reference.get(x, y) == 0 {
                continue;
            }
            total += 1;
            'search: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if candidate.get_clamped(x as i64 + dx, y as i64 + dy) > 0 {
                        matched += 1;
                        break 'search;
                    }
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        matched as f64 / total as f64
    }
}

/// Fraction of all pixels marked as edges.
pub fn edge_density(edges: &GrayImage) -> f64 {
    let n = edges.pixels().iter().filter(|&&v| v > 0).count();
    n as f64 / edges.pixels().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::Rect;

    fn step_image() -> GrayImage {
        GrayImage::from_fn(64, 64, |x, _| if x < 32 { 30 } else { 220 })
    }

    #[test]
    fn detects_step_edge() {
        let edges = canny(&step_image(), &CannyParams::default());
        // An edge column near x = 32 on most rows.
        let mut rows_with_edge = 0;
        for y in 4..60 {
            if (28..36).any(|x| edges.get(x, y) > 0) {
                rows_with_edge += 1;
            }
        }
        assert!(rows_with_edge > 50, "only {rows_with_edge} rows have edges");
        // Flat areas are edge-free.
        for y in 0..64 {
            for x in 0..20 {
                assert_eq!(edges.get(x, y), 0, "false edge at ({x},{y})");
            }
        }
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = GrayImage::filled(32, 32, 128);
        let edges = canny(&img, &CannyParams::default());
        assert_eq!(edge_density(&edges), 0.0);
    }

    #[test]
    fn rectangle_outline_detected() {
        let mut img = GrayImage::filled(64, 64, 40);
        img.fill_rect(Rect::new(16, 16, 32, 32), 200);
        let edges = canny(&img, &CannyParams::default());
        assert!(edge_density(&edges) > 0.01);
        // Edges concentrate near the rectangle border.
        let mut near = 0;
        let mut far = 0;
        for y in 0..64u32 {
            for x in 0..64u32 {
                if edges.get(x, y) > 0 {
                    let on_border = (14..=18).contains(&x)
                        || (46..=50).contains(&x)
                        || (14..=18).contains(&y)
                        || (46..=50).contains(&y);
                    if on_border {
                        near += 1;
                    } else {
                        far += 1;
                    }
                }
            }
        }
        assert!(near > far * 3, "near {near} far {far}");
    }

    #[test]
    fn edge_match_ratio_self_is_one() {
        let edges = canny(&step_image(), &CannyParams::default());
        assert!((edge_match_ratio(&edges, &edges) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_match_ratio_disjoint_is_zero() {
        let a = GrayImage::from_fn(16, 16, |x, y| if x == 2 && y < 8 { 255 } else { 0 });
        let b = GrayImage::from_fn(16, 16, |x, y| if x == 12 && y < 8 { 255 } else { 0 });
        assert_eq!(edge_match_ratio(&a, &b), 0.0);
        // Empty reference yields zero, not NaN.
        let empty = GrayImage::new(16, 16);
        assert_eq!(edge_match_ratio(&empty, &a), 0.0);
    }

    #[test]
    fn hysteresis_links_weak_edges() {
        // A gradient ridge whose middle section is weak but connected to
        // strong ends should be fully traced.
        let mut img = GrayImage::filled(64, 32, 0);
        for x in 0..64 {
            let v = if (20..44).contains(&x) { 40 } else { 220 };
            for y in 14..18 {
                img.set(x, y, v);
            }
        }
        let strong_only = canny(
            &img,
            &CannyParams {
                sigma: 1.0,
                low: 450.0,
                high: 450.0,
            },
        );
        let linked = canny(
            &img,
            &CannyParams {
                sigma: 1.0,
                low: 80.0,
                high: 450.0,
            },
        );
        assert!(
            edge_density(&linked) > edge_density(&strong_only),
            "hysteresis should add weak connected pixels"
        );
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn bad_thresholds_rejected() {
        let _ = canny(
            &step_image(),
            &CannyParams {
                sigma: 1.0,
                low: 10.0,
                high: 5.0,
            },
        );
    }
}
