//! The ROI detection-and-recommendation pipeline of §IV-A: run the face,
//! text (OCR stand-in) and objectness detectors, merge their overlapping
//! outputs, and split the union into disjoint rectangles an owner can
//! encrypt with independent private matrices (Fig. 12).

use crate::face::{detect_faces, FaceDetectorParams};
use crate::objectness::{propose_objects, ObjectnessParams};
use crate::text::{detect_text_blocks, TextDetectorParams};
use puppies_image::geometry::decompose_disjoint;
use puppies_image::{Rect, RgbImage};

/// Which detector produced a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Haar-relation face detector.
    Face,
    /// Stroke-density text detector (OCR stand-in).
    Text,
    /// Generic objectness proposer.
    Object,
}

/// One raw detection before merging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Source detector.
    pub kind: DetectorKind,
    /// Bounding box.
    pub rect: Rect,
}

/// The recommendation handed to the image owner: the raw detections plus
/// the disjoint split of their union.
#[derive(Debug, Clone, PartialEq)]
pub struct RoiRecommendation {
    /// Every raw detection.
    pub detections: Vec<Detection>,
    /// Disjoint rectangles covering the union of all detections — what
    /// §IV-A recommends as independently-encryptable regions.
    pub regions: Vec<Rect>,
}

/// Tuning for the combined recommender.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecommendParams {
    /// Face detector parameters.
    pub face: FaceDetectorParams,
    /// Text detector parameters.
    pub text: TextDetectorParams,
    /// Objectness parameters.
    pub object: ObjectnessParams,
    /// Skip the (slow) objectness stage; face + text only.
    pub skip_objectness: bool,
}

/// Runs all detectors and builds the recommendation.
pub fn recommend_rois(img: &RgbImage, params: &RecommendParams) -> RoiRecommendation {
    let gray = img.to_gray();
    let mut detections = Vec::new();
    for d in detect_faces(&gray, &params.face) {
        detections.push(Detection {
            kind: DetectorKind::Face,
            rect: d.rect,
        });
    }
    for rect in detect_text_blocks(&gray, &params.text) {
        detections.push(Detection {
            kind: DetectorKind::Text,
            rect,
        });
    }
    if !params.skip_objectness {
        for p in propose_objects(&gray, &params.object) {
            detections.push(Detection {
                kind: DetectorKind::Object,
                rect: p.rect,
            });
        }
    }
    let rects: Vec<Rect> = detections.iter().map(|d| d.rect).collect();
    let regions = decompose_disjoint(&rects);
    RoiRecommendation {
        detections,
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::{render_face, FaceGeometry};
    use puppies_image::font::draw_text;
    use puppies_image::{draw, Rgb};

    fn busy_scene() -> RgbImage {
        let mut img = RgbImage::filled(240, 160, Rgb::new(120, 150, 190));
        render_face(
            &mut img,
            Rect::new(20, 30, 48, 60),
            Rgb::new(228, 190, 152),
            &FaceGeometry::default(),
        );
        draw_text(&mut img, "123-45-6789", 110, 30, 2, Rgb::new(10, 10, 10));
        draw::fill_rect(&mut img, Rect::new(140, 90, 50, 40), Rgb::new(180, 40, 40));
        img
    }

    #[test]
    fn finds_face_and_text() {
        let rec = recommend_rois(
            &busy_scene(),
            &RecommendParams {
                skip_objectness: true,
                ..RecommendParams::default()
            },
        );
        assert!(
            rec.detections.iter().any(|d| d.kind == DetectorKind::Face),
            "no face found"
        );
        assert!(
            rec.detections.iter().any(|d| d.kind == DetectorKind::Text),
            "no text found"
        );
        assert!(!rec.regions.is_empty());
    }

    #[test]
    fn regions_are_disjoint_and_cover_detections() {
        let rec = recommend_rois(&busy_scene(), &RecommendParams::default());
        for (i, a) in rec.regions.iter().enumerate() {
            for b in &rec.regions[i + 1..] {
                assert!(!a.overlaps(*b), "{a:?} overlaps {b:?}");
            }
        }
        // Areas agree: union of detections equals union of regions.
        let det_area: u64 = {
            let rects: Vec<Rect> = rec.detections.iter().map(|d| d.rect).collect();
            decompose_disjoint(&rects).iter().map(|r| r.area()).sum()
        };
        let region_area: u64 = rec.regions.iter().map(|r| r.area()).sum();
        assert_eq!(det_area, region_area);
    }

    #[test]
    fn empty_scene_has_no_regions() {
        let img = RgbImage::filled(160, 120, Rgb::new(140, 140, 140));
        let rec = recommend_rois(
            &img,
            &RecommendParams {
                skip_objectness: true,
                ..RecommendParams::default()
            },
        );
        assert!(rec.regions.is_empty(), "{:?}", rec.regions);
    }
}
