//! Content-based image retrieval standing in for the Google Image Search
//! demonstration (Fig. 2).
//!
//! Each image is summarized by a global descriptor (luma histogram +
//! coarse color layout + edge-orientation histogram); queries return the
//! top-k most similar corpus entries by cosine similarity. The Fig. 2
//! experiment indexes a corpus, queries once with an original image and
//! once with its PuPPIeS-perturbed version, and measures the overlap of
//! the two top-10 result lists.

use puppies_image::convolve::sobel_gradients;
use puppies_image::resample::{scale_rgb, Filter};
use puppies_image::RgbImage;

const LUMA_BINS: usize = 32;
const LAYOUT: usize = 4; // 4x4 grid, 3 channels
const ORI_BINS: usize = 8;

/// Dimension of [`global_descriptor`].
pub const DESCRIPTOR_LEN: usize = LUMA_BINS + LAYOUT * LAYOUT * 3 + ORI_BINS;

/// Computes the global retrieval descriptor of an image.
pub fn global_descriptor(img: &RgbImage) -> Vec<f32> {
    // Normalize scale so descriptors compare across resolutions.
    let norm = scale_rgb(img, 64, 64, Filter::Box);
    let gray = norm.to_gray();
    let mut desc = Vec::with_capacity(DESCRIPTOR_LEN);

    // Luma histogram.
    let mut hist = [0f32; LUMA_BINS];
    for &v in gray.pixels() {
        hist[(v as usize * LUMA_BINS) / 256] += 1.0;
    }
    let n = gray.pixels().len() as f32;
    desc.extend(hist.iter().map(|h| h / n));

    // 4×4 mean-color layout.
    for cy in 0..LAYOUT as u32 {
        for cx in 0..LAYOUT as u32 {
            let (mut r, mut g, mut b) = (0f32, 0f32, 0f32);
            let cell = 64 / LAYOUT as u32;
            for y in 0..cell {
                for x in 0..cell {
                    let p = norm.get(cx * cell + x, cy * cell + y);
                    r += p.r as f32;
                    g += p.g as f32;
                    b += p.b as f32;
                }
            }
            let area = (cell * cell) as f32 * 255.0;
            desc.push(r / area);
            desc.push(g / area);
            desc.push(b / area);
        }
    }

    // Edge-orientation histogram.
    let (mag, ori) = sobel_gradients(&gray.to_plane());
    let mut ohist = [0f32; ORI_BINS];
    let mut total = 0f32;
    for y in 0..64 {
        for x in 0..64 {
            let m = mag.get(x, y);
            if m > 40.0 {
                let a = ori.get(x, y).rem_euclid(std::f32::consts::PI);
                let bin = ((a / std::f32::consts::PI) * ORI_BINS as f32) as usize;
                ohist[bin.min(ORI_BINS - 1)] += 1.0;
                total += 1.0;
            }
        }
    }
    if total > 0.0 {
        for o in &mut ohist {
            *o /= total;
        }
    }
    desc.extend_from_slice(&ohist);
    desc
}

/// Cosine similarity of two descriptors in `[-1, 1]`.
///
/// # Panics
/// Panics if lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "descriptor lengths differ");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na <= 1e-9 || nb <= 1e-9 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// A searchable corpus of image descriptors.
#[derive(Debug, Clone, Default)]
pub struct RetrievalIndex {
    entries: Vec<(u64, Vec<f32>)>,
}

impl RetrievalIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an image under `id`.
    pub fn insert(&mut self, id: u64, img: &RgbImage) {
        self.entries.push((id, global_descriptor(img)));
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the ids of the `k` most similar images, best first.
    pub fn query(&self, img: &RgbImage, k: usize) -> Vec<u64> {
        let q = global_descriptor(img);
        let mut scored: Vec<(f32, u64)> = self
            .entries
            .iter()
            .map(|(id, d)| (cosine_similarity(&q, d), *id))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        scored.into_iter().take(k).map(|(_, id)| id).collect()
    }
}

/// Overlap of two result lists as `|A ∩ B| / max(|A|, |B|)` — the Fig. 2
/// comparison measure.
pub fn result_overlap(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let inter = b.iter().filter(|id| sa.contains(id)).count();
    inter as f64 / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::draw;
    use puppies_image::{Rect, Rgb};

    fn scene(hue: u8, seed: u32) -> RgbImage {
        let mut img = RgbImage::filled(96, 96, Rgb::new(hue, 140, 220u8.saturating_sub(hue)));
        draw::fill_rect(
            &mut img,
            Rect::new(10 + seed % 20, 20, 30, 30),
            Rgb::new(200, hue, 60),
        );
        draw::fill_ellipse(&mut img, 60, 70, 18, 14, Rgb::new(hue / 2, 200, 90));
        img
    }

    #[test]
    fn descriptor_has_fixed_length() {
        let d = global_descriptor(&scene(100, 0));
        assert_eq!(d.len(), DESCRIPTOR_LEN);
    }

    #[test]
    fn identical_images_are_most_similar() {
        let mut idx = RetrievalIndex::new();
        for i in 0..10u64 {
            idx.insert(i, &scene((i * 25) as u8, i as u32));
        }
        let results = idx.query(&scene(75, 3), 3);
        assert_eq!(results[0], 3, "self-query must rank first: {results:?}");
    }

    #[test]
    fn similar_scenes_rank_above_dissimilar() {
        let mut idx = RetrievalIndex::new();
        idx.insert(0, &scene(10, 0)); // similar hue family
        idx.insert(1, &scene(15, 0));
        idx.insert(2, &scene(240, 9)); // far hue
        let results = idx.query(&scene(12, 0), 3);
        assert!(
            results[2] == 2,
            "dissimilar image should rank last: {results:?}"
        );
    }

    #[test]
    fn scale_invariance_of_descriptor() {
        let img = scene(90, 2);
        let big = puppies_image::resample::scale_rgb(&img, 192, 192, Filter::Bilinear);
        let sim = cosine_similarity(&global_descriptor(&img), &global_descriptor(&big));
        assert!(sim > 0.98, "similarity {sim}");
    }

    #[test]
    fn overlap_metric() {
        assert_eq!(result_overlap(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(result_overlap(&[1, 2, 3, 4], &[5, 6, 7, 8]), 0.0);
        assert!((result_overlap(&[1, 2, 3, 4], &[1, 2, 9, 10]) - 0.5).abs() < 1e-12);
        assert_eq!(result_overlap(&[], &[]), 1.0);
    }
}
