//! Perceptual DCT signatures (pHash) over low-resolution intensity grids.
//!
//! This is the vision-side half of the perceptual-identity layer (ROADMAP
//! Open item 4, after Iida–Kiya): a 64-bit signature of a coarse
//! brightness map that survives recompression but flips under geometric
//! edits. The PSP builds the input grid from the *public* data of a
//! perturbed JPEG — the per-block DC envelope with private-ROI blocks
//! masked out — so the signature is a function of information the PSP
//! already holds in the clear and can never leak private-ROI content
//! (see `puppies-psp`'s `sig` module for the masking rules).
//!
//! The pipeline is the classic pHash shape:
//!
//! 1. area-resample the `w × h` grid to [`SIDE`]`×`[`SIDE`];
//! 2. take the lowest [`BAND`]`×`[`BAND`] 2-D DCT-II coefficients
//!    (two small matrix products — straight-line `f32` loops the
//!    autovectorizer turns into the same SIMD the codec kernels use);
//! 3. threshold the 63 non-DC coefficients at their median.
//!
//! Bit 0 of the signature is always zero (the DC slot carries no
//! comparison); bits 1..=63 are the thresholded band coefficients in
//! row-major order. Matching uses Hamming distance ([`hamming`]), and
//! [`bands`] splits a signature into the four 16-bit multi-index keys the
//! PSP's sublinear near-duplicate index probes: two signatures within
//! Hamming distance 3 share at least one exact band (pigeonhole), and the
//! PSP re-checks real distances on every candidate, so wider thresholds
//! only cost extra probes, never correctness.

/// Side length of the resampled grid the DCT runs on.
pub const SIDE: usize = 32;
/// Side length of the retained low-frequency DCT band.
pub const BAND: usize = 8;
/// Bits in a signature.
pub const SIG_BITS: u32 = 64;

/// Area-resamples one axis: every destination cell averages the source
/// span it covers, with fractional edge weights. Handles both up- and
/// down-sampling (a span shorter than one source cell reads that cell's
/// neighbourhood proportionally).
fn resample_axis(src: &[f32], src_len: usize, dst: &mut [f32], dst_len: usize, stride: usize) {
    debug_assert!(src_len > 0 && dst_len > 0);
    let scale = src_len as f32 / dst_len as f32;
    for (d, out) in dst.iter_mut().enumerate() {
        let lo = d as f32 * scale;
        let hi = (d + 1) as f32 * scale;
        let first = lo.floor() as usize;
        let last = ((hi.ceil() as usize).max(first + 1)).min(src_len);
        let mut acc = 0.0f32;
        let mut weight = 0.0f32;
        for s in first..last {
            let cell_lo = s as f32;
            let cell_hi = cell_lo + 1.0;
            let w = (hi.min(cell_hi) - lo.max(cell_lo)).max(0.0);
            acc += src[s * stride] * w;
            weight += w;
        }
        *out = if weight > 0.0 { acc / weight } else { 0.0 };
    }
}

/// Area-resamples `grid` (`w × h`, row-major) to [`SIDE`]`×`[`SIDE`].
fn resample(grid: &[f32], w: usize, h: usize) -> [f32; SIDE * SIDE] {
    // Rows first (w → SIDE per row), then columns (h → SIDE per column).
    let mut rows = vec![0.0f32; h * SIDE];
    let mut row_buf = [0.0f32; SIDE];
    for y in 0..h {
        resample_axis(&grid[y * w..(y + 1) * w], w, &mut row_buf, SIDE, 1);
        rows[y * SIDE..(y + 1) * SIDE].copy_from_slice(&row_buf);
    }
    let mut out = [0.0f32; SIDE * SIDE];
    let mut col_buf = [0.0f32; SIDE];
    for x in 0..SIDE {
        resample_axis(&rows[x..], h, &mut col_buf, SIDE, SIDE);
        for y in 0..SIDE {
            out[y * SIDE + x] = col_buf[y];
        }
    }
    out
}

/// The `BAND × SIDE` DCT-II basis slice: `C[u][x] = cos((2x+1)uπ / 2N)`.
fn dct_basis() -> [[f32; SIDE]; BAND] {
    let mut c = [[0.0f32; SIDE]; BAND];
    let n = SIDE as f64;
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = ((std::f64::consts::PI * u as f64 * (2.0 * x as f64 + 1.0)) / (2.0 * n)).cos()
                as f32;
        }
    }
    c
}

/// Lowest `BAND × BAND` 2-D DCT-II coefficients of a `SIDE × SIDE` grid,
/// unnormalized (thresholding is scale-invariant so the `a(u)a(v)`
/// factors are irrelevant).
fn low_band(grid: &[f32; SIDE * SIDE]) -> [f32; BAND * BAND] {
    let c = dct_basis();
    // rows: R[y][u] = Σ_x g[y][x] · C[u][x]
    let mut rows = [[0.0f32; BAND]; SIDE];
    for y in 0..SIDE {
        let g = &grid[y * SIDE..(y + 1) * SIDE];
        for u in 0..BAND {
            let mut acc = 0.0f32;
            for x in 0..SIDE {
                acc += g[x] * c[u][x];
            }
            rows[y][u] = acc;
        }
    }
    // columns: F[v][u] = Σ_y R[y][u] · C[v][y]
    let mut out = [0.0f32; BAND * BAND];
    for v in 0..BAND {
        for u in 0..BAND {
            let mut acc = 0.0f32;
            for (y, row) in rows.iter().enumerate() {
                acc += row[u] * c[v][y];
            }
            out[v * BAND + u] = acc;
        }
    }
    out
}

/// Computes the 64-bit perceptual signature of a `w × h` intensity grid
/// (row-major; any positive dimensions). Deterministic: the same grid
/// always yields the same signature.
///
/// # Panics
/// Panics if `grid.len() != w * h`.
pub fn phash64(grid: &[f32], w: usize, h: usize) -> u64 {
    assert_eq!(grid.len(), w * h, "grid length must be w*h");
    if w == 0 || h == 0 {
        return 0;
    }
    let band = low_band(&resample(grid, w, h));
    // Median of the 63 non-DC coefficients.
    let mut sorted: Vec<f32> = band[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    // Threshold with a DC-relative epsilon so float round-off in the basis
    // sums (a flat grid's AC terms are ~1e-7 of its DC, not exactly zero)
    // can never set bits; real image structure sits orders of magnitude
    // above this.
    let eps = band[0].abs() * 1e-6 + 1e-12;
    let mut sig = 0u64;
    for (i, &v) in band[1..].iter().enumerate() {
        if v > median + eps {
            sig |= 1u64 << (i + 1);
        }
    }
    sig
}

/// Hamming distance between two signatures.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// The four 16-bit multi-index bands of a signature, low bits first.
/// Signatures within Hamming distance 3 agree on at least one band.
pub fn bands(sig: u64) -> [u16; 4] {
    [
        sig as u16,
        (sig >> 16) as u16,
        (sig >> 32) as u16,
        (sig >> 48) as u16,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize, seed: u32) -> Vec<f32> {
        (0..w * h)
            .map(|i| {
                let x = i % w;
                let y = i / w;
                ((x * 7 + y * 13 + seed as usize * 31) % 251) as f32
                    + ((x as f32 * 0.37).sin() + (y as f32 * 0.21).cos()) * 40.0
            })
            .collect()
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = textured(24, 18, 1);
        assert_eq!(phash64(&g, 24, 18), phash64(&g, 24, 18));
        let other = textured(24, 18, 9);
        assert_ne!(phash64(&g, 24, 18), phash64(&other, 24, 18));
    }

    #[test]
    fn constant_grid_hashes_to_zero() {
        let g = vec![128.0f32; 16 * 16];
        assert_eq!(phash64(&g, 16, 16), 0);
    }

    #[test]
    fn small_perturbation_stays_close_large_edit_moves_far() {
        let g = textured(32, 24, 3);
        let sig = phash64(&g, 32, 24);
        // Simulated requantization noise: bounded, zero-mean-ish jitter.
        let noisy: Vec<f32> = g
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 4.0 } else { -4.0 })
            .collect();
        let d_noise = hamming(sig, phash64(&noisy, 32, 24));
        assert!(d_noise <= 8, "noise moved the signature {d_noise} bits");
        // Horizontal flip is a different picture.
        let mut flipped = g.clone();
        for y in 0..24 {
            flipped[y * 32..(y + 1) * 32].reverse();
        }
        let d_flip = hamming(sig, phash64(&flipped, 32, 24));
        assert!(d_flip > 8, "flip only moved the signature {d_flip} bits");
    }

    #[test]
    fn resampling_is_scale_stable() {
        // The same scene sampled at two grid resolutions should hash
        // nearby: build a coarse grid by 2×2 box-averaging a fine one.
        let fine = textured(48, 32, 5);
        let mut coarse = vec![0.0f32; 24 * 16];
        for y in 0..16 {
            for x in 0..24 {
                let mut acc = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        acc += fine[(y * 2 + dy) * 48 + x * 2 + dx];
                    }
                }
                coarse[y * 24 + x] = acc / 4.0;
            }
        }
        let d = hamming(phash64(&fine, 48, 32), phash64(&coarse, 24, 16));
        assert!(d <= 10, "scale change moved the signature {d} bits");
    }

    #[test]
    fn bands_split_round_trips() {
        let sig = 0x0123_4567_89ab_cdefu64;
        let b = bands(sig);
        assert_eq!(b, [0xcdef, 0x89ab, 0x4567, 0x0123]);
        let joined = (b[3] as u64) << 48 | (b[2] as u64) << 32 | (b[1] as u64) << 16 | b[0] as u64;
        assert_eq!(joined, sig);
    }

    #[test]
    fn bit_zero_is_reserved() {
        for seed in 0..8 {
            let g = textured(20, 20, seed);
            assert_eq!(phash64(&g, 20, 20) & 1, 0);
        }
    }

    #[test]
    #[should_panic(expected = "grid length")]
    fn wrong_length_panics() {
        let _ = phash64(&[1.0, 2.0], 3, 4);
    }
}
