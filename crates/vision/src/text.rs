//! A text-block detector standing in for the OCR stage of §IV-A.
//!
//! Rendered text (SSNs, license plates) has a distinctive signature: dense
//! short strokes with strong horizontal gradient variation, organized in a
//! horizontal band. The detector binarizes a gradient map, finds connected
//! components of stroke pixels, and merges horizontally-adjacent
//! components into text-line boxes.

use puppies_image::convolve::sobel_gradients;
use puppies_image::{GrayImage, Rect};

/// Parameters for [`detect_text_blocks`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextDetectorParams {
    /// Gradient-magnitude threshold for stroke pixels.
    pub gradient_threshold: f32,
    /// Cell side used to pool stroke density.
    pub cell: u32,
    /// Minimum fraction of stroke pixels for a cell to count as "texty".
    pub min_density: f32,
    /// Minimum box width/height in cells.
    pub min_cells: u32,
}

impl Default for TextDetectorParams {
    fn default() -> Self {
        TextDetectorParams {
            gradient_threshold: 90.0,
            cell: 8,
            min_density: 0.12,
            min_cells: 2,
        }
    }
}

/// Detects text-like blocks; returns bounding boxes in pixel coordinates.
pub fn detect_text_blocks(img: &GrayImage, params: &TextDetectorParams) -> Vec<Rect> {
    let (mag, _) = sobel_gradients(&img.to_plane());
    let cell = params.cell.max(2);
    let cw = img.width() / cell;
    let ch = img.height() / cell;
    if cw == 0 || ch == 0 {
        return Vec::new();
    }
    // Stroke density per cell; text cells need *both* many stroke pixels
    // and alternation (strokes separated by gaps).
    let mut texty = vec![false; (cw * ch) as usize];
    for cy in 0..ch {
        for cx in 0..cw {
            let mut strokes = 0u32;
            let mut transitions = 0u32;
            for y in 0..cell {
                let mut prev = false;
                for x in 0..cell {
                    let m = mag.get(cx * cell + x, cy * cell + y);
                    let on = m > params.gradient_threshold;
                    if on {
                        strokes += 1;
                    }
                    if on != prev {
                        transitions += 1;
                    }
                    prev = on;
                }
            }
            let density = strokes as f32 / (cell * cell) as f32;
            texty[(cy * cw + cx) as usize] = density > params.min_density && transitions >= cell;
        }
    }
    // Connected components over texty cells (4-connectivity).
    let mut visited = vec![false; texty.len()];
    let mut boxes = Vec::new();
    for start in 0..texty.len() {
        if !texty[start] || visited[start] {
            continue;
        }
        let mut stack = vec![start];
        visited[start] = true;
        let (mut x0, mut y0, mut x1, mut y1) = (u32::MAX, u32::MAX, 0u32, 0u32);
        let mut count = 0u32;
        while let Some(idx) = stack.pop() {
            count += 1;
            let cx = idx as u32 % cw;
            let cy = idx as u32 / cw;
            x0 = x0.min(cx);
            y0 = y0.min(cy);
            x1 = x1.max(cx);
            y1 = y1.max(cy);
            let neighbors = [
                (cx.wrapping_sub(1), cy),
                (cx + 1, cy),
                (cx, cy.wrapping_sub(1)),
                (cx, cy + 1),
            ];
            for (nx, ny) in neighbors {
                if nx < cw && ny < ch {
                    let nidx = (ny * cw + nx) as usize;
                    if texty[nidx] && !visited[nidx] {
                        visited[nidx] = true;
                        stack.push(nidx);
                    }
                }
            }
        }
        let w_cells = x1 - x0 + 1;
        let h_cells = y1 - y0 + 1;
        if w_cells >= params.min_cells && count >= params.min_cells {
            boxes.push(Rect::new(
                x0 * cell,
                y0 * cell,
                w_cells * cell,
                h_cells * cell,
            ));
        }
    }
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::font::draw_text;
    use puppies_image::{Rgb, RgbImage};

    #[test]
    fn detects_rendered_text() {
        let mut img = RgbImage::filled(160, 80, Rgb::new(235, 235, 235));
        let text_rect = draw_text(&mut img, "123-45-6789", 24, 32, 2, Rgb::new(20, 20, 20));
        let boxes = detect_text_blocks(&img.to_gray(), &TextDetectorParams::default());
        assert!(!boxes.is_empty(), "text not detected");
        let best = boxes
            .iter()
            .max_by(|a, b| a.iou(text_rect).partial_cmp(&b.iou(text_rect)).unwrap())
            .unwrap();
        assert!(
            best.iou(text_rect) > 0.2,
            "best box {best:?} misses text {text_rect:?}"
        );
    }

    #[test]
    fn no_text_on_flat_image() {
        let img = GrayImage::filled(128, 64, 180);
        assert!(detect_text_blocks(&img, &TextDetectorParams::default()).is_empty());
    }

    #[test]
    fn smooth_gradient_not_text() {
        let img = GrayImage::from_fn(128, 64, |x, _| (x * 2) as u8);
        let boxes = detect_text_blocks(&img, &TextDetectorParams::default());
        assert!(boxes.is_empty(), "gradient misdetected as text: {boxes:?}");
    }

    #[test]
    fn two_lines_give_two_boxes() {
        let mut img = RgbImage::filled(200, 100, Rgb::new(240, 240, 240));
        draw_text(&mut img, "HELLO WORLD", 20, 16, 2, Rgb::new(10, 10, 10));
        draw_text(&mut img, "GOODBYE", 20, 64, 2, Rgb::new(10, 10, 10));
        let boxes = detect_text_blocks(&img.to_gray(), &TextDetectorParams::default());
        assert!(boxes.len() >= 2, "found {} boxes", boxes.len());
    }
}
