//! Personalized ROI recommendation (§IV-A's sketched extension: "this
//! module can log different image owners' choices and preferences, and
//! therefore is possible to train an automated detection and
//! recommendation classifier").
//!
//! The model is a Laplace-smoothed accept-rate per detector kind plus a
//! size prior: every time the owner accepts or rejects a recommended
//! region the counts update, and future recommendations are filtered and
//! ranked by the learned posterior. Deliberately simple — the signal the
//! paper describes is exactly "which kinds of regions does this user
//! protect".

use crate::detect::{Detection, DetectorKind, RoiRecommendation};
use puppies_image::geometry::decompose_disjoint;
use puppies_image::Rect;
use std::collections::HashMap;

/// Accept/reject statistics for one owner.
#[derive(Debug, Clone, Default)]
pub struct PreferenceModel {
    counts: HashMap<DetectorKind, (u32, u32)>, // (accepted, shown)
    /// Area of accepted regions, for the size prior.
    accepted_area: u64,
    accepted_n: u32,
}

impl PreferenceModel {
    /// A fresh model with uniform priors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the owner's decision on one recommended detection.
    pub fn record(&mut self, kind: DetectorKind, rect: Rect, accepted: bool) {
        let e = self.counts.entry(kind).or_insert((0, 0));
        e.1 += 1;
        if accepted {
            e.0 += 1;
            self.accepted_area += rect.area();
            self.accepted_n += 1;
        }
    }

    /// Laplace-smoothed probability that this owner protects regions from
    /// `kind` (0.5 with no evidence).
    pub fn accept_rate(&self, kind: DetectorKind) -> f64 {
        let (a, s) = self.counts.get(&kind).copied().unwrap_or((0, 0));
        (a as f64 + 1.0) / (s as f64 + 2.0)
    }

    /// Number of decisions recorded.
    pub fn decisions(&self) -> u32 {
        self.counts.values().map(|(_, s)| s).sum()
    }

    /// Mean area of regions this owner accepted, if any — callers can use
    /// it to pre-rank size-appropriate proposals.
    pub fn mean_accepted_area(&self) -> Option<f64> {
        (self.accepted_n > 0).then(|| self.accepted_area as f64 / self.accepted_n as f64)
    }

    /// Filters a recommendation to the detections this owner is predicted
    /// to accept (rate ≥ `threshold`), re-splitting the survivors into
    /// disjoint regions.
    pub fn personalize(&self, rec: &RoiRecommendation, threshold: f64) -> RoiRecommendation {
        let detections: Vec<Detection> = rec
            .detections
            .iter()
            .filter(|d| self.accept_rate(d.kind) >= threshold)
            .copied()
            .collect();
        let rects: Vec<Rect> = detections.iter().map(|d| d.rect).collect();
        RoiRecommendation {
            detections,
            regions: decompose_disjoint(&rects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> RoiRecommendation {
        let detections = vec![
            Detection {
                kind: DetectorKind::Face,
                rect: Rect::new(0, 0, 16, 16),
            },
            Detection {
                kind: DetectorKind::Text,
                rect: Rect::new(32, 0, 16, 16),
            },
            Detection {
                kind: DetectorKind::Object,
                rect: Rect::new(64, 0, 16, 16),
            },
        ];
        let rects: Vec<Rect> = detections.iter().map(|d| d.rect).collect();
        RoiRecommendation {
            detections,
            regions: decompose_disjoint(&rects),
        }
    }

    #[test]
    fn fresh_model_is_uniform() {
        let m = PreferenceModel::new();
        for k in [DetectorKind::Face, DetectorKind::Text, DetectorKind::Object] {
            assert_eq!(m.accept_rate(k), 0.5);
        }
        // At the default 0.5 threshold everything passes.
        assert_eq!(m.personalize(&rec(), 0.5).detections.len(), 3);
    }

    #[test]
    fn feedback_shifts_recommendations() {
        let mut m = PreferenceModel::new();
        // Owner always protects faces, never objects.
        for _ in 0..5 {
            m.record(DetectorKind::Face, Rect::new(0, 0, 16, 16), true);
            m.record(DetectorKind::Object, Rect::new(64, 0, 16, 16), false);
        }
        assert!(m.accept_rate(DetectorKind::Face) > 0.8);
        assert!(m.accept_rate(DetectorKind::Object) < 0.2);
        assert_eq!(m.accept_rate(DetectorKind::Text), 0.5);
        let personalized = m.personalize(&rec(), 0.5);
        let kinds: Vec<_> = personalized.detections.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DetectorKind::Face));
        assert!(kinds.contains(&DetectorKind::Text));
        assert!(!kinds.contains(&DetectorKind::Object));
        assert_eq!(personalized.regions.len(), 2);
    }

    #[test]
    fn decisions_counted() {
        let mut m = PreferenceModel::new();
        m.record(DetectorKind::Text, Rect::new(0, 0, 8, 8), true);
        m.record(DetectorKind::Text, Rect::new(0, 0, 8, 8), false);
        assert_eq!(m.decisions(), 2);
        assert_eq!(m.accept_rate(DetectorKind::Text), 0.5);
        assert_eq!(m.mean_accepted_area(), Some(64.0));
        assert_eq!(PreferenceModel::new().mean_accepted_area(), None);
    }

    #[test]
    fn strict_threshold_empties_unknown_kinds() {
        let m = PreferenceModel::new();
        let personalized = m.personalize(&rec(), 0.9);
        assert!(personalized.detections.is_empty());
        assert!(personalized.regions.is_empty());
    }
}
