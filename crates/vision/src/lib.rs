//! Computer-vision substrate for the PuPPIeS reproduction.
//!
//! §IV-A of the paper builds ROI recommendation on face detection, OCR and
//! generic object detection; §VI-B attacks perturbed images with SIFT
//! features, Canny edges, Haar face detection, eigenface recognition and
//! PCA reconstruction. This crate implements all of those from scratch:
//!
//! - [`edges`] — Canny edge detection and the edge-match metric (Fig. 21)
//! - [`sift`] — a scale-space keypoint detector + 128-d descriptor +
//!   ratio-test matcher in the spirit of SIFT (Fig. 20)
//! - [`face`] — a Haar-relation sliding-window face detector over integral
//!   images (§VI-B.3 and the ROI recommender)
//! - [`text`] — a stroke-density text-block detector standing in for OCR
//! - [`objectness`] — a contrast/edge-density "what is an object?" scorer
//!   (Alexe et al.-inspired) for generic ROI proposals
//! - [`pca`] — symmetric eigendecomposition and PCA utilities
//! - [`eigenfaces`] — the Turk–Pentland recognizer used by the
//!   face-recognition attack (Fig. 22)
//! - [`retrieval`] — a content-based image retrieval index standing in for
//!   Google Image Search (Fig. 2)
//! - [`detect`] — the merged ROI detection + disjoint-split recommendation
//!   pipeline (Fig. 12)
//! - [`preference`] — the per-owner personalization model §IV-A sketches
//!   (learned accept-rates per detector kind)
//! - [`signature`] — 64-bit perceptual DCT signatures (pHash) for the
//!   PSP's identification-without-decryption layer (ROADMAP Open item 4)

pub mod detect;
pub mod edges;
pub mod eigenfaces;
pub mod face;
pub mod objectness;
pub mod pca;
pub mod preference;
pub mod retrieval;
pub mod sift;
pub mod signature;
pub mod text;

pub use detect::{recommend_rois, Detection, DetectorKind, RoiRecommendation};
pub use edges::{canny, edge_match_ratio, CannyParams};
pub use eigenfaces::EigenfaceGallery;
pub use face::{detect_faces, FaceDetectorParams};
pub use preference::PreferenceModel;
pub use retrieval::RetrievalIndex;
pub use sift::{extract_sift, match_descriptors, SiftKeypoint, SiftParams};
