//! A Viola–Jones-style sliding-window face detector built on Haar-like
//! rectangle relations over integral images.
//!
//! The cascade is hand-crafted rather than boosted from data: each stage
//! tests a luminance relation that holds for frontal faces (eye band
//! darker than forehead and cheeks, mouth darker than chin, face region
//! brighter than its surroundings, sufficient variance). This detects the
//! parametric faces of `puppies-datasets` reliably and — like any Haar
//! detector — fails on PuPPIeS-perturbed regions, which is exactly what
//! the face-detection attack experiment (§VI-B.3) measures.

use puppies_image::integral::IntegralImage;
use puppies_image::{GrayImage, Rect};

/// Detector tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceDetectorParams {
    /// Smallest window side tested, in pixels.
    pub min_size: u32,
    /// Largest window side tested (0 = image size).
    pub max_size: u32,
    /// Geometric scale step between window sizes.
    pub scale_step: f32,
    /// Window stride as a fraction of window size.
    pub stride_frac: f32,
    /// Minimum mean contrast (in gray levels) between the eye band and the
    /// bands above/below it.
    pub eye_contrast: f64,
    /// Minimum window variance (rejects flat regions).
    pub min_variance: f64,
    /// Non-maximum-suppression IoU threshold.
    pub nms_iou: f64,
}

impl Default for FaceDetectorParams {
    fn default() -> Self {
        FaceDetectorParams {
            min_size: 24,
            max_size: 0,
            scale_step: 1.25,
            stride_frac: 0.1,
            eye_contrast: 12.0,
            min_variance: 80.0,
            nms_iou: 0.3,
        }
    }
}

/// A face detection with its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceDetection {
    /// Bounding box.
    pub rect: Rect,
    /// Detection score (larger = more face-like).
    pub score: f64,
}

/// Runs the detector over all scales and positions, returning
/// non-maximum-suppressed detections sorted by descending score.
pub fn detect_faces(img: &GrayImage, params: &FaceDetectorParams) -> Vec<FaceDetection> {
    let ii = IntegralImage::build(img);
    let max_size = if params.max_size == 0 {
        img.width().min(img.height())
    } else {
        params.max_size
    };
    let mut detections = Vec::new();
    let mut size = params.min_size.max(16);
    while size <= max_size {
        // Faces are taller than wide; windows use a 4:5 aspect ratio.
        let win_h = size * 5 / 4;
        let stride = ((size as f32 * params.stride_frac) as u32).max(1);
        let mut y = 0;
        while y + win_h <= img.height() {
            let mut x = 0;
            while x + size <= img.width() {
                if let Some(score) = score_window(&ii, Rect::new(x, y, size, win_h), params) {
                    detections.push(FaceDetection {
                        rect: Rect::new(x, y, size, win_h),
                        score,
                    });
                }
                x += stride;
            }
            y += stride;
        }
        let next = (size as f32 * params.scale_step) as u32;
        size = next.max(size + 1);
    }
    non_max_suppress(detections, params.nms_iou)
}

/// Band helper: a horizontal slice of the window given fractional top and
/// bottom, limited to the central `left..right` width fraction so the
/// face oval covers the band at every height.
fn band_x(w: Rect, top: f32, bottom: f32, left: f32, right: f32) -> Rect {
    let y0 = w.y + (w.h as f32 * top) as u32;
    let y1 = w.y + (w.h as f32 * bottom) as u32;
    let x0 = w.x + (w.w as f32 * left) as u32;
    let x1 = w.x + (w.w as f32 * right) as u32;
    Rect::new(
        x0,
        y0,
        x1.saturating_sub(x0).max(1),
        y1.saturating_sub(y0).max(1),
    )
}

fn band(w: Rect, top: f32, bottom: f32) -> Rect {
    band_x(w, top, bottom, 0.25, 0.75)
}

fn score_window(ii: &IntegralImage, w: Rect, params: &FaceDetectorParams) -> Option<f64> {
    // Stage 0: enough texture.
    let var = ii.variance(w);
    if var < params.min_variance {
        return None;
    }
    // Face interior (oval-ish) bands, tuned to the canonical geometry
    // (eyes at 0.35 of height, mouth at 0.72).
    let forehead = band(w, 0.10, 0.24);
    let eyes = band(w, 0.28, 0.42);
    let cheeks = band(w, 0.46, 0.60);
    let mouth = band_x(w, 0.64, 0.80, 0.35, 0.65);
    let chin = band_x(w, 0.84, 0.94, 0.40, 0.60);

    let m_forehead = ii.mean(forehead);
    let m_eyes = ii.mean(eyes);
    let m_cheeks = ii.mean(cheeks);
    let m_mouth = ii.mean(mouth);
    let m_chin = ii.mean(chin);

    // Stage 1: eye band darker than forehead and cheeks.
    let eye_drop = (m_forehead - m_eyes).min(m_cheeks - m_eyes);
    if eye_drop < params.eye_contrast {
        return None;
    }
    // Stage 2: mouth darker than chin (weaker relation).
    let mouth_drop = m_chin - m_mouth;
    if mouth_drop < params.eye_contrast * 0.3 {
        return None;
    }
    // Stage 3: two dark eyes separated by a brighter nose bridge.
    let third = w.w / 3;
    let eye_l = Rect::new(eyes.x, eyes.y, third, eyes.h);
    let eye_m = Rect::new(eyes.x + third, eyes.y, third, eyes.h);
    let eye_r = Rect::new(eyes.x + 2 * third, eyes.y, w.w - 2 * third, eyes.h);
    let bridge = ii.mean(eye_m) - 0.5 * (ii.mean(eye_l) + ii.mean(eye_r));
    if bridge < params.eye_contrast * 0.3 {
        return None;
    }
    // Stage 4: the face oval is brighter than the window corners (rejects
    // windows sitting entirely inside skin, which would otherwise out-score
    // the full face).
    let q = (w.w / 4).max(1);
    let corners = [
        Rect::new(w.x, w.y, q, q),
        Rect::new(w.right() - q, w.y, q, q),
        Rect::new(w.x, w.bottom() - q, q, q),
        Rect::new(w.right() - q, w.bottom() - q, q, q),
    ];
    let m_corners = corners.iter().map(|&c| ii.mean(c)).sum::<f64>() / 4.0;
    let center = Rect::new(w.x + w.w / 4, w.y + w.h / 4, w.w / 2, w.h / 2);
    let ovalness = ii.mean(center) - m_corners;
    if ovalness < params.eye_contrast * 0.5 {
        return None;
    }
    // Larger complete faces outrank partial interior windows.
    let size_bonus = (w.w as f64).sqrt();
    Some(eye_drop + mouth_drop + bridge + ovalness * 0.5 + size_bonus)
}

fn non_max_suppress(mut dets: Vec<FaceDetection>, iou: f64) -> Vec<FaceDetection> {
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let mut kept: Vec<FaceDetection> = Vec::new();
    for d in dets {
        if kept.iter().all(|k| k.rect.iou(d.rect) < iou) {
            kept.push(d);
        }
    }
    kept
}

/// Draws a canonical synthetic frontal face into `img` at the given
/// bounding box. This is the shared contract between the detector and the
/// dataset generators (which re-export it); keeping it here lets the
/// detector tests and the generators agree on geometry.
pub fn render_face(
    img: &mut puppies_image::RgbImage,
    bbox: Rect,
    skin: puppies_image::Rgb,
    identity: &FaceGeometry,
) {
    use puppies_image::draw;
    let cx = (bbox.x + bbox.w / 2) as i32;
    let cy = (bbox.y + bbox.h / 2) as i32;
    let rx = (bbox.w as f32 * 0.46) as i32;
    let ry = (bbox.h as f32 * 0.48) as i32;
    draw::fill_ellipse(img, cx, cy, rx, ry, skin);

    let dark = puppies_image::Rgb::new(
        (skin.r as f32 * 0.25) as u8,
        (skin.g as f32 * 0.25) as u8,
        (skin.b as f32 * 0.25) as u8,
    );
    // Eyes around 35% height.
    let eye_y = bbox.y as i32 + (bbox.h as f32 * 0.35) as i32;
    let eye_dx = (bbox.w as f32 * identity.eye_spread) as i32;
    let eye_r = ((bbox.w as f32 * identity.eye_size) as i32).max(1);
    draw::fill_ellipse(
        img,
        cx - eye_dx,
        eye_y,
        eye_r,
        (eye_r as f32 * 0.7) as i32 + 1,
        dark,
    );
    draw::fill_ellipse(
        img,
        cx + eye_dx,
        eye_y,
        eye_r,
        (eye_r as f32 * 0.7) as i32 + 1,
        dark,
    );
    // Brows.
    let brow_y = eye_y - eye_r * 2;
    for side in [-1, 1] {
        draw::line(
            img,
            puppies_image::Point::new(cx + side * (eye_dx - eye_r), brow_y),
            puppies_image::Point::new(cx + side * (eye_dx + eye_r), brow_y - identity.brow_tilt),
            dark,
        );
    }
    // Nose.
    let nose_y = bbox.y as i32 + (bbox.h as f32 * 0.55) as i32;
    draw::line(
        img,
        puppies_image::Point::new(cx, eye_y + eye_r),
        puppies_image::Point::new(cx - (bbox.w as i32) / 20, nose_y),
        dark,
    );
    // Mouth around 72% height.
    let mouth_y = bbox.y as i32 + (bbox.h as f32 * 0.72) as i32;
    let mouth_w = (bbox.w as f32 * identity.mouth_width) as i32;
    let mouth_h = ((bbox.h as f32 * 0.04) as i32).max(1);
    draw::fill_ellipse(img, cx, mouth_y, mouth_w, mouth_h, dark);
}

/// Per-identity face geometry (the signal eigenface recognition keys on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceGeometry {
    /// Horizontal eye offset as a fraction of face width (~0.16..0.26).
    pub eye_spread: f32,
    /// Eye radius as a fraction of face width (~0.05..0.09).
    pub eye_size: f32,
    /// Mouth half-width as a fraction of face width (~0.12..0.24).
    pub mouth_width: f32,
    /// Brow tilt in pixels (-3..=3).
    pub brow_tilt: i32,
}

impl Default for FaceGeometry {
    fn default() -> Self {
        FaceGeometry {
            eye_spread: 0.20,
            eye_size: 0.07,
            mouth_width: 0.18,
            brow_tilt: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::{Rgb, RgbImage};

    fn scene_with_face(bbox: Rect) -> GrayImage {
        let mut img = RgbImage::filled(160, 120, Rgb::new(60, 80, 110));
        render_face(
            &mut img,
            bbox,
            Rgb::new(224, 186, 150),
            &FaceGeometry::default(),
        );
        img.to_gray()
    }

    #[test]
    fn detects_synthetic_face() {
        let bbox = Rect::new(50, 30, 48, 60);
        let img = scene_with_face(bbox);
        let dets = detect_faces(&img, &FaceDetectorParams::default());
        assert!(!dets.is_empty(), "no detections");
        let best = dets[0];
        assert!(
            best.rect.iou(bbox) > 0.25,
            "best detection {:?} misses face {:?}",
            best.rect,
            bbox
        );
    }

    #[test]
    fn no_detection_on_flat_background() {
        let img = GrayImage::filled(128, 128, 100);
        let dets = detect_faces(&img, &FaceDetectorParams::default());
        assert!(dets.is_empty());
    }

    #[test]
    fn no_detection_on_noise() {
        let img = GrayImage::from_fn(128, 128, |x, y| {
            ((x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503)) % 256) as u8
        });
        let dets = detect_faces(&img, &FaceDetectorParams::default());
        // Noise may fire the variance stage but should rarely pass the
        // structural stages.
        assert!(dets.len() <= 2, "{} noise detections", dets.len());
    }

    #[test]
    fn detects_two_faces() {
        let mut img = RgbImage::filled(200, 120, Rgb::new(70, 90, 120));
        let a = Rect::new(20, 30, 48, 60);
        let b = Rect::new(120, 25, 52, 64);
        render_face(
            &mut img,
            a,
            Rgb::new(230, 190, 155),
            &FaceGeometry::default(),
        );
        render_face(
            &mut img,
            b,
            Rgb::new(200, 160, 130),
            &FaceGeometry {
                eye_spread: 0.24,
                ..FaceGeometry::default()
            },
        );
        let dets = detect_faces(&img.to_gray(), &FaceDetectorParams::default());
        assert!(dets.len() >= 2, "found {} faces", dets.len());
        let hit_a = dets.iter().any(|d| d.rect.iou(a) > 0.2);
        let hit_b = dets.iter().any(|d| d.rect.iou(b) > 0.2);
        assert!(hit_a && hit_b, "a: {hit_a}, b: {hit_b}");
    }

    #[test]
    fn nms_removes_overlaps() {
        let bbox = Rect::new(40, 20, 48, 60);
        let img = scene_with_face(bbox);
        let dets = detect_faces(&img, &FaceDetectorParams::default());
        for (i, a) in dets.iter().enumerate() {
            for b in &dets[i + 1..] {
                assert!(a.rect.iou(b.rect) < 0.3, "overlapping detections survived");
            }
        }
    }
}
