//! Principal component analysis on small symmetric systems.
//!
//! Used by the eigenface recognizer (Fig. 22) and the PCA
//! signal-correlation attack (Fig. 23). The eigensolver is a cyclic Jacobi
//! iteration — exact enough for the ≤ few-hundred-dimensional systems the
//! experiments build (the Turk–Pentland trick keeps eigenface systems at
//! gallery size, not pixel count).

/// A dense column-major symmetric matrix eigendecomposition.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// `eigenvectors[k]` is the unit eigenvector for `eigenvalues[k]`.
///
/// # Panics
/// Panics if `a` is not `n × n`.
pub fn symmetric_eigen(a: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    let mut m: Vec<Vec<f64>> = a.to_vec();
    // v starts as identity; accumulates rotations.
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    let off = |m: &[Vec<f64>]| -> f64 {
        let mut s = 0.0;
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    s += v * v;
                }
            }
        }
        s
    };

    let mut sweeps = 0;
    while off(&m) > 1e-18 && sweeps < 100 {
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for row in m.iter_mut() {
                    let mkp = row[p];
                    let mkq = row[q];
                    row[p] = c * mkp - s * mkq;
                    row[q] = s * mkp + c * mkq;
                }
                {
                    // Rows p and q (p < q) need simultaneous mutation.
                    let (head, tail) = m.split_at_mut(q);
                    let (rp, rq) = (&mut head[p], &mut tail[0]);
                    for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
                        let mpk = *a;
                        let mqk = *b;
                        *a = c * mpk - s * mqk;
                        *b = s * mpk + c * mqk;
                    }
                }
                // Accumulate in v.
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = c * vkp - s * vkq;
                    row[q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| (m[k][k], (0..n).map(|i| v[i][k]).collect()))
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let vals = pairs.iter().map(|p| p.0).collect();
    let vecs = pairs.into_iter().map(|p| p.1).collect();
    (vals, vecs)
}

/// A PCA basis learned from row-major samples.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Row `k` is the `k`-th principal axis (unit length, dimension D).
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits a PCA basis with up to `k` components from `samples`
    /// (each a D-dimensional vector).
    ///
    /// Uses the Gram-matrix (Turk–Pentland) formulation, so cost scales
    /// with the sample count rather than dimension.
    ///
    /// # Panics
    /// Panics if there are fewer than 2 samples or dimensions disagree.
    pub fn fit(samples: &[Vec<f64>], k: usize) -> Pca {
        let n = samples.len();
        assert!(n >= 2, "need at least two samples");
        let d = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == d), "dimension mismatch");
        let mut mean = vec![0.0; d];
        for s in samples {
            for (m, &v) in mean.iter_mut().zip(s.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // Centered data.
        let centered: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| s.iter().zip(mean.iter()).map(|(&v, &m)| v - m).collect())
            .collect();
        // Gram matrix G = X Xᵀ / n  (n × n).
        let mut gram = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let dot: f64 = centered[i]
                    .iter()
                    .zip(centered[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                gram[i][j] = dot / n as f64;
                gram[j][i] = gram[i][j];
            }
        }
        let (vals, vecs) = symmetric_eigen(&gram);
        let k = k.min(n);
        let mut components = Vec::with_capacity(k);
        let mut eigenvalues = Vec::with_capacity(k);
        for idx in 0..k {
            if vals[idx] <= 1e-12 {
                break;
            }
            // Map gram eigenvector to data space: u = Xᵀ a, normalized.
            let mut u = vec![0.0; d];
            for (i, c) in centered.iter().enumerate() {
                let a = vecs[idx][i];
                for (uj, &cj) in u.iter_mut().zip(c.iter()) {
                    *uj += a * cj;
                }
            }
            let norm: f64 = u.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm <= 1e-12 {
                break;
            }
            for uj in &mut u {
                *uj /= norm;
            }
            components.push(u);
            eigenvalues.push(vals[idx]);
        }
        Pca {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Number of retained components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components were retained.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The sample mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Eigenvalues (descending) of the retained components.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Projects a sample onto the retained components.
    ///
    /// # Panics
    /// Panics if the dimension disagrees with the training data.
    pub fn project(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(sample.iter().zip(self.mean.iter()))
                    .map(|(&ci, (&v, &m))| ci * (v - m))
                    .sum()
            })
            .collect()
    }

    /// Reconstructs a sample from its projection (the PCA recovery attack
    /// of Fig. 23 uses this).
    pub fn reconstruct(&self, coords: &[f64]) -> Vec<f64> {
        let mut out = self.mean.clone();
        for (c, &w) in self.components.iter().zip(coords.iter()) {
            for (o, &ci) in out.iter_mut().zip(c.iter()) {
                *o += w * ci;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 2.0).abs() < 1e-9);
        assert!((vals[2] - 1.0).abs() < 1e-9);
        // First eigenvector is ±e0.
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, vecs) = symmetric_eigen(&a);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6 || (v[0] + v[1]).abs() < 1e-6);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ];
        let (_, vecs) = symmetric_eigen(&a);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = vecs[i].iter().zip(vecs[j].iter()).map(|(a, b)| a * b).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-6, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along (2, 1) with small noise.
        let samples: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 - 25.0;
                vec![2.0 * t + (i % 3) as f64 * 0.01, t - (i % 5) as f64 * 0.01]
            })
            .collect();
        let pca = Pca::fit(&samples, 2);
        assert!(!pca.is_empty());
        let c = &pca.project(&[4.0, 2.0]);
        assert!(!c.is_empty());
        // Dominant axis is parallel to (2,1)/sqrt(5).
        let axis: Vec<f64> = pca.components[0].clone();
        let expected = [2.0 / 5f64.sqrt(), 1.0 / 5f64.sqrt()];
        let dot = (axis[0] * expected[0] + axis[1] * expected[1]).abs();
        assert!(dot > 0.999, "axis {axis:?}");
    }

    #[test]
    fn projection_reconstruction_roundtrip_in_subspace() {
        let samples: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64;
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let pca = Pca::fit(&samples, 3);
        // Samples lie on a 1-D subspace; reconstruction of a training point
        // must be near-exact.
        let s = &samples[7];
        let rec = pca.reconstruct(&pca.project(s));
        for (a, b) in s.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn reconstruction_error_decreases_with_components() {
        // Anisotropic cloud in 4-D.
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 4.0;
                let u = (i % 7) as f64;
                vec![3.0 * t + u, t - u, u * 0.5, t]
            })
            .collect();
        let err = |k: usize| {
            let pca = Pca::fit(&samples, k);
            samples
                .iter()
                .map(|s| {
                    let rec = pca.reconstruct(&pca.project(s));
                    s.iter()
                        .zip(rec.iter())
                        .map(|(a, b)| (a - b).powi(2))
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        assert!(err(2) <= err(1) + 1e-9);
        assert!(err(3) <= err(2) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_sample_rejected() {
        let _ = Pca::fit(&[vec![1.0, 2.0]], 1);
    }
}
