//! Eigenface recognition (Turk & Pentland, 1991) — the face-recognition
//! attack of §VI-B.4 (Fig. 22).
//!
//! A gallery of labelled face crops is projected into a PCA subspace; a
//! probe face is recognized by nearest-neighbour rank in that subspace.
//! The attack measures the rank at which the true identity appears when
//! the probe is a PuPPIeS-perturbed (or P3-public) face.

use crate::pca::Pca;
use puppies_image::resample::{scale_gray, Filter};
use puppies_image::GrayImage;

/// Canonical face-chip side used internally.
const CHIP: u32 = 32;

/// A trained eigenface gallery.
#[derive(Debug, Clone)]
pub struct EigenfaceGallery {
    pca: Pca,
    /// Projected gallery vectors with their labels.
    gallery: Vec<(u32, Vec<f64>)>,
}

fn to_vector(face: &GrayImage) -> Vec<f64> {
    let chip = scale_gray(face, CHIP, CHIP, Filter::Box);
    // Zero-mean, unit-variance normalization for illumination robustness.
    let mean = chip.mean();
    let var: f64 = chip
        .pixels()
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / chip.pixels().len() as f64;
    let sd = var.sqrt().max(1e-6);
    chip.pixels()
        .iter()
        .map(|&v| (v as f64 - mean) / sd)
        .collect()
}

impl EigenfaceGallery {
    /// Trains the subspace from `(label, face)` pairs and enrolls all of
    /// them.
    ///
    /// # Panics
    /// Panics if fewer than two faces are provided.
    pub fn train(faces: &[(u32, GrayImage)], components: usize) -> EigenfaceGallery {
        assert!(faces.len() >= 2, "need at least two gallery faces");
        let vectors: Vec<Vec<f64>> = faces.iter().map(|(_, f)| to_vector(f)).collect();
        let pca = Pca::fit(&vectors, components);
        let gallery = faces
            .iter()
            .zip(vectors.iter())
            .map(|((label, _), v)| (*label, pca.project(v)))
            .collect();
        EigenfaceGallery { pca, gallery }
    }

    /// Number of retained eigenfaces.
    pub fn components(&self) -> usize {
        self.pca.len()
    }

    /// Number of enrolled gallery entries.
    pub fn gallery_len(&self) -> usize {
        self.gallery.len()
    }

    /// Returns gallery labels ranked by ascending subspace distance to the
    /// probe (best match first). Duplicate labels are collapsed to their
    /// best rank.
    pub fn rank(&self, probe: &GrayImage) -> Vec<u32> {
        let p = self.pca.project(&to_vector(probe));
        let mut scored: Vec<(f64, u32)> = self
            .gallery
            .iter()
            .map(|(label, g)| {
                let d: f64 = g.iter().zip(p.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                (d, *label)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut seen = std::collections::HashSet::new();
        scored
            .into_iter()
            .filter_map(|(_, l)| seen.insert(l).then_some(l))
            .collect()
    }

    /// The rank (1-based) at which `label` appears for this probe, or
    /// `None` if the label is not enrolled.
    pub fn rank_of(&self, probe: &GrayImage, label: u32) -> Option<usize> {
        self.rank(probe)
            .iter()
            .position(|&l| l == label)
            .map(|p| p + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::{render_face, FaceGeometry};
    use puppies_image::{Rect, Rgb, RgbImage};

    fn face_image(geom: &FaceGeometry, skin: Rgb, jitter: u32) -> GrayImage {
        let mut img = RgbImage::filled(64, 64, Rgb::new(70, 80, 100));
        render_face(
            &mut img,
            Rect::new(6 + jitter, 4 + jitter, 48, 56),
            skin,
            geom,
        );
        img.to_gray()
    }

    fn identities() -> Vec<FaceGeometry> {
        vec![
            FaceGeometry {
                eye_spread: 0.16,
                eye_size: 0.055,
                mouth_width: 0.13,
                brow_tilt: -2,
            },
            FaceGeometry {
                eye_spread: 0.20,
                eye_size: 0.07,
                mouth_width: 0.18,
                brow_tilt: 0,
            },
            FaceGeometry {
                eye_spread: 0.25,
                eye_size: 0.085,
                mouth_width: 0.23,
                brow_tilt: 2,
            },
            FaceGeometry {
                eye_spread: 0.22,
                eye_size: 0.06,
                mouth_width: 0.20,
                brow_tilt: 3,
            },
        ]
    }

    fn build_gallery() -> EigenfaceGallery {
        let mut faces = Vec::new();
        for (label, geom) in identities().iter().enumerate() {
            for jitter in 0..3u32 {
                faces.push((
                    label as u32,
                    face_image(geom, Rgb::new(220, 184, 148), jitter),
                ));
            }
        }
        EigenfaceGallery::train(&faces, 8)
    }

    #[test]
    fn recognizes_enrolled_identities() {
        let g = build_gallery();
        assert!(g.components() >= 2);
        for (label, geom) in identities().iter().enumerate() {
            // A new jitter of the same identity.
            let probe = face_image(geom, Rgb::new(220, 184, 148), 3);
            let rank = g.rank_of(&probe, label as u32).unwrap();
            assert!(rank <= 2, "identity {label} ranked {rank}");
        }
    }

    #[test]
    fn rank_list_contains_each_label_once() {
        let g = build_gallery();
        let probe = face_image(&identities()[0], Rgb::new(220, 184, 148), 1);
        let ranks = g.rank(&probe);
        assert_eq!(ranks.len(), identities().len());
        let unique: std::collections::HashSet<_> = ranks.iter().collect();
        assert_eq!(unique.len(), ranks.len());
    }

    #[test]
    fn unknown_label_gives_none() {
        let g = build_gallery();
        let probe = face_image(&identities()[0], Rgb::new(220, 184, 148), 0);
        assert!(g.rank_of(&probe, 999).is_none());
    }

    #[test]
    fn noise_probe_ranks_randomly() {
        // Random noise should not reliably rank identity 0 first.
        let g = build_gallery();
        let noise = GrayImage::from_fn(64, 64, |x, y| {
            ((x.wrapping_mul(2654435761) ^ y.wrapping_mul(40503)) % 256) as u8
        });
        let ranks = g.rank(&noise);
        assert_eq!(ranks.len(), identities().len());
    }

    #[test]
    fn different_sizes_are_normalized() {
        let g = build_gallery();
        let geom = identities()[1];
        let mut img = RgbImage::filled(128, 128, Rgb::new(70, 80, 100));
        render_face(
            &mut img,
            Rect::new(10, 10, 100, 110),
            Rgb::new(220, 184, 148),
            &geom,
        );
        let rank = g.rank_of(&img.to_gray(), 1).unwrap();
        assert!(rank <= 2, "scaled probe ranked {rank}");
    }
}
