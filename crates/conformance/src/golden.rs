//! Golden vectors: byte-exact committed outputs for the codec, the protect
//! pipeline, and every PSP transformation.
//!
//! The committed fixture (`fixture.ppm`) is the single source input; every
//! other file under the golden directory is a deterministic function of it
//! plus a fixed owner seed. `check` re-derives each output and compares
//! byte-for-byte, rendering a hex diff on mismatch; `bless` rewrites the
//! directory plus `MANIFEST.txt` (name, length, FNV-1a fingerprint per
//! vector — the hash is for readable review diffs, the byte comparison is
//! authoritative).
//!
//! Determinism caveat: pixel-domain vectors (scale, gaussian) go through
//! `f32` resampling whose transcendental kernels (`exp`) come from the
//! platform libm, so golden vectors are pinned to the reference platform
//! (linux x86_64, the CI runner). On another platform, regenerate with
//! `--bless` rather than chasing last-ulp differences.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use puppies_core::{protect, OwnerKey, PerturbProfile, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::io::{read_ppm, write_ppm};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::{FilterOp, ScaleFilter, Transformation};

use crate::report::{fnv64, ByteDiff, Report};

/// Owner seed for every golden protect vector. Changing it invalidates the
/// committed vectors, so it is part of the conformance contract.
pub const GOLDEN_SEED: [u8; 32] = [42u8; 32];
/// Image id used for key derivation in the golden protect vectors.
pub const GOLDEN_IMAGE_ID: u64 = 7;
/// ROI used by the golden protect/transform vectors (block-aligned,
/// interior).
pub const GOLDEN_ROI: Rect = Rect::new(16, 8, 32, 24);

/// The procedural fixture: 64×48 mid-range texture (the shadow path is
/// documented to degrade at the gamut boundary, so the fixture avoids it).
pub fn fixture_image() -> RgbImage {
    RgbImage::from_fn(64, 48, |x, y| {
        Rgb::new(
            (64 + (x * 5 + y * 2) % 128) as u8,
            (64 + (x * 2 + y * 4) % 128) as u8,
            (64 + (x + y * 3) % 128) as u8,
        )
    })
}

fn ppm_bytes(img: &RgbImage) -> Vec<u8> {
    let mut out = Vec::new();
    write_ppm(img, &mut out).expect("ppm to Vec cannot fail");
    out
}

fn protect_vector(img: &RgbImage, opts: &ProtectOptions) -> (Vec<u8>, Vec<u8>) {
    let key = OwnerKey::from_seed(GOLDEN_SEED);
    let protected = protect(img, &[GOLDEN_ROI], &key, opts).expect("golden protect");
    let params = protected.params.to_bytes();
    (protected.bytes, params)
}

/// Derives every golden vector from the fixture. Returns `(name, bytes)`
/// pairs in manifest order.
pub fn derive_vectors(img: &RgbImage) -> Vec<(String, Vec<u8>)> {
    let mut v: Vec<(String, Vec<u8>)> = Vec::new();
    v.push(("fixture.ppm".into(), ppm_bytes(img)));

    // Codec: quality sweep with optimized tables, plus the Annex K path.
    for q in [50u8, 75, 90] {
        let bytes = puppies_jpeg::encode_rgb(img, q).expect("encode");
        v.push((format!("encode_q{q}.jpg"), bytes));
    }
    let std_bytes = CoeffImage::from_rgb(img, 75)
        .encode(&EncodeOptions::standard())
        .expect("encode standard");
    v.push(("encode_q75_standard.jpg".into(), std_bytes));

    // Protect: one vector per scheme at Medium, plus the transform-friendly
    // profile; params files ride along so wire-format drift is caught too.
    let schemes = [
        ("n", Scheme::Naive),
        ("b", Scheme::Base),
        ("c", Scheme::Compression),
        ("z", Scheme::Zero),
    ];
    for (tag, scheme) in schemes {
        let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium).with_image_id(GOLDEN_IMAGE_ID);
        let (jpg, pup) = protect_vector(img, &opts);
        v.push((format!("protect_{tag}_medium.jpg"), jpg));
        v.push((format!("protect_{tag}_medium.pup"), pup));
    }
    let tf_opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly())
        .with_image_id(GOLDEN_IMAGE_ID);
    let (jpg, pup) = protect_vector(img, &tf_opts);
    v.push(("protect_tf.jpg".into(), jpg));
    v.push(("protect_tf.pup".into(), pup));

    // PSP transformations applied to the Zero-scheme protected image:
    // coefficient-domain ops re-encode losslessly; pixel-domain ops decode,
    // transform, and re-encode at q75 (what a real PSP does).
    let z_opts =
        ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium).with_image_id(GOLDEN_IMAGE_ID);
    let (z_jpg, _) = protect_vector(img, &z_opts);
    let z_coeff = CoeffImage::decode(&z_jpg).expect("decode protected");
    let coeff_ts: [(&str, Transformation); 7] = [
        ("rot90", Transformation::Rotate90),
        ("rot180", Transformation::Rotate180),
        ("rot270", Transformation::Rotate270),
        ("fliph", Transformation::FlipHorizontal),
        ("flipv", Transformation::FlipVertical),
        ("crop", Transformation::Crop(Rect::new(8, 8, 40, 32))),
        ("recompress_q50", Transformation::Recompress { quality: 50 }),
    ];
    for (tag, t) in coeff_ts {
        let out = t
            .apply_to_coeff(&z_coeff)
            .expect("coeff transform")
            .encode(&EncodeOptions::default())
            .expect("encode transform");
        v.push((format!("t_{tag}.jpg"), out));
    }
    let pixel_ts: [(&str, Transformation); 2] = [
        (
            "scale_half",
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
        ),
        (
            "gaussian",
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.2 }),
        ),
    ];
    let z_rgb = z_coeff.to_rgb();
    for (tag, t) in pixel_ts {
        let out = t.apply_to_rgb(&z_rgb).expect("pixel transform");
        let bytes = puppies_jpeg::encode_rgb(&out, 75).expect("encode transform");
        v.push((format!("t_{tag}.jpg"), bytes));
    }
    v
}

/// Renders `MANIFEST.txt` from derived vectors.
pub fn render_manifest(vectors: &[(String, Vec<u8>)]) -> String {
    let mut out = String::from("# name\tbytes\tfnv64\n");
    for (name, bytes) in vectors {
        let _ = writeln!(out, "{name}\t{}\t{:016x}", bytes.len(), fnv64(bytes));
    }
    out
}

/// Checks every golden vector under `dir` against freshly derived outputs.
///
/// The fixture is read from disk (so PPM parser drift is visible) and also
/// compared against the procedural image. Missing files fail with a hint
/// to run `--bless`.
pub fn check(dir: &Path) -> Report {
    let mut report = Report::new();
    let fixture_path = dir.join("fixture.ppm");
    let img = match fs::read(&fixture_path) {
        Ok(bytes) => match read_ppm(&bytes[..]) {
            Ok(img) => img,
            Err(e) => {
                report.fail("golden/fixture.ppm", format!("unreadable fixture: {e}"));
                return report;
            }
        },
        Err(e) => {
            report.fail(
                "golden/fixture.ppm",
                format!("{e}: missing golden directory? regenerate with --bless"),
            );
            return report;
        }
    };
    if img != fixture_image() {
        report.fail(
            "golden/fixture.ppm",
            "committed fixture no longer matches the procedural fixture image",
        );
        return report;
    }

    let vectors = derive_vectors(&img);
    for (name, actual) in &vectors {
        let case = format!("golden/{name}");
        match fs::read(dir.join(name)) {
            Ok(expected) => match ByteDiff::compare(&expected, actual) {
                None => report.pass(&case, Some(format!("{} bytes", actual.len()))),
                Some(diff) => report.fail(&case, diff.render(&expected, actual)),
            },
            Err(e) => report.fail(&case, format!("{e}: regenerate with --bless")),
        }
    }

    let manifest = render_manifest(&vectors);
    match fs::read_to_string(dir.join("MANIFEST.txt")) {
        Ok(expected) if expected == manifest => {
            report.pass("golden/MANIFEST.txt", None);
        }
        Ok(expected) => report.fail(
            "golden/MANIFEST.txt",
            ByteDiff::compare(expected.as_bytes(), manifest.as_bytes())
                .map(|d| d.render(expected.as_bytes(), manifest.as_bytes()))
                .unwrap_or_else(|| "manifest mismatch".into()),
        ),
        Err(e) => report.fail(
            "golden/MANIFEST.txt",
            format!("{e}: regenerate with --bless"),
        ),
    }
    report
}

/// Regenerates every golden vector under `dir`, reporting which files
/// changed, and rewrites `MANIFEST.txt`.
///
/// # Errors
/// Returns the first filesystem error.
pub fn bless(dir: &Path) -> std::io::Result<Report> {
    let mut report = Report::new();
    fs::create_dir_all(dir)?;
    let img = fixture_image();
    let vectors = derive_vectors(&img);
    for (name, bytes) in &vectors {
        let path = dir.join(name);
        let changed = match fs::read(&path) {
            Ok(old) => old != *bytes,
            Err(_) => true,
        };
        fs::write(&path, bytes)?;
        let detail = if changed { "updated" } else { "unchanged" };
        report.blessed(format!("golden/{name}"), Some(detail.into()));
    }
    fs::write(dir.join("MANIFEST.txt"), render_manifest(&vectors))?;
    report.blessed("golden/MANIFEST.txt", None);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_vectors_is_deterministic() {
        let img = fixture_image();
        let a = derive_vectors(&img);
        let b = derive_vectors(&img);
        assert_eq!(a, b);
        // Every expected family is present.
        let names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        for needle in [
            "fixture.ppm",
            "encode_q75.jpg",
            "encode_q75_standard.jpg",
            "protect_z_medium.jpg",
            "protect_z_medium.pup",
            "protect_tf.pup",
            "t_rot90.jpg",
            "t_recompress_q50.jpg",
            "t_scale_half.jpg",
            "t_gaussian.jpg",
        ] {
            assert!(names.contains(&needle), "missing {needle}");
        }
    }

    #[test]
    fn bless_then_check_round_trips_and_detects_tampering() {
        let dir = std::env::temp_dir().join(format!("puppies-golden-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        bless(&dir).unwrap();
        let report = check(&dir);
        assert!(report.is_ok(), "{}", report.render());

        // Flip one byte inside a codec vector: the suite must fail with a
        // readable diff naming the offset.
        let victim = dir.join("encode_q75.jpg");
        let mut bytes = fs::read(&victim).unwrap();
        let off = bytes.len() / 2;
        bytes[off] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();
        let report = check(&dir);
        assert!(!report.is_ok());
        let text = report.render();
        assert!(
            text.contains("golden/encode_q75.jpg") && text.contains("first mismatch at byte"),
            "diff report not readable:\n{text}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
