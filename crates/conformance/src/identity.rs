//! Perceptual-identity conformance: the signature behind the PSP's
//! dedup fast paths must be *stable* where the paper needs it stable and
//! *blind* where privacy demands blindness.
//!
//! Three properties are machine-checked:
//!
//! * **recompression invariance** — requantizing a protected JPEG at
//!   quality 25/50/75/90 produces byte-distinct files whose signatures
//!   stay within [`NEAR_DUP_DISTANCE`] of the original's. This is what
//!   lets recompressed re-uploads share the family's cached transforms.
//! * **geometric sensitivity** — rotating, flipping, or cropping the
//!   image moves the signature *beyond* the near-duplicate radius
//!   (different pictures must not collide), while a double flip — a true
//!   identity in the coefficient domain — restores it.
//! * **private-ROI blindness** — two images identical outside the
//!   private region but arbitrarily different inside it hash to
//!   **bit-identical** signatures after protection. The signature reads
//!   public coefficients plus a DC envelope that substitutes the public
//!   mean for every masked block, so nothing inside the ROI can move a
//!   bit. A signature that shifted with private content would be a
//!   leakage channel (§VI of the paper); equality here is exact, not
//!   threshold-based.

use puppies_core::{protect, OwnerKey, ProtectOptions, PublicParams};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_psp::{coeff_signature, hamming, NEAR_DUP_DISTANCE};
use puppies_transform::Transformation;

use crate::report::Report;

const ROI: Rect = Rect::new(24, 16, 32, 32);

/// A textured, left-right asymmetric image: flips and rotations must
/// actually move the DC envelope, so the fixture cannot be symmetric.
fn base_image(seed: u32, private: impl Fn(u32, u32) -> Rgb) -> RgbImage {
    RgbImage::from_fn(96, 72, |x, y| {
        if ROI.contains(x, y) {
            private(x, y)
        } else {
            let v = x
                .wrapping_mul(7 + seed)
                .wrapping_add(y.wrapping_mul(23))
                .wrapping_add(x * x / 13);
            Rgb::new(
                (v.wrapping_mul(2_654_435_761) >> 24) as u8,
                ((x * 3 + y + seed * 5) % 251) as u8,
                ((x ^ (y * 2)).wrapping_add(seed) & 0xFF) as u8,
            )
        }
    })
}

fn default_private(x: u32, y: u32) -> Rgb {
    Rgb::new((x * 11 % 256) as u8, (y * 13 % 256) as u8, 128)
}

/// Protects `img` and returns (jpeg bytes, params bytes).
fn protected(img: &RgbImage, seed: u8) -> (Vec<u8>, Vec<u8>) {
    let key = OwnerKey::from_seed([seed.max(1); 32]);
    // Quality 85: off the sweep below, so every recompression in
    // {25, 50, 75, 90} actually changes bytes.
    let p = protect(
        img,
        &[ROI],
        &key,
        &ProtectOptions::default().with_quality(85),
    )
    .expect("identity fixture protects");
    (p.bytes, p.params.to_bytes())
}

/// The signature exactly as the PSP computes it at upload: decode, mask
/// the params' ROIs, hash the public DC envelope.
fn sig_of(bytes: &[u8], params_bytes: &[u8]) -> Result<u64, String> {
    let coeff = CoeffImage::decode(bytes).map_err(|e| format!("decode: {e}"))?;
    let rois: Vec<Rect> = PublicParams::from_bytes(params_bytes)
        .map_err(|e| format!("params: {e}"))?
        .rois
        .iter()
        .map(|r| r.rect)
        .collect();
    Ok(coeff_signature(&coeff, &rois))
}

fn recompress(bytes: &[u8], quality: u8) -> Vec<u8> {
    let mut coeff = CoeffImage::decode(bytes).expect("recompress decode");
    coeff.requantize(quality);
    coeff
        .encode(&EncodeOptions::default())
        .expect("recompress encode")
}

fn transformed(bytes: &[u8], t: &Transformation) -> Vec<u8> {
    let coeff = CoeffImage::decode(bytes).expect("transform decode");
    t.apply_to_coeff(&coeff)
        .expect("coeff transform")
        .encode(&EncodeOptions::default())
        .expect("transform encode")
}

/// The perceptual-identity suite (see module docs).
pub fn run_identity() -> Report {
    let _span = puppies_obs::span("conformance.identity.run", "conformance");
    let mut report = Report::new();
    let (bytes, params) = protected(&base_image(1, default_private), 7);
    let base_sig = match sig_of(&bytes, &params) {
        Ok(s) => s,
        Err(e) => {
            report.fail("identity/base", format!("base signature failed: {e}"));
            return report;
        }
    };

    // Determinism: recomputing from the same bytes is bit-stable.
    {
        let case = "identity/determinism";
        match sig_of(&bytes, &params) {
            Ok(again) if again == base_sig => {
                report.pass(case, Some(format!("sig {base_sig:016x}")))
            }
            Ok(again) => report.fail(
                case,
                format!("recompute moved the signature: {base_sig:016x} -> {again:016x}"),
            ),
            Err(e) => report.fail(case, e),
        }
    }

    // Recompression invariance across the quality sweep.
    for q in [25u8, 50, 75, 90] {
        let case = format!("identity/recompress/q{q}");
        let copy = recompress(&bytes, q);
        if copy == bytes {
            report.fail(case, "recompressed copy is not byte-distinct");
            continue;
        }
        match sig_of(&copy, &params) {
            Ok(sig) => {
                let d = hamming(base_sig, sig);
                if d <= NEAR_DUP_DISTANCE {
                    report.pass(case, Some(format!("distance {d} <= {NEAR_DUP_DISTANCE}")));
                } else {
                    report.fail(
                        case,
                        format!("distance {d} > {NEAR_DUP_DISTANCE}: recompression broke identity"),
                    );
                }
            }
            Err(e) => report.fail(case, e),
        }
    }

    // Geometry moves the signature out of the family.
    for (name, t) in [
        ("rot90", Transformation::Rotate90),
        ("rot180", Transformation::Rotate180),
        ("fliph", Transformation::FlipHorizontal),
        ("crop", Transformation::Crop(Rect::new(0, 0, 64, 48))),
    ] {
        let case = format!("identity/distinct/{name}");
        match sig_of(&transformed(&bytes, &t), &params) {
            Ok(sig) => {
                let d = hamming(base_sig, sig);
                if d > NEAR_DUP_DISTANCE {
                    report.pass(case, Some(format!("distance {d} > {NEAR_DUP_DISTANCE}")));
                } else {
                    report.fail(
                        case,
                        format!(
                            "distance {d} <= {NEAR_DUP_DISTANCE}: {name} looks like a duplicate"
                        ),
                    );
                }
            }
            Err(e) => report.fail(case, e),
        }
    }

    // A coefficient-domain involution restores it exactly.
    {
        let case = "identity/flip-twice-restores";
        let back = transformed(
            &transformed(&bytes, &Transformation::FlipHorizontal),
            &Transformation::FlipHorizontal,
        );
        match sig_of(&back, &params) {
            Ok(sig) => {
                let d = hamming(base_sig, sig);
                if d <= NEAR_DUP_DISTANCE {
                    report.pass(case, Some(format!("distance {d}")));
                } else {
                    report.fail(case, format!("double flip moved the signature by {d}"));
                }
            }
            Err(e) => report.fail(case, e),
        }
    }

    // Private-ROI blindness: exact equality across arbitrary private
    // content, over several public textures.
    for seed in 1u32..=3 {
        let case = format!("identity/roi-blind/seed{seed}");
        let privates: [&dyn Fn(u32, u32) -> Rgb; 3] = [
            &|_, _| Rgb::new(0, 0, 0),
            &|x, y| Rgb::new((x * y % 256) as u8, 255, (x + y) as u8),
            &|x, y| Rgb::new((255 - x) as u8, (y * 31 % 256) as u8, (x * 7 % 256) as u8),
        ];
        let mut sigs = Vec::new();
        let mut err = None;
        for private in privates {
            let (b, p) = protected(&base_image(seed, private), seed as u8);
            match sig_of(&b, &p) {
                Ok(s) => sigs.push(s),
                Err(e) => err = Some(e),
            }
        }
        if let Some(e) = err {
            report.fail(case, e);
        } else if sigs.windows(2).all(|w| w[0] == w[1]) {
            report.pass(
                case,
                Some(format!(
                    "{} private variants, one signature {:016x}",
                    sigs.len(),
                    sigs[0]
                )),
            );
        } else {
            report.fail(
                case,
                format!("private content moved the signature: {sigs:016x?} — leakage channel"),
            );
        }
    }

    report
}
