//! Multi-backend cluster conformance: the k-of-n Shamir layer must be
//! *unobservable* except in trust assumptions.
//!
//! For every (n, k) shape in the grid and every perturbation scheme:
//!
//! * **every** k-subset of backends reconstructs the protected JPEG and
//!   the transported grant **byte-exactly**;
//! * recovery through the reconstructed matrices is pixel-identical to
//!   single-PSP recovery with the same grant (coefficient-exact recovery
//!   composed with the same decoder ⇒ equal images);
//! * every (k−1)-subset fails loudly — no partial reconstruction;
//! * a corrupting backend inside a k-subset is detected (integrity tag)
//!   and turns into quorum failure instead of silent garbage;
//! * reconstruction still round-trips byte-exactly after a replace +
//!   re-share cycle (fresh randomness, bumped generation).

use puppies_core::{protect, OwnerKey, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::cluster::fault::Fault;
use puppies_psp::cluster::{ClusterConfig, ShardedPspCluster};
use puppies_psp::{PspConfig, PspServer, Receiver};

use crate::report::Report;

/// The (n, k) shapes the oracle sweeps: minimum redundancy (2,2), one
/// spare (3,2), and the paper-typical majority quorum (5,3).
const SHAPES: [(usize, usize); 3] = [(2, 2), (3, 2), (5, 3)];

fn schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("naive", Scheme::Naive),
        ("base", Scheme::Base),
        ("compression", Scheme::Compression),
        ("zero", Scheme::Zero),
    ]
}

fn fixture_image(seed: u32) -> RgbImage {
    RgbImage::from_fn(64, 48, |x, y| {
        Rgb::new(
            (30 + (x * 4 + y * 2 + seed) % 200) as u8,
            (40 + (x * 2 + y * 5 + seed * 3) % 190) as u8,
            (50 + (x * 3 + y + seed * 11) % 180) as u8,
        )
    })
}

/// All k-subsets of `0..n` (n ≤ 5 in the grid, so at most C(5,3) = 10).
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// The cluster oracle (see module docs).
pub fn run_cluster() -> Report {
    let _span = puppies_obs::span("conformance.cluster.run", "conformance");
    let mut report = Report::new();

    for &(n, k) in &SHAPES {
        for (scheme_name, scheme) in schemes() {
            let tag = format!("cluster/{n}of{k}/{scheme_name}");
            let key = OwnerKey::from_seed([n as u8 * 16 + k as u8; 32]);
            let img = fixture_image(n as u32 * 100 + k as u32);
            let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium).with_image_id(1);
            let protected = match protect(&img, &[Rect::new(16, 8, 24, 24)], &key, &opts) {
                Ok(p) => p,
                Err(e) => {
                    report.fail(format!("{tag}/protect"), format!("protect failed: {e}"));
                    continue;
                }
            };
            let grant = key.grant_rois(1, &[0]);

            let mut cfg = ClusterConfig::new(n, k).with_seed([0xD1; 32]);
            cfg.backend = PspConfig::uncached();
            let cluster = ShardedPspCluster::new(cfg).expect("grid shapes are valid");
            let id = match cluster.upload(
                protected.bytes.clone(),
                protected.params.to_bytes(),
                &grant,
            ) {
                Ok(id) => id,
                Err(e) => {
                    report.fail(format!("{tag}/upload"), format!("upload failed: {e}"));
                    continue;
                }
            };

            // Oracle 1: every k-subset reconstructs byte-exactly.
            let mut subsets_ok = true;
            for subset in k_subsets(n, k) {
                let case = format!("{tag}/subset-{subset:?}");
                match cluster.reconstruct_from(id, &subset) {
                    Ok((g, bytes)) => {
                        if bytes != protected.bytes {
                            subsets_ok = false;
                            report.fail(
                                case,
                                format!(
                                    "bytes diverged: {} vs {} expected",
                                    bytes.len(),
                                    protected.bytes.len()
                                ),
                            );
                        } else if g.to_entries() != grant.to_entries() {
                            subsets_ok = false;
                            report.fail(case, "reconstructed grant diverged".to_string());
                        }
                    }
                    Err(e) => {
                        subsets_ok = false;
                        report.fail(case, format!("reconstruction failed: {e}"));
                    }
                }
            }
            if subsets_ok {
                report.pass(
                    format!("{tag}/all-k-subsets"),
                    Some(format!("{} subsets byte-exact", k_subsets(n, k).len())),
                );
            }

            // Oracle 2: recovery parity vs a single PSP with the same
            // grant (pixel-identical, both paths coefficient-exact).
            let single = PspServer::with_config(PspConfig::uncached());
            let sid = single
                .upload(protected.bytes.clone(), protected.params.to_bytes())
                .expect("single upload");
            let via_single = Receiver::with_grant(grant.clone()).fetch(&single, sid);
            let via_cluster = cluster.fetch(id);
            match (via_cluster, via_single) {
                (Ok(c), Ok(s)) if c == s => {
                    report.pass(format!("{tag}/recovery-parity"), None);
                }
                (Ok(_), Ok(_)) => {
                    report.fail(
                        format!("{tag}/recovery-parity"),
                        "cluster recovery != single-PSP recovery".to_string(),
                    );
                }
                (c, s) => {
                    report.fail(
                        format!("{tag}/recovery-parity"),
                        format!(
                            "fetch failed: cluster {:?}, single {:?}",
                            c.err().map(|e| e.to_string()),
                            s.err().map(|e| e.to_string())
                        ),
                    );
                }
            }

            // Oracle 3: k−1 shares must fail loudly.
            if k > 1 {
                let short: Vec<usize> = (0..k - 1).collect();
                match cluster.reconstruct_from(id, &short) {
                    Err(_) => report.pass(format!("{tag}/k-minus-1-fails"), None),
                    Ok(_) => report.fail(
                        format!("{tag}/k-minus-1-fails"),
                        "reconstruction succeeded below threshold".to_string(),
                    ),
                }
            }

            // Oracle 4: a corrupting backend inside an exactly-k subset
            // is rejected by the share tag → quorum failure, not junk.
            {
                let subset: Vec<usize> = (0..k).collect();
                cluster.fault(0, Fault::Corrupt);
                let out = cluster.reconstruct_from(id, &subset);
                cluster.clear_fault(0);
                match out {
                    Err(_) => report.pass(format!("{tag}/corrupt-share-detected"), None),
                    Ok((_, bytes)) => {
                        if bytes == protected.bytes {
                            report.fail(
                                format!("{tag}/corrupt-share-detected"),
                                "corrupted share went unnoticed".to_string(),
                            );
                        } else {
                            report.fail(
                                format!("{tag}/corrupt-share-detected"),
                                "corrupted share produced silent garbage".to_string(),
                            );
                        }
                    }
                }
            }

            // Oracle 5: replace + rebalance keeps the round-trip exact
            // under fresh share randomness.
            if n > k {
                let case = format!("{tag}/rebalance-roundtrip");
                cluster.replace_backend(n - 1).expect("valid index");
                if let Err(e) = cluster.rebalance(id) {
                    report.fail(case, format!("rebalance failed: {e}"));
                } else {
                    match cluster.reconstruct(id) {
                        Ok((_, bytes)) if bytes == protected.bytes => report.pass(case, None),
                        Ok(_) => report.fail(case, "bytes diverged after rebalance".to_string()),
                        Err(e) => report.fail(case, format!("reconstruction failed: {e}")),
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_subset_enumeration() {
        assert_eq!(k_subsets(5, 3).len(), 10);
        assert_eq!(k_subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(k_subsets(2, 2), vec![vec![0, 1]]);
    }

    #[test]
    fn cluster_suite_is_green() {
        let report = run_cluster();
        assert!(
            report.is_ok(),
            "cluster conformance failed:\n{:#?}",
            report.failures()
        );
    }
}
