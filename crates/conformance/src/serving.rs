//! Serving-path conformance: the PSP's transform-result cache must be
//! *unobservable* except in speed.
//!
//! The cache-coherence oracle checks, for every transformation family the
//! store serves:
//!
//! * a cached repeat of `download_transformed` returns bytes and params
//!   **byte-identical** to the freshly computed first answer;
//! * a cache-enabled server and a cache-disabled server produce identical
//!   answers for the same stored content;
//! * identical content uploaded under two ids shares one cache entry and
//!   serves identical bytes (content addressing);
//! * in-place `transform` stores the same bytes with caching on or off;
//! * a byte-starved cache that is forced to evict still serves correct
//!   bytes (eviction can cost speed, never correctness);
//! * every coefficient-eligible transformation is *reported* as served
//!   `coeff-domain` and its bytes are identical to an independently
//!   computed coefficient-domain replica, while genuinely pixel-domain
//!   geometry matches the pixel-fallback replica — a silent decode to
//!   pixels (or a pixel path masquerading as coeff-domain) cannot pass,
//!   because the two replicas quantize differently;
//! * the pixel-domain fallback re-encodes at the *source's* quality
//!   (recovered from its quantization tables), not a hardcoded default.

use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_psp::{PspConfig, PspServer, ServedPath};
use puppies_transform::{FilterOp, ScaleFilter, Transformation};

use crate::report::Report;

fn fixture(seed: u8, quality: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(64, 48, |x, y| {
        Rgb::new(
            (32 + (x * 5 + y * 2 + seed as u32) % 192) as u8,
            (32 + (x * 2 + y * 4) % 192) as u8,
            (32 + (x + y * 3 + seed as u32 * 7) % 192) as u8,
        )
    });
    let key = OwnerKey::from_seed([seed; 32]);
    let protected = protect(
        &img,
        &[Rect::new(16, 8, 24, 24)],
        &key,
        &ProtectOptions::default().with_quality(quality),
    )
    .expect("fixture protects");
    (protected.bytes, protected.params.to_bytes())
}

fn serve_cases() -> Vec<(&'static str, Transformation)> {
    vec![
        ("rot90", Transformation::Rotate90),
        ("rot180", Transformation::Rotate180),
        ("fliph", Transformation::FlipHorizontal),
        (
            "crop-aligned",
            Transformation::Crop(Rect::new(8, 8, 32, 24)),
        ),
        ("recompress", Transformation::Recompress { quality: 40 }),
        (
            "scale",
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
        ),
        (
            "gaussian",
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.2 }),
        ),
        (
            "overlay",
            Transformation::Overlay {
                rect: Rect::new(0, 0, 16, 16),
                color: Rgb::new(255, 255, 255),
                alpha: 0.6,
            },
        ),
    ]
}

/// The cache-coherence oracle (see module docs).
pub fn run_serving() -> Report {
    let _span = puppies_obs::span("conformance.serving.run", "conformance");
    let mut report = Report::new();
    let (bytes, params) = fixture(11, 75);

    // Per-transformation coherence: repeat == fresh == uncached.
    for (name, t) in serve_cases() {
        let case = format!("serving/coherence/{name}");
        let cached = PspServer::new();
        let uncached = PspServer::with_config(PspConfig::uncached());
        let id_c = cached
            .upload(bytes.clone(), params.clone())
            .expect("upload");
        let id_u = uncached
            .upload(bytes.clone(), params.clone())
            .expect("upload");
        let fresh = match cached.download_transformed(id_c, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("fresh serve failed: {e}"));
                continue;
            }
        };
        let repeat = match cached.download_transformed(id_c, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("repeat serve failed: {e}"));
                continue;
            }
        };
        let reference = match uncached.download_transformed(id_u, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("uncached serve failed: {e}"));
                continue;
            }
        };
        if cached.cache_stats().hits == 0 {
            report.fail(case, "repeat request did not hit the cache");
        } else if repeat.0 != fresh.0 || repeat.1 != fresh.1 {
            report.fail(case, "cached repeat diverged from fresh result");
        } else if reference.0 != fresh.0 || reference.1 != fresh.1 {
            report.fail(case, "cache-enabled result diverged from cache-disabled");
        } else {
            report.pass(
                case,
                Some(format!("{} bytes byte-identical", fresh.0.len())),
            );
        }
    }

    // Serve-path parity: the reported path must match eligibility, and
    // the served bytes must equal the independent replica of that path.
    {
        let coeff = CoeffImage::decode(&bytes).expect("fixture decodes");
        let (w, h) = (coeff.width(), coeff.height());
        for (name, t) in serve_cases() {
            let case = format!("serving/served-path/{name}");
            let server = PspServer::new();
            let id = server
                .upload(bytes.clone(), params.clone())
                .expect("upload");
            let ((served_bytes, _), _, served) = match server.download_transformed_traced(id, &t) {
                Ok(r) => r,
                Err(e) => {
                    report.fail(case, format!("serve failed: {e}"));
                    continue;
                }
            };
            let eligible = t.is_coeff_domain(w, h);
            let expected = if eligible {
                ServedPath::CoeffDomain
            } else {
                ServedPath::PixelFallback
            };
            if served != expected {
                report.fail(
                    case,
                    format!(
                        "expected {} (eligible={eligible}), server reported {}",
                        expected.as_str(),
                        served.as_str()
                    ),
                );
                continue;
            }
            let replica = if eligible {
                t.apply_to_coeff(&coeff)
                    .expect("coeff replica")
                    .encode(&EncodeOptions::default())
                    .expect("replica encode")
            } else {
                let rgb = coeff.to_rgb();
                puppies_jpeg::encode_rgb(
                    &t.apply_to_rgb(&rgb).expect("pixel replica"),
                    coeff.quality_estimate(),
                )
                .expect("replica encode")
            };
            if served_bytes.as_ref() != replica.as_slice() {
                report.fail(
                    case,
                    format!("served bytes diverge from the {} replica", served.as_str()),
                );
            } else {
                report.pass(
                    case,
                    Some(format!("{} ({} bytes)", served.as_str(), replica.len())),
                );
            }
        }
    }

    // Content addressing: same content under two ids shares one entry.
    {
        let case = "serving/content-address/two-ids";
        let server = PspServer::new();
        let a = server
            .upload(bytes.clone(), params.clone())
            .expect("upload");
        let b = server
            .upload(bytes.clone(), params.clone())
            .expect("upload");
        let t = Transformation::Rotate180;
        let ra = server.download_transformed(a, &t).expect("serve a");
        let rb = server.download_transformed(b, &t).expect("serve b");
        let stats = server.cache_stats();
        if ra.0 != rb.0 || ra.1 != rb.1 {
            report.fail(case, "identical content served different bytes");
        } else if stats.hits != 1 || stats.misses != 1 {
            report.fail(
                case,
                format!(
                    "expected one miss then one content-addressed hit, got {} hits / {} misses",
                    stats.hits, stats.misses
                ),
            );
        } else {
            report.pass(case, None);
        }
    }

    // In-place transform: stored result identical with cache on or off.
    {
        let case = "serving/in-place/cache-on-vs-off";
        let on = PspServer::new();
        let off = PspServer::with_config(PspConfig::uncached());
        let id_on = on.upload(bytes.clone(), params.clone()).expect("upload");
        let id_off = off.upload(bytes.clone(), params.clone()).expect("upload");
        let t = Transformation::Scale {
            width: 32,
            height: 24,
            filter: ScaleFilter::Bilinear,
        };
        on.transform(id_on, &t).expect("transform");
        off.transform(id_off, &t).expect("transform");
        let same_bytes = on.download(id_on).expect("dl") == off.download(id_off).expect("dl");
        let same_params =
            on.download_params(id_on).expect("dl") == off.download_params(id_off).expect("dl");
        if same_bytes && same_params {
            report.pass(case, None);
        } else {
            report.fail(case, "in-place transform results depend on caching");
        }
    }

    // Eviction under a starved budget never corrupts answers.
    {
        let case = "serving/eviction/starved-budget";
        let tiny = PspServer::with_config(PspConfig {
            cache_budget_bytes: 8 * 1024,
            ..PspConfig::default()
        });
        let reference = PspServer::with_config(PspConfig::uncached());
        let id_t = tiny.upload(bytes.clone(), params.clone()).expect("upload");
        let id_r = reference
            .upload(bytes.clone(), params.clone())
            .expect("upload");
        let ts = serve_cases();
        let mut bad = None;
        for round in 0..3 {
            for (name, t) in &ts {
                let a = tiny.download_transformed(id_t, t).expect("tiny serve");
                let b = reference
                    .download_transformed(id_r, t)
                    .expect("reference serve");
                if a.0 != b.0 || a.1 != b.1 {
                    bad = Some(format!("round {round}: {name} diverged"));
                }
            }
        }
        let stats = tiny.cache_stats();
        if let Some(diag) = bad {
            report.fail(case, diag);
        } else if stats.evictions == 0 {
            report.fail(
                case,
                format!(
                    "budget {} never evicted ({} resident bytes) — oracle not exercising eviction",
                    stats.capacity_bytes, stats.bytes
                ),
            );
        } else {
            report.pass(
                case,
                Some(format!("{} evictions, answers stable", stats.evictions)),
            );
        }
    }

    // Pixel-fallback re-encode quality tracks the source.
    for source_q in [60u8, 90] {
        let case = format!("serving/quality-derivation/q{source_q}");
        let (qbytes, qparams) = fixture(23, source_q);
        let server = PspServer::new();
        let id = server.upload(qbytes, qparams).expect("upload");
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 24,
                    filter: ScaleFilter::Bilinear,
                },
            )
            .expect("pixel-path transform");
        let stored = CoeffImage::decode(&server.download(id).expect("dl")).expect("decode");
        let got = stored.quality_estimate();
        if got == source_q {
            report.pass(case, None);
        } else {
            report.fail(
                case,
                format!("source quality {source_q}, re-encoded at {got}"),
            );
        }
    }

    report
}
