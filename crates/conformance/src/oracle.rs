//! Recovery oracles: the paper's central claim as an executable matrix.
//!
//! For every transformation in `puppies-transform` × every ROI shape ×
//! every key/params setting, assert
//! `recover(transform(protect(img))) == transform(img)`:
//!
//! * **coefficient-exact** for the jpegtran-style lossless path (aligned
//!   crop, 90°·k rotations, flips) — Lemma III.1 plus §IV-C block
//!   permutation commutativity claims exactness, so the oracle is
//!   pixel-for-pixel equality;
//! * **PSNR-bounded** where the paper only claims approximate recovery:
//!   recompression (requantization error) and the pixel-domain shadow path
//!   (scale/filter under the transform-friendly profile, §IV-C / Fig. 16);
//! * **documented skips** where the repo documents no guarantee: pixel-domain
//!   recovery under full-range profiles is clamping-limited (see
//!   `shadow::full_range_profile_shadow_is_limited_by_clamping`), so those
//!   combinations run as smoke tests (must not error) but assert no bound;
//! * **clean rejection** for Overlay, which has no per-plane linear form —
//!   `recover_transformed` must return an error, not garbage or a panic.
//!
//! The settings axis doubles as the scheme/embedding ablation: all four
//! schemes (PuPPIeS-N/B/C/Z) appear, plus the transform-friendly profile
//! and a Standard-Huffman (Annex K embedding) variant.

use puppies_core::shadow::recover_transformed;
use puppies_core::{protect, OwnerKey, PerturbProfile, PrivacyLevel, ProtectOptions, Scheme};
use puppies_image::metrics::psnr_rgb;
use puppies_image::{Rect, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions, HuffmanMode};
use puppies_transform::{FilterOp, ScaleFilter, Transformation};

use crate::golden::fixture_image;
use crate::report::Report;

/// Quality at which the simulated PSP re-encodes pixel-domain outputs.
/// High quality keeps the re-encode loss small relative to the shadow
/// recovery gain; a real PSP picks its own value.
const PSP_REENCODE_QUALITY: u8 = 90;

/// One key/params setting in the matrix.
pub struct Setting {
    /// Stable name used in case ids.
    pub name: &'static str,
    /// Owner seed (the key axis of the matrix).
    pub seed: [u8; 32],
    /// Protect options (the params axis).
    pub opts: ProtectOptions,
    /// Whether the pixel-domain shadow path carries a PSNR guarantee for
    /// this setting (only the transform-friendly profile does).
    pub pixel_domain_bounded: bool,
}

/// One named ROI shape set.
pub struct RoiSet {
    /// Stable name used in case ids.
    pub name: &'static str,
    /// Raw rectangles handed to `protect` (aligned by `RoiPlan`).
    pub rects: Vec<Rect>,
}

/// The default 64×48 matrix: every transformation × 4 ROI shapes × 6
/// key/params settings.
pub struct Matrix {
    /// Source image (procedural fixture by default).
    pub image: RgbImage,
    /// ROI shape axis.
    pub roi_sets: Vec<RoiSet>,
    /// Key/params axis.
    pub settings: Vec<Setting>,
    /// Transformation axis.
    pub transformations: Vec<(&'static str, Transformation)>,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix {
            image: fixture_image(),
            roi_sets: default_roi_sets(),
            settings: default_settings(),
            transformations: default_transformations(),
        }
    }
}

/// ROI shapes: a centered region, two disjoint regions, the whole image,
/// and an off-grid rectangle that exercises `RoiPlan` alignment.
pub fn default_roi_sets() -> Vec<RoiSet> {
    vec![
        RoiSet {
            name: "center",
            rects: vec![Rect::new(16, 8, 32, 24)],
        },
        RoiSet {
            name: "disjoint2",
            rects: vec![Rect::new(0, 8, 16, 16), Rect::new(48, 24, 16, 16)],
        },
        RoiSet {
            name: "full",
            rects: vec![Rect::new(0, 0, 64, 48)],
        },
        RoiSet {
            name: "offgrid",
            rects: vec![Rect::new(13, 9, 30, 25)],
        },
    ]
}

/// Key/params settings: all four schemes (the N/B DC-scheme ablation plus
/// C/Z), the transform-friendly profile, and a Standard-Huffman embedding
/// variant.
pub fn default_settings() -> Vec<Setting> {
    vec![
        Setting {
            name: "naive_medium",
            seed: [11u8; 32],
            opts: ProtectOptions::new(Scheme::Naive, PrivacyLevel::Medium).with_image_id(1),
            pixel_domain_bounded: false,
        },
        Setting {
            name: "base_high",
            seed: [9u8; 32],
            opts: ProtectOptions::new(Scheme::Base, PrivacyLevel::High).with_image_id(2),
            pixel_domain_bounded: false,
        },
        Setting {
            name: "comp_low",
            seed: [5u8; 32],
            opts: ProtectOptions::new(Scheme::Compression, PrivacyLevel::Low).with_image_id(3),
            pixel_domain_bounded: false,
        },
        Setting {
            name: "zero_medium",
            seed: [3u8; 32],
            opts: ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium).with_image_id(4),
            pixel_domain_bounded: false,
        },
        Setting {
            name: "zero_medium_stdhuff",
            seed: [3u8; 32],
            opts: ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium)
                .with_image_id(5)
                .with_huffman(HuffmanMode::Standard),
            pixel_domain_bounded: false,
        },
        Setting {
            name: "transform_friendly",
            seed: [3u8; 32],
            opts: ProtectOptions::from_profile(PerturbProfile::transform_friendly())
                .with_image_id(6),
            pixel_domain_bounded: true,
        },
    ]
}

/// Every `Transformation` variant, with two scale filters and three filter
/// ops so each enum arm and each kernel family appears at least once.
pub fn default_transformations() -> Vec<(&'static str, Transformation)> {
    vec![
        ("rot90", Transformation::Rotate90),
        ("rot180", Transformation::Rotate180),
        ("rot270", Transformation::Rotate270),
        ("fliph", Transformation::FlipHorizontal),
        ("flipv", Transformation::FlipVertical),
        ("crop", Transformation::Crop(Rect::new(8, 8, 40, 32))),
        ("recompress_q50", Transformation::Recompress { quality: 50 }),
        (
            "scale_half_bilinear",
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
        ),
        (
            "scale_half_box",
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Box,
            },
        ),
        (
            "filter_gaussian",
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.2 }),
        ),
        ("filter_sharpen", Transformation::Filter(FilterOp::Sharpen)),
        (
            "filter_box3",
            Transformation::Filter(FilterOp::Box { side: 3 }),
        ),
        (
            "overlay",
            Transformation::Overlay {
                rect: Rect::new(16, 8, 32, 24),
                color: puppies_image::Rgb::new(0, 0, 0),
                alpha: 1.0,
            },
        ),
    ]
}

/// PSNR floors (dB) for the approximate-recovery arms. Derived from
/// measured values on the fixture matrix with ≥3 dB of slack; the measured
/// value is recorded in each case's detail line so drift is visible before
/// it fails.
pub mod bounds {
    /// Recompression recovery must beat the unrecovered perturbed image by
    /// this margin (all settings — requantization error is bounded by the
    /// coarser quant step regardless of scheme).
    pub const RECOMPRESS_MARGIN_DB: f64 = 2.0;
    /// Absolute floor for recompression recovery under profiles whose
    /// perturbation survives requantization well: the transform-friendly
    /// bounded ranges, the Compression scheme (small perturbations by
    /// construction), and the Zero scheme (ZInd keeps the sparse support
    /// decodable). Measured 26.4–26.9 dB across the matrix; floor leaves
    /// ~4 dB slack. Naive/Base at full range are margin-only: large
    /// perturbations requantize coarsely and wrap, so only relative
    /// improvement is guaranteed (measured 14.5–21.2 dB).
    pub const RECOMPRESS_ABS_DB: f64 = 22.0;
    /// Pixel-domain shadow recovery (transform-friendly only) must beat
    /// the unrecovered baseline by this margin. Sharpen gets a reduced
    /// margin (see [`shadow_bounds`](super::shadow_bounds)): its overshoot
    /// is clamped at the PSP, a nonlinearity the linear shadow cannot
    /// model (measured margins 2.1–3.7 dB vs ≥5 dB for smoothing kernels).
    pub const SHADOW_MARGIN_DB: f64 = 4.0;
    /// Reduced margin for the overshooting Sharpen kernel.
    pub const SHADOW_SHARPEN_MARGIN_DB: f64 = 1.5;
    /// Absolute floor for shadow recovery with partial-image ROIs (Fig. 16
    /// lands near 30 dB for a 2× downscale; measured minimum 24.3 dB on
    /// the off-grid ROI).
    pub const SHADOW_ABS_DB: f64 = 22.0;
    /// Absolute floor when the ROI spans the whole image: interpolation
    /// error then applies to every block, costing ~3 dB (measured 21.8 dB
    /// for a 2× downscale).
    pub const SHADOW_FULL_ROI_ABS_DB: f64 = 19.0;
}

/// Per-cell PSNR bounds for the pixel-domain shadow path: `(margin, abs)`.
///
/// Sharpen's clamped overshoot is nonlinear, so only a reduced margin is
/// claimed and no absolute floor; a whole-image ROI lowers the absolute
/// floor because interpolation error then covers every block.
fn shadow_bounds(t: &Transformation, full_coverage: bool) -> (f64, f64) {
    if matches!(t, Transformation::Filter(FilterOp::Sharpen)) {
        return (bounds::SHADOW_SHARPEN_MARGIN_DB, 0.0);
    }
    if full_coverage {
        (bounds::SHADOW_MARGIN_DB, bounds::SHADOW_FULL_ROI_ABS_DB)
    } else {
        (bounds::SHADOW_MARGIN_DB, bounds::SHADOW_ABS_DB)
    }
}

/// Runs one (transformation, roi set, setting) cell. Returns the case via
/// the report.
fn run_case(
    report: &mut Report,
    img: &RgbImage,
    t_name: &str,
    t: &Transformation,
    rois: &RoiSet,
    setting: &Setting,
) {
    let case = format!("oracle/{t_name}/{}/{}", rois.name, setting.name);
    let key = OwnerKey::from_seed(setting.seed);
    let grant = key.grant_all();
    let protected = match protect(img, &rois.rects, &key, &setting.opts) {
        Ok(p) => p,
        Err(e) => {
            report.fail(case, format!("protect failed: {e}"));
            return;
        }
    };
    let reference_coeff = CoeffImage::from_rgb(img, setting.opts.quality);

    if t.is_coeff_domain(img.width(), img.height()) {
        // Simulated PSP: decode, lossless coefficient-domain op, re-encode.
        let psp_out = CoeffImage::decode(&protected.bytes)
            .and_then(|c| {
                t.apply_to_coeff(&c)
                    .map_err(|e| puppies_jpeg::JpegError::Malformed(e.to_string()))
            })
            .and_then(|c| c.encode(&EncodeOptions::default()));
        let bytes = match psp_out {
            Ok(b) => b,
            Err(e) => {
                report.fail(case, format!("psp coeff transform failed: {e}"));
                return;
            }
        };
        let mut params = protected.params.clone();
        params.transformation = Some(t.clone());
        let recovered = match recover_transformed(&bytes, &params, &grant) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("recover_transformed failed: {e}"));
                return;
            }
        };
        if let Transformation::Recompress { .. } = t {
            // Approximate: requantization error, bounded by the coarser
            // quant step. Exact only when nothing was perturbed away from
            // the coarse grid — not in general.
            let reference = reference_coeff.to_rgb();
            let perturbed = match puppies_jpeg::decode_rgb(&bytes) {
                Ok(p) => p,
                Err(e) => {
                    report.fail(case, format!("decode of psp output failed: {e}"));
                    return;
                }
            };
            let psnr = psnr_rgb(&recovered, &reference);
            let baseline = psnr_rgb(&perturbed, &reference);
            let bounded_profile = setting.opts.profile.dc_range <= 64
                || matches!(
                    setting.opts.profile.scheme,
                    Scheme::Compression | Scheme::Zero
                );
            let abs_floor = if bounded_profile {
                bounds::RECOMPRESS_ABS_DB
            } else {
                0.0
            };
            let detail = format!("psnr {psnr:.1} dB, baseline {baseline:.1} dB");
            if psnr > baseline + bounds::RECOMPRESS_MARGIN_DB && psnr > abs_floor {
                report.pass(case, Some(detail));
            } else {
                report.fail(
                    case,
                    format!(
                        "{detail}; need margin > {} dB and abs > {abs_floor} dB",
                        bounds::RECOMPRESS_MARGIN_DB
                    ),
                );
            }
        } else {
            // Lossless path: pixel-for-pixel equality with the
            // transformation of the never-perturbed reference.
            let expected = match t.apply_to_coeff(&reference_coeff) {
                Ok(c) => c.to_rgb(),
                Err(e) => {
                    report.fail(case, format!("reference transform failed: {e}"));
                    return;
                }
            };
            if recovered == expected {
                report.pass(case, Some("coefficient-exact".into()));
            } else {
                let psnr = psnr_rgb(&recovered, &expected);
                report.fail(
                    case,
                    format!("exactness violated: recovered differs, psnr {psnr:.1} dB"),
                );
            }
        }
        return;
    }

    // Pixel-domain path (scale / filter / overlay).
    let perturbed_rgb = match CoeffImage::decode(&protected.bytes) {
        Ok(c) => c.to_rgb(),
        Err(e) => {
            report.fail(case, format!("decode of protected image failed: {e}"));
            return;
        }
    };
    let transformed = match t.apply_to_rgb(&perturbed_rgb) {
        Ok(o) => o,
        Err(e) => {
            report.fail(case, format!("psp pixel transform failed: {e}"));
            return;
        }
    };
    let bytes = match puppies_jpeg::encode_rgb(&transformed, PSP_REENCODE_QUALITY) {
        Ok(b) => b,
        Err(e) => {
            report.fail(case, format!("psp re-encode failed: {e}"));
            return;
        }
    };
    let mut params = protected.params.clone();
    params.transformation = Some(t.clone());

    if matches!(t, Transformation::Overlay { .. }) {
        // No per-plane linear form: the receiver must get a clean error.
        match recover_transformed(&bytes, &params, &grant) {
            Err(e) => report.pass(case, Some(format!("cleanly rejected: {e}"))),
            Ok(_) => report.fail(
                case,
                "overlay has no shadow form but recover_transformed returned an image",
            ),
        }
        return;
    }

    let recovered = match recover_transformed(&bytes, &params, &grant) {
        Ok(r) => r,
        Err(e) => {
            report.fail(case, format!("recover_transformed failed: {e}"));
            return;
        }
    };
    let expected = match t.apply_to_rgb(&reference_coeff.to_rgb()) {
        Ok(o) => o,
        Err(e) => {
            report.fail(case, format!("reference transform failed: {e}"));
            return;
        }
    };
    if recovered.width() != expected.width() || recovered.height() != expected.height() {
        report.fail(
            case,
            format!(
                "dimension mismatch: recovered {}x{}, expected {}x{}",
                recovered.width(),
                recovered.height(),
                expected.width(),
                expected.height()
            ),
        );
        return;
    }
    let psnr = psnr_rgb(&recovered, &expected);
    let baseline = psnr_rgb(&transformed, &expected);
    let detail = format!("psnr {psnr:.1} dB, baseline {baseline:.1} dB");
    if setting.pixel_domain_bounded {
        let full_coverage = rois
            .rects
            .iter()
            .any(|r| r.x == 0 && r.y == 0 && r.w == img.width() && r.h == img.height());
        let (margin, abs) = shadow_bounds(t, full_coverage);
        if psnr > baseline + margin && psnr > abs {
            report.pass(case, Some(detail));
        } else {
            report.fail(
                case,
                format!("{detail}; need margin > {margin} dB and abs > {abs} dB"),
            );
        }
    } else {
        // Full-range profiles: clamping destroys the shadow (documented
        // negative result), so only the smoke properties are asserted.
        report.skip(
            case,
            format!("no pixel-domain bound for full-range profile; measured {detail}"),
        );
    }
}

/// Runs the full oracle matrix.
pub fn run_matrix(m: &Matrix) -> Report {
    let mut report = Report::new();
    for (t_name, t) in &m.transformations {
        for rois in &m.roi_sets {
            for setting in &m.settings {
                run_case(&mut report, &m.image, t_name, t, rois, setting);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_axes_meet_issue_floor() {
        let m = Matrix::default();
        assert!(m.roi_sets.len() >= 3, "need ≥3 ROI shapes");
        assert!(m.settings.len() >= 2, "need ≥2 key/params settings");
        // Every Transformation variant is represented.
        let has = |f: fn(&Transformation) -> bool| m.transformations.iter().any(|(_, t)| f(t));
        assert!(has(|t| matches!(t, Transformation::Scale { .. })));
        assert!(has(|t| matches!(t, Transformation::Crop(_))));
        assert!(has(|t| matches!(t, Transformation::Rotate90)));
        assert!(has(|t| matches!(t, Transformation::Rotate180)));
        assert!(has(|t| matches!(t, Transformation::Rotate270)));
        assert!(has(|t| matches!(t, Transformation::FlipHorizontal)));
        assert!(has(|t| matches!(t, Transformation::FlipVertical)));
        assert!(has(|t| matches!(t, Transformation::Recompress { .. })));
        assert!(has(|t| matches!(t, Transformation::Filter(_))));
        assert!(has(|t| matches!(t, Transformation::Overlay { .. })));
    }

    #[test]
    fn single_cell_passes() {
        // One exact cell end-to-end as a unit test; the full matrix runs in
        // the integration test and the CLI.
        let m = Matrix::default();
        let mut report = Report::new();
        run_case(
            &mut report,
            &m.image,
            "rot90",
            &Transformation::Rotate90,
            &m.roi_sets[0],
            &m.settings[3],
        );
        assert!(report.is_ok(), "{}", report.render());
    }
}
