//! Differential tests: the codec checked against itself.
//!
//! Three families, in the spirit of P3's bit-level codec fidelity audits
//! and the JPEG fixed-point literature (Si & Lyu):
//!
//! 1. **Coefficient vs pixel domain**: every lossless coefficient-domain
//!    transformation is cross-checked against the pixel-domain reference
//!    path on decoded output — `apply_to_coeff(c).to_rgb()` must match the
//!    same geometric operation applied to `c.to_rgb()`. Crop is a pure
//!    block copy and must be byte-exact; rotations and flips permute and
//!    sign-flip coefficients before the IDCT, so the two float evaluation
//!    orders may differ by one quantization step — the documented bound is
//!    `max_abs_diff ≤ 1` (matching the transform crate's own contract).
//! 2. **Codec round-trip**: `decode(encode(x)) == x` at the coefficient
//!    level for both Huffman modes and several qualities — entropy coding
//!    must be lossless, only quantization may lose information.
//! 3. **Recompression fixed point**: repeatedly decoding and re-encoding
//!    at the same quality must converge — successive iterates stop
//!    changing (the idempotence window) rather than drifting.

use puppies_image::metrics::{max_abs_diff_rgb, mse_rgb, psnr_rgb};
use puppies_image::{Rect, RgbImage};
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::Transformation;

use crate::golden::fixture_image;
use crate::report::Report;

/// Pixel-domain reference for a lossless coefficient-domain op: apply the
/// same geometry directly to the decoded pixels.
fn pixel_reference(t: &Transformation, rgb: &RgbImage) -> Option<RgbImage> {
    match *t {
        Transformation::Rotate90 => Some(RgbImage::from_fn(rgb.height(), rgb.width(), |x, y| {
            rgb.get(y, rgb.height() - 1 - x)
        })),
        Transformation::Rotate180 => Some(RgbImage::from_fn(rgb.width(), rgb.height(), |x, y| {
            rgb.get(rgb.width() - 1 - x, rgb.height() - 1 - y)
        })),
        Transformation::Rotate270 => Some(RgbImage::from_fn(rgb.height(), rgb.width(), |x, y| {
            rgb.get(rgb.width() - 1 - y, x)
        })),
        Transformation::FlipHorizontal => {
            Some(RgbImage::from_fn(rgb.width(), rgb.height(), |x, y| {
                rgb.get(rgb.width() - 1 - x, y)
            }))
        }
        Transformation::FlipVertical => {
            Some(RgbImage::from_fn(rgb.width(), rgb.height(), |x, y| {
                rgb.get(x, rgb.height() - 1 - y)
            }))
        }
        Transformation::Crop(r) => Some(RgbImage::from_fn(r.w, r.h, |x, y| {
            rgb.get(r.x + x, r.y + y)
        })),
        _ => None,
    }
}

/// Family 1: coefficient-domain ops vs the pixel-domain reference.
pub fn coeff_vs_pixel(report: &mut Report) {
    let img = fixture_image();
    let coeff = CoeffImage::from_rgb(&img, 75);
    let decoded = coeff.to_rgb();
    let ops: [(&str, Transformation); 6] = [
        ("rot90", Transformation::Rotate90),
        ("rot180", Transformation::Rotate180),
        ("rot270", Transformation::Rotate270),
        ("fliph", Transformation::FlipHorizontal),
        ("flipv", Transformation::FlipVertical),
        ("crop", Transformation::Crop(Rect::new(8, 16, 48, 24))),
    ];
    for (name, t) in ops {
        let case = format!("differential/coeff-vs-pixel/{name}");
        let via_coeff = match t.apply_to_coeff(&coeff) {
            Ok(c) => c.to_rgb(),
            Err(e) => {
                report.fail(case, format!("coeff path failed: {e}"));
                continue;
            }
        };
        let via_pixels = pixel_reference(&t, &decoded).expect("lossless op");
        // Crop copies blocks untouched, so the IDCT evaluates identically;
        // rotations/flips permute coefficients first and are allowed one
        // rounding step of float divergence.
        let tolerance = if matches!(t, Transformation::Crop(_)) {
            0
        } else {
            1
        };
        let diff = max_abs_diff_rgb(&via_coeff, &via_pixels);
        if diff <= tolerance {
            let detail = if diff == 0 { "exact" } else { "max |Δ| = 1" };
            report.pass(case, Some(detail.into()));
        } else {
            let psnr = psnr_rgb(&via_coeff, &via_pixels);
            report.fail(
                case,
                format!(
                    "coefficient path diverges from pixel reference: max |Δ| = {diff}, psnr {psnr:.1} dB"
                ),
            );
        }
    }
}

/// Family 2: entropy coding round-trips losslessly at the coefficient
/// level for both Huffman modes.
pub fn codec_roundtrip(report: &mut Report) {
    let img = fixture_image();
    for quality in [35u8, 75, 95] {
        for (mode, opts) in [
            ("optimized", EncodeOptions::default()),
            ("standard", EncodeOptions::standard()),
        ] {
            let case = format!("differential/codec-roundtrip/q{quality}_{mode}");
            let coeff = CoeffImage::from_rgb(&img, quality);
            let result = coeff
                .encode(&opts)
                .and_then(|bytes| CoeffImage::decode(&bytes));
            match result {
                Ok(back) => {
                    let same = back.width() == coeff.width()
                        && back.height() == coeff.height()
                        && back
                            .components()
                            .iter()
                            .zip(coeff.components())
                            .all(|(a, b)| a.blocks() == b.blocks() && a.quant() == b.quant());
                    if same {
                        report.pass(case, Some("coefficient-exact".into()));
                    } else {
                        report.fail(case, "decode(encode(x)) != x at the coefficient level");
                    }
                }
                Err(e) => report.fail(case, format!("round-trip failed: {e}")),
            }
        }
    }
}

/// Family 3: repeated recompression at a fixed quality converges to a
/// fixed point (or a tiny limit cycle) instead of drifting.
pub fn recompression_fixed_point(report: &mut Report) {
    let img = fixture_image();
    for quality in [50u8, 75] {
        let case = format!("differential/fixed-point/q{quality}");
        let mut current = img.clone();
        let mut diffs: Vec<f64> = Vec::new();
        let mut converged_at = None;
        for i in 0..12 {
            let bytes = match puppies_jpeg::encode_rgb(&current, quality) {
                Ok(b) => b,
                Err(e) => {
                    report.fail(case.clone(), format!("encode #{i} failed: {e}"));
                    return;
                }
            };
            let next = match puppies_jpeg::decode_rgb(&bytes) {
                Ok(n) => n,
                Err(e) => {
                    report.fail(case.clone(), format!("decode #{i} failed: {e}"));
                    return;
                }
            };
            let d = mse_rgb(&current, &next);
            diffs.push(d);
            if d == 0.0 {
                converged_at = Some(i);
                break;
            }
            current = next;
        }
        let last = *diffs.last().unwrap();
        let detail = format!(
            "iteration MSEs {:?}, fixed point after {} re-encodes",
            diffs
                .iter()
                .map(|d| (d * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            converged_at.map_or("not reached".to_string(), |i| i.to_string()),
        );
        // The contraction claim: the tail step must be far smaller than the
        // first step, and an exact fixed point must be reached within the
        // budget (this codec has no rounding dither, so iterates settle).
        if converged_at.is_some() && diffs[0] > last {
            report.pass(case, Some(detail));
        } else {
            report.fail(case, format!("recompression does not converge: {detail}"));
        }
    }
}

/// Runs all differential families.
pub fn run_differential() -> Report {
    let mut report = Report::new();
    coeff_vs_pixel(&mut report);
    codec_roundtrip(&mut report);
    recompression_fixed_point(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_suite_is_green() {
        let report = run_differential();
        assert!(report.is_ok(), "{}", report.render());
    }
}
