//! Structured pass/fail reporting shared by every conformance suite.
//!
//! All suites funnel their results through [`Report`] so the CLI, the
//! integration tests, and the CI job render identical output: one line per
//! case, failures expanded with whatever diagnostic the suite attached
//! (byte diffs for golden vectors, PSNR tables for oracles, reproduction
//! commands for fuzz findings).

use std::fmt::Write as _;

/// 64-bit FNV-1a: the manifest fingerprint for golden vectors.
///
/// Hand-rolled because the workspace is offline; collisions are irrelevant
/// here (the full byte comparison is authoritative — the hash only makes
/// `MANIFEST.txt` diffs readable in review).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// First mismatch between two byte strings, with context for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteDiff {
    /// Length of the expected (committed) bytes.
    pub expected_len: usize,
    /// Length of the actual (freshly produced) bytes.
    pub actual_len: usize,
    /// Offset of the first differing byte, if any byte differs before the
    /// shorter string ends. `None` means one string is a prefix of the
    /// other (pure length mismatch).
    pub first_mismatch: Option<usize>,
}

impl ByteDiff {
    /// Compares two byte strings; `None` means byte-identical.
    pub fn compare(expected: &[u8], actual: &[u8]) -> Option<ByteDiff> {
        let first_mismatch = expected.iter().zip(actual.iter()).position(|(a, b)| a != b);
        if first_mismatch.is_none() && expected.len() == actual.len() {
            return None;
        }
        Some(ByteDiff {
            expected_len: expected.len(),
            actual_len: actual.len(),
            first_mismatch,
        })
    }

    /// Human-readable diff: lengths, offset of first mismatch, and a hex
    /// window around it on both sides.
    pub fn render(&self, expected: &[u8], actual: &[u8]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "expected {} bytes (fnv64 {:016x}), got {} bytes (fnv64 {:016x})",
            self.expected_len,
            fnv64(expected),
            self.actual_len,
            fnv64(actual),
        );
        match self.first_mismatch {
            Some(off) => {
                let _ = writeln!(out, "first mismatch at byte offset {off}:");
                let _ = writeln!(out, "  expected: {}", hex_window(expected, off));
                let _ = writeln!(out, "  actual:   {}", hex_window(actual, off));
            }
            None => {
                let _ = writeln!(
                    out,
                    "no mismatch within the common prefix; lengths differ by {}",
                    self.actual_len.abs_diff(self.expected_len)
                );
            }
        }
        out
    }
}

/// Hex dump of up to 8 bytes either side of `center`, with the byte at
/// `center` bracketed.
pub fn hex_window(bytes: &[u8], center: usize) -> String {
    let lo = center.saturating_sub(8);
    let hi = (center + 9).min(bytes.len());
    let mut out = format!("[{lo:#06x}] ");
    for (i, b) in bytes[lo..hi].iter().enumerate() {
        let pos = lo + i;
        if pos == center {
            let _ = write!(out, "[{b:02x}] ");
        } else {
            let _ = write!(out, "{b:02x} ");
        }
    }
    if hi < bytes.len() {
        out.push('…');
    }
    out.trim_end().to_string()
}

/// Outcome of a single conformance case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseStatus {
    /// The oracle held.
    Pass,
    /// The oracle failed; the string is the full diagnostic.
    Fail(String),
    /// The expected output was (re)written in `--bless` mode.
    Blessed,
    /// Intentionally not asserted for this combination (the reason says
    /// why — e.g. full-range profiles have no pixel-domain recovery
    /// guarantee). Skips are reported so coverage holes stay visible.
    Skipped(String),
}

/// One named case inside a suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// Stable case name (used in reports and artifact file names).
    pub name: String,
    /// What happened.
    pub status: CaseStatus,
    /// Optional one-line measurement (e.g. `psnr 31.2 dB ≥ 26.0`) shown
    /// even for passing cases when verbose.
    pub detail: Option<String>,
}

/// A collection of case results from one or more suites.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All recorded cases, in execution order.
    pub cases: Vec<CaseResult>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a passing case.
    pub fn pass(&mut self, name: impl Into<String>, detail: Option<String>) {
        self.cases.push(CaseResult {
            name: name.into(),
            status: CaseStatus::Pass,
            detail,
        });
    }

    /// Records a failing case with its diagnostic.
    pub fn fail(&mut self, name: impl Into<String>, diagnostic: impl Into<String>) {
        self.cases.push(CaseResult {
            name: name.into(),
            status: CaseStatus::Fail(diagnostic.into()),
            detail: None,
        });
    }

    /// Records a blessed (regenerated) golden vector.
    pub fn blessed(&mut self, name: impl Into<String>, detail: Option<String>) {
        self.cases.push(CaseResult {
            name: name.into(),
            status: CaseStatus::Blessed,
            detail,
        });
    }

    /// Records a documented skip.
    pub fn skip(&mut self, name: impl Into<String>, reason: impl Into<String>) {
        self.cases.push(CaseResult {
            name: name.into(),
            status: CaseStatus::Skipped(reason.into()),
            detail: None,
        });
    }

    /// Merges another report's cases into this one.
    pub fn merge(&mut self, other: Report) {
        self.cases.extend(other.cases);
    }

    /// Number of passing cases.
    pub fn passed(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.status == CaseStatus::Pass)
            .count()
    }

    /// All failing cases.
    pub fn failures(&self) -> Vec<&CaseResult> {
        self.cases
            .iter()
            .filter(|c| matches!(c.status, CaseStatus::Fail(_)))
            .collect()
    }

    /// Whether every case passed (blessed and skipped cases do not fail
    /// the run).
    pub fn is_ok(&self) -> bool {
        self.failures().is_empty()
    }

    /// Full text rendering: a status line per case, failures expanded.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cases {
            let (tag, extra) = match &c.status {
                CaseStatus::Pass => ("PASS", None),
                CaseStatus::Fail(d) => ("FAIL", Some(d.as_str())),
                CaseStatus::Blessed => ("BLESS", None),
                CaseStatus::Skipped(r) => ("SKIP", Some(r.as_str())),
            };
            let _ = write!(out, "{tag:5} {}", c.name);
            if let Some(d) = &c.detail {
                let _ = write!(out, "  ({d})");
            }
            out.push('\n');
            if let Some(extra) = extra {
                for line in extra.lines() {
                    let _ = writeln!(out, "      {line}");
                }
            }
        }
        let fails = self.failures().len();
        let blessed = self
            .cases
            .iter()
            .filter(|c| c.status == CaseStatus::Blessed)
            .count();
        let skipped = self
            .cases
            .iter()
            .filter(|c| matches!(c.status, CaseStatus::Skipped(_)))
            .count();
        let _ = writeln!(
            out,
            "{} cases: {} passed, {} failed, {} blessed, {} skipped",
            self.cases.len(),
            self.passed(),
            fails,
            blessed,
            skipped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn byte_diff_finds_first_mismatch() {
        let a = b"hello world".to_vec();
        let mut b = a.clone();
        b[6] = b'W';
        let d = ByteDiff::compare(&a, &b).unwrap();
        assert_eq!(d.first_mismatch, Some(6));
        let text = d.render(&a, &b);
        assert!(text.contains("offset 6"), "{text}");
        assert!(ByteDiff::compare(&a, &a).is_none());
    }

    #[test]
    fn byte_diff_reports_length_only_mismatch() {
        let a = b"abcd".to_vec();
        let b = b"abcdef".to_vec();
        let d = ByteDiff::compare(&a, &b).unwrap();
        assert_eq!(d.first_mismatch, None);
        assert!(d.render(&a, &b).contains("lengths differ by 2"));
    }

    #[test]
    fn report_counts_and_renders() {
        let mut r = Report::new();
        r.pass("a", Some("psnr 30.0".into()));
        r.fail("b", "boom\nsecond line");
        r.skip("c", "not applicable");
        assert!(!r.is_ok());
        assert_eq!(r.passed(), 1);
        let text = r.render();
        assert!(text.contains("PASS  a"));
        assert!(text.contains("FAIL  b"));
        assert!(text.contains("      boom"));
        assert!(text.contains("3 cases: 1 passed, 1 failed, 0 blessed, 1 skipped"));
    }
}
