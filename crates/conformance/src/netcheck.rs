//! Network round-trip conformance: the wire must be *unobservable*
//! except in latency.
//!
//! The serving suite ([`crate::serving`]) proves the in-process PSP's
//! cache is coherent; this suite proves the network stack on top of it —
//! HTTP framing, length-prefixed bodies, the canonical transformation
//! encoding, and the on-disk store behind the server — adds nothing and
//! loses nothing:
//!
//! * every transformation family served over TCP returns bytes and
//!   params **byte-identical** to an in-process [`PspServer`] fed the
//!   same upload;
//! * upload → download round-trips the exact protected bitstream (the
//!   Kobayashi–Kiya property: protected JPEGs cross the service boundary
//!   with no re-encoding);
//! * a repeated wire request reports a cache hit (`x-cache`) and serves
//!   the same bytes as the miss that populated it;
//! * a server restart on the same store directory recovers every upload
//!   byte-identical (WAL + segment replay as observed by a client).
//!
//! * the observability surface holds its contract: `/healthz` and
//!   `/readyz` answer 200 on a recovered server, `/metrics` is
//!   Prometheus text when a subscriber is installed (an explicit 503
//!   when not), and a malformed `x-puppies-trace` header never turns
//!   into an error response.
//!
//! The server runs in-process on an ephemeral loopback port with a
//! throwaway store; each case is an honest client round trip.

use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::net::client::WireCache;
use puppies_psp::net::{Client, ServeConfig, Server};
use puppies_psp::{PspConfig, PspServer};
use puppies_transform::{FilterOp, ScaleFilter, Transformation};
use std::path::PathBuf;

use crate::report::Report;

fn fixture(seed: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(64, 48, |x, y| {
        Rgb::new(
            (32 + (x * 5 + y * 2 + seed as u32) % 192) as u8,
            (32 + (x * 2 + y * 4) % 192) as u8,
            (32 + (x + y * 3 + seed as u32 * 7) % 192) as u8,
        )
    });
    let key = OwnerKey::from_seed([seed; 32]);
    let protected = protect(
        &img,
        &[Rect::new(16, 8, 24, 24)],
        &key,
        &ProtectOptions::default(),
    )
    .expect("fixture protects");
    (protected.bytes, protected.params.to_bytes())
}

fn wire_cases() -> Vec<(&'static str, Transformation)> {
    vec![
        ("rot90", Transformation::Rotate90),
        ("rot270", Transformation::Rotate270),
        ("flipv", Transformation::FlipVertical),
        ("crop", Transformation::Crop(Rect::new(8, 8, 32, 24))),
        ("recompress", Transformation::Recompress { quality: 40 }),
        (
            "scale",
            Transformation::Scale {
                width: 32,
                height: 24,
                filter: ScaleFilter::Bilinear,
            },
        ),
        (
            "gaussian",
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.2 }),
        ),
        (
            "overlay",
            Transformation::Overlay {
                rect: Rect::new(0, 0, 16, 16),
                color: Rgb::new(255, 255, 255),
                alpha: 0.6,
            },
        ),
    ]
}

/// A server on an ephemeral port over a throwaway store. Dropping does
/// not stop it; callers shut it down via the admin token.
struct Wire {
    addr: String,
    admin: String,
    thread: std::thread::JoinHandle<puppies_psp::Result<()>>,
}

fn boot(dir: &PathBuf) -> Result<Wire, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.clone(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?
        .to_string();
    let thread = std::thread::spawn(move || server.run());
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .map_err(|e| format!("admin token: {e}"))?
        .trim()
        .to_string();
    Ok(Wire {
        addr,
        admin,
        thread,
    })
}

/// One raw GET with arbitrary extra header lines; returns the HTTP status.
fn raw_get(addr: &str, path: &str, extra: &str) -> Result<u16, String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nhost: c\r\n{extra}connection: close\r\n\r\n"
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    String::from_utf8_lossy(&buf)
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| "no status line".to_string())?
        .parse()
        .map_err(|e| format!("bad status: {e}"))
}

impl Wire {
    fn stop(self) -> Result<(), String> {
        let mut client = Client::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        client
            .shutdown(&self.admin)
            .map_err(|e| format!("shutdown: {e}"))?;
        self.thread
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server: {e}"))
    }
}

/// The network round-trip oracle (see module docs).
pub fn run_netcheck() -> Report {
    let _span = puppies_obs::span("conformance.netcheck.run", "conformance");
    let mut report = Report::new();
    let dir = std::env::temp_dir().join(format!("puppies_conf_net_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    if let Err(e) = run_inner(&dir, &mut report) {
        report.fail("netcheck/harness", e);
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn run_inner(dir: &PathBuf, report: &mut Report) -> Result<(), String> {
    let wire = boot(dir)?;
    let mut client = Client::connect(&wire.addr).map_err(|e| format!("connect: {e}"))?;
    let reference = PspServer::new();

    // Observability surface: health/readiness/metrics contract plus
    // trace-header robustness, before any traffic flows.
    {
        let case = "netcheck/obs/health";
        match (
            raw_get(&wire.addr, "/healthz", ""),
            raw_get(&wire.addr, "/readyz", ""),
        ) {
            (Ok(200), Ok(200)) => report.pass(case, Some("healthz and readyz answer 200".into())),
            (h, r) => report.fail(case, format!("healthz={h:?} readyz={r:?}, want 200/200")),
        }
    }
    {
        let case = "netcheck/obs/trace-header";
        match raw_get(&wire.addr, "/healthz", "x-puppies-trace: not-a-trace\r\n") {
            Ok(200) => report.pass(case, Some("malformed trace header ignored".into())),
            other => report.fail(case, format!("malformed trace header gave {other:?}")),
        }
    }
    {
        let case = "netcheck/obs/metrics";
        match client.metrics_text() {
            Ok(text) if puppies_obs::enabled() => {
                if text.contains("psp_ready 1") && text.contains("# TYPE") {
                    report.pass(case, Some(format!("{} bytes of exposition", text.len())));
                } else {
                    report.fail(case, "metrics text missing psp_ready/# TYPE lines");
                }
            }
            Ok(_) => report.fail(case, "metrics served without a subscriber installed"),
            Err(e) if !puppies_obs::enabled() && e.to_string().contains("503") => {
                report.pass(case, Some("explicit 503 without a subscriber".into()))
            }
            Err(e) => report.fail(case, format!("metrics scrape: {e}")),
        }
    }

    let (bytes, params) = fixture(11);
    let receipt = client
        .upload(&bytes, &params)
        .map_err(|e| format!("upload: {e}"))?;
    let ref_id = reference
        .upload(bytes.clone(), params.clone())
        .map_err(|e| format!("reference upload: {e}"))?;

    // Bitstream fidelity across the boundary: exact protected bytes back.
    {
        let case = "netcheck/round-trip/bitstream";
        let down = client
            .download(receipt.id)
            .map_err(|e| format!("download: {e}"))?;
        let p = client
            .download_params(receipt.id)
            .map_err(|e| format!("params: {e}"))?;
        if down != bytes {
            report.fail(case, "downloaded bitstream differs from the upload");
        } else if p != params {
            report.fail(case, "downloaded params differ from the upload");
        } else {
            report.pass(case, Some(format!("{} bytes unmodified", down.len())));
        }
    }

    // Wire-vs-in-process parity and cache coherence per transformation.
    for (name, t) in wire_cases() {
        let case = format!("netcheck/parity/{name}");
        let (net_b, net_p, first) = match client.download_transformed(receipt.id, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("wire serve failed: {e}"));
                continue;
            }
        };
        let (rep_b, rep_p, second) = match client.download_transformed(receipt.id, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("wire repeat failed: {e}"));
                continue;
            }
        };
        let (ref_b, ref_p) = match reference.download_transformed(ref_id, &t) {
            Ok(r) => r,
            Err(e) => {
                report.fail(case, format!("in-process serve failed: {e}"));
                continue;
            }
        };
        if net_b != ref_b.to_vec() || net_p != ref_p.to_vec() {
            report.fail(case, "wire result diverged from in-process result");
        } else if rep_b != net_b || rep_p != net_p {
            report.fail(case, "cached wire repeat diverged from the first answer");
        } else if first == WireCache::Hit && second == WireCache::Miss {
            report.fail(
                case,
                "cache reported hit-then-miss for an identical request",
            );
        } else {
            report.pass(
                case,
                Some(format!(
                    "{} bytes byte-identical ({:?} then {:?})",
                    net_b.len(),
                    first,
                    second
                )),
            );
        }
    }

    // Restart recovery as a client sees it: same store dir, same bytes.
    wire.stop()?;
    let wire = boot(dir)?;
    {
        let case = "netcheck/recovery/restart";
        let mut client = Client::connect(&wire.addr).map_err(|e| format!("reconnect: {e}"))?;
        let down = client
            .download(receipt.id)
            .map_err(|e| format!("post-restart download: {e}"))?;
        let p = client
            .download_params(receipt.id)
            .map_err(|e| format!("post-restart params: {e}"))?;
        if down != bytes || p != params {
            report.fail(
                case,
                "recovered content differs from the acknowledged upload",
            );
        } else {
            report.pass(case, Some("upload byte-identical after restart".into()));
        }
    }
    wire.stop()
}
