//! Conformance & differential-testing harness for the PuPPIeS workspace.
//!
//! The paper's headline guarantee — an authorized receiver reconstructs
//! the original DCT coefficients even after the PSP transforms the
//! perturbed JPEG — is only worth reproducing if it is machine-checked.
//! This crate turns it into four executable suites:
//!
//! * [`golden`] — byte-exact committed vectors for the codec, protect, and
//!   every PSP transformation, with a bless mode and hex diff reports;
//! * [`oracle`] — the recovery matrix: every transformation × ROI shape ×
//!   key/params setting, coefficient-exact where the paper claims
//!   exactness and PSNR-bounded where it claims approximation;
//! * [`differential`] — the codec against itself: coefficient-domain vs
//!   pixel-domain transformation paths, lossless entropy round-trips, and
//!   recompression fixed-point convergence;
//! * [`fuzz`] — seeded campaigns over malformed bitstreams, degenerate
//!   ROIs, mutated params, and worker-pool widths, with minimized failing
//!   inputs written to a corpus directory;
//! * [`serving`] — the PSP cache-coherence oracle: cached transform
//!   results must be byte-identical to freshly computed ones, across
//!   content addressing, eviction pressure, and the in-place path;
//! * [`identity`] — the perceptual-identity oracle: recompression keeps a
//!   protected photo inside its signature family, geometry leaves it,
//!   and content changes confined to the private ROI cannot move a
//!   single signature bit (blindness, checked exactly);
//! * [`netcheck`] — the network round-trip oracle: a real `net::Server`
//!   on loopback must serve every transformation byte-identical to the
//!   in-process path, and recover every upload across a restart;
//! * [`cluster`] — the k-of-n Shamir oracle: every k-subset of backends
//!   reconstructs byte-exactly, every (k−1)-subset fails loudly,
//!   corrupted shares are detected, and recovery through reconstructed
//!   matrices matches single-PSP recovery pixel-exactly.
//!
//! Entry points: [`run_all`] for the whole harness (what
//! `puppies-cli conformance` and CI run), or the per-suite `run_*`/
//! `check`/`bless` functions. Everything reports through
//! [`report::Report`] so failures render identically everywhere.

pub mod cluster;
pub mod differential;
pub mod fuzz;
pub mod golden;
pub mod identity;
pub mod netcheck;
pub mod oracle;
pub mod report;
pub mod serving;

use std::path::PathBuf;

pub use report::{CaseResult, CaseStatus, Report};

/// Which suites to run, and where their inputs/outputs live.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Directory holding the committed golden vectors.
    pub golden_dir: PathBuf,
    /// Regenerate golden vectors instead of checking them.
    pub bless: bool,
    /// Corpus directory for minimized fuzz failures (`None` disables).
    pub corpus_dir: Option<PathBuf>,
    /// Master fuzz seed.
    pub fuzz_seed: u64,
    /// Scale factor for fuzz case counts (1 = the default campaign).
    pub fuzz_scale: usize,
    /// Suites to skip, by name (`golden`, `oracle`, `differential`,
    /// `fuzz`, `serving`, `identity`, `netcheck`, `cluster`).
    pub skip: Vec<String>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            golden_dir: PathBuf::from("crates/conformance/golden"),
            bless: false,
            corpus_dir: Some(PathBuf::from("tests/corpus")),
            fuzz_seed: 0xC0FFEE,
            fuzz_scale: 1,
            skip: Vec::new(),
        }
    }
}

impl HarnessConfig {
    fn skipped(&self, suite: &str) -> bool {
        self.skip.iter().any(|s| s == suite)
    }
}

/// Runs every enabled suite and returns the merged report.
///
/// # Errors
/// Only filesystem errors from `--bless` are fatal; oracle failures are
/// reported, not returned.
pub fn run_all(cfg: &HarnessConfig) -> std::io::Result<Report> {
    let _span = puppies_obs::span("conformance.run_all", "conformance");
    let mut report = Report::new();
    if !cfg.skipped("golden") {
        let _suite = puppies_obs::span("conformance.golden", "conformance");
        if cfg.bless {
            report.merge(golden::bless(&cfg.golden_dir)?);
        } else {
            report.merge(golden::check(&cfg.golden_dir));
        }
    }
    if !cfg.skipped("oracle") {
        let _suite = puppies_obs::span("conformance.oracle", "conformance");
        report.merge(oracle::run_matrix(&oracle::Matrix::default()));
    }
    if !cfg.skipped("differential") {
        let _suite = puppies_obs::span("conformance.differential", "conformance");
        report.merge(differential::run_differential());
    }
    if !cfg.skipped("serving") {
        let _suite = puppies_obs::span("conformance.serving", "conformance");
        report.merge(serving::run_serving());
    }
    if !cfg.skipped("identity") {
        let _suite = puppies_obs::span("conformance.identity", "conformance");
        report.merge(identity::run_identity());
    }
    if !cfg.skipped("netcheck") {
        let _suite = puppies_obs::span("conformance.netcheck", "conformance");
        report.merge(netcheck::run_netcheck());
    }
    if !cfg.skipped("cluster") {
        let _suite = puppies_obs::span("conformance.cluster", "conformance");
        report.merge(cluster::run_cluster());
    }
    if !cfg.skipped("fuzz") {
        let _suite = puppies_obs::span("conformance.fuzz", "conformance");
        let base = fuzz::FuzzConfig::default();
        let fcfg = fuzz::FuzzConfig {
            seed: cfg.fuzz_seed,
            bitstream_cases: base.bitstream_cases * cfg.fuzz_scale,
            roi_cases: base.roi_cases * cfg.fuzz_scale,
            params_cases: base.params_cases * cfg.fuzz_scale,
            worker_cases: base.worker_cases * cfg.fuzz_scale,
            entropy_cases: base.entropy_cases * cfg.fuzz_scale,
            corpus_dir: cfg.corpus_dir.clone(),
        };
        report.merge(fuzz::run_fuzz(&fcfg));
    }
    Ok(report)
}
