//! Seeded fuzz campaigns: deterministic, minimizing, corpus-writing.
//!
//! Four campaigns, all driven by one `ChaCha20Rng` stream so a failing run
//! is reproducible from its seed alone:
//!
//! * **bitstream** — valid JPEGs mutated by byte flips and truncation;
//!   `CoeffImage::decode` must return `Ok` or a clean `JpegError`, never
//!   panic, and anything it accepts must re-encode;
//! * **roi** — degenerate ROI rectangles (0-area, off-grid,
//!   image-spanning, overlapping, out-of-bounds): `protect` must cleanly
//!   accept or reject, and every accepted combination must round-trip
//!   coefficient-exact through `recover`;
//! * **params** — mutated `PublicParams` wire bytes must parse or fail
//!   cleanly;
//! * **workers** — protect/recover under a 1-thread and a multi-thread
//!   worker pool must be byte-identical (the PR 1 determinism contract);
//! * **entropy** — differential decode: the 8-bit lookahead LUT path
//!   (`HuffDecoder::decode`) and the canonical bitwise walk
//!   (`HuffDecoder::decode_bitwise`) must agree symbol-for-symbol — same
//!   symbols, same bit positions, same accept/reject — on valid entropy
//!   streams and on streams corrupted by byte flips and truncation.
//!
//! Panicking inputs are minimized (drop mutations greedily, then shrink
//! the truncation) and written to the corpus directory (`tests/corpus/` at
//! the repo root) as `<campaign>_<seed>_<case>.bin` plus a `.txt` sidecar
//! describing the reproduction.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use puppies_core::{
    protect, recover, OwnerKey, PrivacyLevel, ProtectOptions, PublicParams, Scheme,
};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_parallel::{with_pool, WorkerPool};

use crate::report::Report;

/// Campaign configuration. Everything is derived from `seed`.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed for the deterministic RNG.
    pub seed: u64,
    /// Mutated-bitstream cases.
    pub bitstream_cases: usize,
    /// Degenerate-ROI cases (on top of the crafted deterministic set).
    pub roi_cases: usize,
    /// Mutated-params cases.
    pub params_cases: usize,
    /// Worker-invariance cases.
    pub worker_cases: usize,
    /// Differential entropy-decode cases (LUT vs bitwise).
    pub entropy_cases: usize,
    /// Where minimized failing inputs are written. `None` disables corpus
    /// output (used by unit tests).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xC0FFEE,
            bitstream_cases: 48,
            roi_cases: 32,
            params_cases: 48,
            worker_cases: 4,
            entropy_cases: 48,
            corpus_dir: None,
        }
    }
}

/// A mutation recipe applied to a valid JPEG.
#[derive(Debug, Clone)]
struct BitstreamCase {
    image_seed: u64,
    flips: Vec<(usize, u8)>,
    /// Keep only the first `cut` bytes (`usize::MAX` = no truncation).
    cut: usize,
}

fn small_image(seed: u64) -> RgbImage {
    let s = (seed & 0xff) as u8;
    RgbImage::from_fn(48, 40, |x, y| {
        Rgb::new((x as u8).wrapping_mul(5) ^ s, (y as u8).wrapping_mul(3), s)
    })
}

fn mutated_bytes(case: &BitstreamCase) -> Vec<u8> {
    let img = small_image(case.image_seed);
    let mut bytes = puppies_jpeg::encode_rgb(&img, 75).expect("fuzz base encode");
    for &(pos, val) in &case.flips {
        let len = bytes.len();
        bytes[pos % len] ^= val;
    }
    bytes.truncate(case.cut.min(bytes.len()));
    bytes
}

/// Runs `f` with panics captured and the default panic printer silenced.
fn catches_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(prev);
    result.map_err(|e| {
        e.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

/// Does this recipe still make the decoder panic?
fn decoder_panics(case: &BitstreamCase) -> bool {
    let bytes = mutated_bytes(case);
    catches_panic(|| {
        let _ = CoeffImage::decode(&bytes);
    })
    .is_err()
}

/// Greedy minimization: drop flips one at a time, then binary-shrink the
/// truncation point, keeping the recipe panicking throughout.
fn minimize(mut case: BitstreamCase) -> BitstreamCase {
    let mut i = 0;
    while i < case.flips.len() {
        let mut candidate = case.clone();
        candidate.flips.remove(i);
        if decoder_panics(&candidate) {
            case = candidate;
        } else {
            i += 1;
        }
    }
    let full_len = mutated_bytes(&BitstreamCase {
        cut: usize::MAX,
        ..case.clone()
    })
    .len();
    let (mut lo, mut hi) = (0usize, case.cut.min(full_len));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = BitstreamCase {
            cut: mid,
            ..case.clone()
        };
        if decoder_panics(&candidate) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    case.cut = hi;
    case
}

fn write_corpus_case(
    cfg: &FuzzConfig,
    report: &mut Report,
    campaign: &str,
    case_no: usize,
    bytes: &[u8],
    description: &str,
) {
    let Some(dir) = &cfg.corpus_dir else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let stem = format!("{campaign}_{:x}_{case_no}", cfg.seed);
    let _ = std::fs::write(dir.join(format!("{stem}.bin")), bytes);
    let _ = std::fs::write(dir.join(format!("{stem}.txt")), description);
    report.fail(
        format!("fuzz/{campaign}/corpus"),
        format!("minimized case written to {}", dir.join(stem).display()),
    );
}

/// Campaign 1: mutated bitstreams never panic the decoder, and accepted
/// streams re-encode.
pub fn bitstream_campaign(cfg: &FuzzConfig, rng: &mut ChaCha20Rng, report: &mut Report) {
    let mut panics = 0usize;
    let mut decoded_ok = 0usize;
    for case_no in 0..cfg.bitstream_cases {
        let n_flips = rng.gen_range(1..=4usize);
        let case = BitstreamCase {
            image_seed: rng.gen_range(0..=u64::MAX / 2),
            flips: (0..n_flips)
                .map(|_| {
                    (
                        rng.gen_range(0..16384usize),
                        rng.gen_range(1..=255u64) as u8,
                    )
                })
                .collect(),
            cut: if rng.gen_range(0..4u32) == 0 {
                rng.gen_range(0..8192usize)
            } else {
                usize::MAX
            },
        };
        let bytes = mutated_bytes(&case);
        let outcome = catches_panic(|| CoeffImage::decode(&bytes));
        match outcome {
            Err(payload) => {
                panics += 1;
                let min = minimize(case.clone());
                let min_bytes = mutated_bytes(&min);
                let description = format!(
                    "decoder panic: {payload}\nseed {:#x} case {case_no}\nrecipe: image_seed={} flips={:?} cut={}\nminimized: flips={:?} cut={} ({} bytes)\nreproduce: CoeffImage::decode on the .bin bytes\n",
                    cfg.seed, case.image_seed, case.flips, case.cut, min.flips, min.cut, min_bytes.len(),
                );
                write_corpus_case(cfg, report, "bitstream", case_no, &min_bytes, &description);
                report.fail(format!("fuzz/bitstream/case{case_no}"), description);
            }
            Ok(Ok(img)) => {
                decoded_ok += 1;
                // Anything the decoder accepts must be re-encodable: the
                // decoder's range checks are the encoder's preconditions.
                let reencode =
                    catches_panic(|| img.encode(&puppies_jpeg::EncodeOptions::default()));
                match reencode {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => report.fail(
                        format!("fuzz/bitstream/case{case_no}"),
                        format!("decoder accepted a stream the encoder rejects: {e}"),
                    ),
                    Err(payload) => report.fail(
                        format!("fuzz/bitstream/case{case_no}"),
                        format!("re-encode panicked: {payload}"),
                    ),
                }
            }
            Ok(Err(_)) => {} // clean rejection is the expected common case
        }
    }
    if panics == 0 {
        report.pass(
            "fuzz/bitstream",
            Some(format!(
                "{} mutated streams: 0 panics, {} decoded, {} rejected cleanly",
                cfg.bitstream_cases,
                decoded_ok,
                cfg.bitstream_cases - decoded_ok
            )),
        );
    }
}

/// Campaign 2: degenerate ROIs — crafted extremes plus random rectangles.
pub fn roi_campaign(cfg: &FuzzConfig, rng: &mut ChaCha20Rng, report: &mut Report) {
    let img = small_image(7);
    let (w, h) = (img.width(), img.height());
    // Crafted: the degenerate shapes named in the conformance contract.
    let crafted: Vec<(&str, Vec<Rect>)> = vec![
        ("zero-area", vec![Rect::new(8, 8, 0, 0)]),
        ("zero-width", vec![Rect::new(8, 8, 0, 16)]),
        ("off-grid", vec![Rect::new(3, 5, 17, 11)]),
        ("image-spanning", vec![Rect::new(0, 0, w, h)]),
        (
            "overlapping",
            vec![Rect::new(0, 0, 24, 24), Rect::new(16, 16, 24, 24)],
        ),
        ("out-of-bounds", vec![Rect::new(w - 8, h - 8, 16, 16)]),
        ("far-out-of-bounds", vec![Rect::new(10_000, 10_000, 8, 8)]),
    ];
    let key = OwnerKey::from_seed([13u8; 32]);
    let mut run_one = |name: String, rects: &[Rect]| {
        let case = format!("fuzz/roi/{name}");
        let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
        let outcome = catches_panic(|| protect(&img, rects, &key, &opts));
        match outcome {
            Err(payload) => report.fail(case, format!("protect panicked: {payload}")),
            Ok(Err(e)) => report.pass(case, Some(format!("cleanly rejected: {e}"))),
            Ok(Ok(protected)) => {
                // Accepted: the exact-recovery oracle must hold.
                let reference = CoeffImage::from_rgb(&img, opts.quality);
                match recover(&protected, &key.grant_all()) {
                    Ok(back) if back == reference => {
                        report.pass(case, Some("accepted, round-trip exact".into()))
                    }
                    Ok(_) => report.fail(case, "accepted but round-trip is not exact"),
                    Err(e) => report.fail(case, format!("accepted but recover failed: {e}")),
                }
            }
        }
    };
    for (name, rects) in &crafted {
        run_one((*name).into(), rects);
    }
    for case_no in 0..cfg.roi_cases {
        // Random rectangles biased toward edges and degeneracy.
        let n = rng.gen_range(1..=3usize);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                Rect::new(
                    rng.gen_range(0..=w + 16),
                    rng.gen_range(0..=h + 16),
                    rng.gen_range(0..=w + 8),
                    rng.gen_range(0..=h + 8),
                )
            })
            .collect();
        run_one(format!("random{case_no}_{rects:?}"), &rects);
    }
}

/// Campaign 3: mutated params bytes parse or fail cleanly.
pub fn params_campaign(cfg: &FuzzConfig, rng: &mut ChaCha20Rng, report: &mut Report) {
    let img = small_image(3);
    let key = OwnerKey::from_seed([29u8; 32]);
    let opts = ProtectOptions::new(Scheme::Base, PrivacyLevel::Medium);
    let protected = protect(&img, &[Rect::new(8, 8, 16, 16)], &key, &opts).expect("fuzz protect");
    let wire = protected.params.to_bytes();
    let mut panics = 0usize;
    for case_no in 0..cfg.params_cases {
        let mut bytes = wire.clone();
        for _ in 0..rng.gen_range(1..=6usize) {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= rng.gen_range(1..=255u64) as u8;
        }
        if rng.gen_range(0..3u32) == 0 {
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        if let Err(payload) = catches_panic(|| {
            let _ = PublicParams::from_bytes(&bytes);
        }) {
            panics += 1;
            write_corpus_case(
                cfg,
                report,
                "params",
                case_no,
                &bytes,
                &format!(
                    "PublicParams::from_bytes panic: {payload}\nseed {:#x} case {case_no}\n",
                    cfg.seed
                ),
            );
            report.fail(
                format!("fuzz/params/case{case_no}"),
                format!("parser panicked: {payload}"),
            );
        }
    }
    if panics == 0 {
        report.pass(
            "fuzz/params",
            Some(format!(
                "{} mutated params buffers, 0 panics",
                cfg.params_cases
            )),
        );
    }
}

/// Campaign 4: worker-count invariance — protect and recover must not
/// depend on the pool width.
pub fn worker_campaign(cfg: &FuzzConfig, rng: &mut ChaCha20Rng, report: &mut Report) {
    for case_no in 0..cfg.worker_cases {
        let case = format!("fuzz/workers/case{case_no}");
        let img = small_image(rng.gen_range(0..=255u64));
        let mut seed = [0u8; 32];
        for b in seed.iter_mut() {
            *b = rng.gen_range(0..=255u64) as u8;
        }
        let key = OwnerKey::from_seed(seed);
        let scheme = match rng.gen_range(0..4u32) {
            0 => Scheme::Naive,
            1 => Scheme::Base,
            2 => Scheme::Compression,
            _ => Scheme::Zero,
        };
        let opts = ProtectOptions::new(scheme, PrivacyLevel::Medium);
        let rois = [Rect::new(8, 8, 16, 16), Rect::new(24, 24, 16, 8)];
        let serial_pool = WorkerPool::new(1);
        let serial = with_pool(&serial_pool, || protect(&img, &rois, &key, &opts));
        let wide_pool = WorkerPool::new(3);
        let wide = with_pool(&wide_pool, || protect(&img, &rois, &key, &opts));
        match (serial, wide) {
            (Ok(a), Ok(b)) => {
                if a.bytes == b.bytes && a.params.to_bytes() == b.params.to_bytes() {
                    report.pass(
                        case,
                        Some(format!("{scheme:?}: 1 vs 3 workers byte-identical")),
                    );
                } else {
                    report.fail(case, format!("{scheme:?}: output depends on worker count"));
                }
            }
            (a, b) => report.fail(
                case,
                format!(
                    "protect outcome differs by pool: 1 worker ok={}, 3 workers ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            ),
        }
    }
}

/// Campaign 5: differential entropy decode — the 8-bit lookahead LUT in
/// `HuffDecoder::decode` must agree with the canonical bitwise
/// `decode_bitwise` walk on every stream. Each case builds a valid scan
/// fragment (random table symbols, each followed by its magnitude-bit
/// payload, exactly like a real scan), usually corrupts it with byte flips
/// and/or truncation, then lock-steps the two decoders over separate
/// `BitReader`s: every symbol, every payload word, and the accept/reject
/// boundary must match. Payload reads double as position checks — a decoder
/// that consumed the wrong number of code bits desynchronizes immediately.
pub fn entropy_campaign(cfg: &FuzzConfig, rng: &mut ChaCha20Rng, report: &mut Report) {
    use puppies_jpeg::huffman::{BitReader, BitWriter, HuffDecoder, HuffEncoder, HuffTable};
    let tables = [
        ("dc_luma", HuffTable::std_dc_luma()),
        ("dc_chroma", HuffTable::std_dc_chroma()),
        ("ac_luma", HuffTable::std_ac_luma()),
        ("ac_chroma", HuffTable::std_ac_chroma()),
    ];
    let mut mismatches = 0usize;
    let mut mutated = 0usize;
    for case_no in 0..cfg.entropy_cases {
        let (tname, table) = &tables[rng.gen_range(0..tables.len())];
        let enc = HuffEncoder::new(table);
        let dec = HuffDecoder::new(table);
        // A valid stream over the table's real alphabet. The payload size
        // field is the low nibble for AC tables and the symbol itself for
        // DC tables; both are <= 11, so the low nibble & cap works for all.
        let symbols: Vec<u8> = (0..rng.gen_range(16..=96usize))
            .map(|_| {
                let vals = table.values();
                vals[rng.gen_range(0..vals.len())]
            })
            .collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.emit(&mut w, s)
                .expect("standard table covers its values");
            let size = (s & 0x0F).min(11) as u32;
            if size > 0 {
                w.put(rng.gen_range(0..(1u64 << size)) as u32, size);
            }
        }
        let mut bytes = w.finish();
        // Usually corrupt; keep some pristine streams as a control.
        if rng.gen_range(0..8u32) != 0 {
            mutated += 1;
            for _ in 0..rng.gen_range(1..=4usize) {
                let len = bytes.len();
                bytes[rng.gen_range(0..len)] ^= rng.gen_range(1..=255u64) as u8;
            }
            if rng.gen_range(0..4u32) == 0 {
                bytes.truncate(rng.gen_range(0..=bytes.len()));
            }
        }
        let mut r_lut = BitReader::new(&bytes);
        let mut r_bit = BitReader::new(&bytes);
        let mut divergence = None;
        for step in 0..symbols.len() + 8 {
            match (dec.decode(&mut r_lut), dec.decode_bitwise(&mut r_bit)) {
                (Ok(a), Ok(b)) if a == b => {
                    let size = (a & 0x0F).min(11) as u32;
                    if size > 0 {
                        let pa = r_lut.bits(size);
                        let pb = r_bit.bits(size);
                        match (pa, pb) {
                            (Ok(x), Ok(y)) if x == y => {}
                            (Err(_), Err(_)) => break,
                            (x, y) => {
                                divergence =
                                    Some(format!("payload at step {step}: {x:?} vs {y:?}"));
                                break;
                            }
                        }
                    }
                }
                (Ok(a), Ok(b)) => {
                    divergence = Some(format!("symbol at step {step}: {a:#04x} vs {b:#04x}"));
                    break;
                }
                (Err(_), Err(_)) => break, // same rejection point: agreement
                (a, b) => {
                    divergence = Some(format!("outcome at step {step}: {a:?} vs {b:?}"));
                    break;
                }
            }
        }
        if let Some(why) = divergence {
            mismatches += 1;
            let description = format!(
                "LUT vs bitwise Huffman decode diverged: {why}\ntable {tname}, seed {:#x} case {case_no}\nreproduce: lock-step HuffDecoder::decode and decode_bitwise over the .bin bytes\n",
                cfg.seed
            );
            write_corpus_case(cfg, report, "entropy", case_no, &bytes, &description);
            report.fail(format!("fuzz/entropy/case{case_no}"), description);
        }
    }
    if mismatches == 0 {
        report.pass(
            "fuzz/entropy",
            Some(format!(
                "{} streams ({} corrupted): LUT and bitwise decodes agreed throughout",
                cfg.entropy_cases, mutated
            )),
        );
    }
}

/// Runs every campaign with the given config.
pub fn run_fuzz(cfg: &FuzzConfig) -> Report {
    let mut report = Report::new();
    let mut rng = ChaCha20Rng::seed_from_u64(cfg.seed);
    bitstream_campaign(cfg, &mut rng, &mut report);
    roi_campaign(cfg, &mut rng, &mut report);
    params_campaign(cfg, &mut rng, &mut report);
    worker_campaign(cfg, &mut rng, &mut report);
    entropy_campaign(cfg, &mut rng, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_green_and_deterministic() {
        let cfg = FuzzConfig {
            seed: 42,
            bitstream_cases: 6,
            roi_cases: 4,
            params_cases: 8,
            worker_cases: 1,
            entropy_cases: 12,
            corpus_dir: None,
        };
        let a = run_fuzz(&cfg);
        assert!(a.is_ok(), "{}", a.render());
        let b = run_fuzz(&cfg);
        assert_eq!(
            a.render(),
            b.render(),
            "fuzz campaign must be deterministic for a fixed seed"
        );
    }

    #[test]
    fn minimizer_shrinks_a_truncation() {
        // A synthetic panicking predicate is hard to fabricate without a
        // decoder bug, so exercise the minimizer's invariant instead: on a
        // non-panicking case it must terminate and preserve behavior.
        let case = BitstreamCase {
            image_seed: 1,
            flips: vec![(100, 0x40), (200, 0x01)],
            cut: usize::MAX,
        };
        assert!(!decoder_panics(&case));
    }
}
