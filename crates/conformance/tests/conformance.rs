//! The full conformance harness as an integration test: golden vectors,
//! the complete oracle matrix, the differential suite, and a fuzz
//! campaign. `cargo test -p puppies-conformance` is therefore equivalent
//! to `cargo run -p puppies-cli -- conformance` (minus corpus output,
//! which tests keep in a temp dir to avoid dirtying the tree on failure).

use std::path::PathBuf;

use puppies_conformance::{differential, fuzz, golden, oracle, report::CaseStatus};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[test]
fn golden_vectors_match_committed_outputs() {
    let report = golden::check(&golden_dir());
    assert!(report.is_ok(), "{}", report.render());
    // The committed set is non-trivial: fixture + manifest + codec,
    // protect, and transform families.
    assert!(report.passed() >= 20, "{}", report.render());
}

#[test]
fn oracle_matrix_full() {
    let m = oracle::Matrix::default();
    let report = oracle::run_matrix(&m);
    assert!(report.is_ok(), "{}", report.render());
    // Shape check: the matrix must actually be the advertised cartesian
    // product (one case per cell, pass or documented skip).
    let cells = m.transformations.len() * m.roi_sets.len() * m.settings.len();
    assert_eq!(report.cases.len(), cells, "{}", report.render());
    // Exact recovery must dominate: every coeff-domain lossless cell.
    let exact = report
        .cases
        .iter()
        .filter(|c| c.detail.as_deref() == Some("coefficient-exact"))
        .count();
    assert!(
        exact >= 100,
        "too few exact cells ({exact}):\n{}",
        report.render()
    );
    // Pixel-domain bounds are only asserted under the transform-friendly
    // profile; everything else must be a documented skip, not silence.
    let skips = report
        .cases
        .iter()
        .filter(|c| matches!(c.status, CaseStatus::Skipped(_)))
        .count();
    assert!(skips > 0, "expected documented skips:\n{}", report.render());
}

#[test]
fn differential_suite() {
    let report = differential::run_differential();
    assert!(report.is_ok(), "{}", report.render());
}

#[test]
fn fuzz_campaign_seeded() {
    let corpus = std::env::temp_dir().join(format!("puppies-corpus-{}", std::process::id()));
    let cfg = fuzz::FuzzConfig {
        corpus_dir: Some(corpus.clone()),
        ..fuzz::FuzzConfig::default()
    };
    let report = fuzz::run_fuzz(&cfg);
    assert!(report.is_ok(), "{}", report.render());
    let _ = std::fs::remove_dir_all(&corpus);
}
