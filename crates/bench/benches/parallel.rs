//! Worker-pool scaling: the full protect pipeline (forward DCT, ROI
//! perturbation, entropy encode) and its pieces, serial vs pooled at 1, 2,
//! 4 and 8 workers. The acceptance target is ≥2× protect throughput at 4
//! workers on a 4-core machine; on fewer cores the extra worker counts
//! just document the plateau.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use puppies_bench::pascal_image;
use puppies_core::parallel::{with_pool, WorkerPool};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rois(img_w: u32, img_h: u32) -> Vec<Rect> {
    // Two disjoint block-aligned regions, like a two-face photo.
    let _ = img_h;
    vec![Rect::new(16, 16, 96, 96), Rect::new(img_w / 2, 32, 96, 96)]
}

fn bench_protect_scaling(c: &mut Criterion) {
    let img = pascal_image();
    let key = OwnerKey::from_seed([1u8; 32]);
    let opts = ProtectOptions::default();
    let rois = rois(img.width(), img.height());

    let mut group = c.benchmark_group("protect_scaling");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        let pool = WorkerPool::new(1);
        with_pool(&pool, || {
            b.iter(|| protect(&img, &rois, &key, &opts).expect("protect"))
        })
    });
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(BenchmarkId::new("pooled", workers), &workers, |b, _| {
            with_pool(&pool, || {
                b.iter(|| protect(&img, &rois, &key, &opts).expect("protect"))
            })
        });
    }
    group.finish();
}

fn bench_dct_scaling(c: &mut Criterion) {
    let img = pascal_image();
    let mut group = c.benchmark_group("fdct_scaling");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(BenchmarkId::new("from_rgb", workers), &workers, |b, _| {
            with_pool(&pool, || b.iter(|| CoeffImage::from_rgb(&img, 75)))
        });
    }
    group.finish();
}

fn bench_encode_scaling(c: &mut Criterion) {
    let img = pascal_image();
    let coeff = CoeffImage::from_rgb(&img, 75);
    let opts = puppies_jpeg::EncodeOptions::optimized();
    let mut group = c.benchmark_group("encode_scaling");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let pool = WorkerPool::new(workers);
        group.bench_with_input(BenchmarkId::new("encode", workers), &workers, |b, _| {
            with_pool(&pool, || b.iter(|| coeff.encode(&opts).expect("encode")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_protect_scaling,
    bench_dct_scaling,
    bench_encode_scaling
);
criterion_main!(benches);
