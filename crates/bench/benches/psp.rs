//! PSP serving-path benchmarks: the operations `bench psp` drives in a
//! closed loop, isolated here per-operation under criterion so regressions
//! pinpoint to a path (zero-copy download vs transform cache vs full
//! pipeline) rather than a workload mix.

use criterion::{criterion_group, criterion_main, Criterion};
use puppies_bench::pascal_image;
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::Rect;
use puppies_psp::{PspConfig, PspServer};
use puppies_transform::{ScaleFilter, Transformation};

/// A protected JPEG + params pair at the paper's typical resolution.
fn protected_fixture() -> (Vec<u8>, Vec<u8>) {
    let img = pascal_image();
    let roi = Rect::new(100, 80, 160, 120);
    let key = OwnerKey::from_seed([0x51; 32]);
    let out = protect(&img, &[roi], &key, &ProtectOptions::default()).expect("protect fixture");
    (out.bytes, out.params.to_bytes())
}

fn bench_store_paths(c: &mut Criterion) {
    let (jpeg, params) = protected_fixture();
    let server = PspServer::new();
    let id = server
        .upload(jpeg.clone(), params.clone())
        .expect("upload fixture");

    let mut group = c.benchmark_group("psp_store");
    // Zero-copy download: Arc clone + request-log append, no byte copy.
    group.bench_function("download_zero_copy", |b| {
        b.iter(|| server.download(id).expect("download"))
    });
    group.bench_function("download_params", |b| {
        b.iter(|| server.download_params(id).expect("params"))
    });
    group.sample_size(20);
    group.bench_function("upload_ingest", |b| {
        b.iter(|| {
            let fresh = PspServer::new();
            fresh.upload(jpeg.clone(), params.clone()).expect("upload")
        })
    });
    group.finish();
}

fn bench_transform_paths(c: &mut Criterion) {
    let (jpeg, params) = protected_fixture();
    let t = Transformation::Scale {
        width: 320,
        height: 240,
        filter: ScaleFilter::Bilinear,
    };

    let mut group = c.benchmark_group("psp_transform");
    group.sample_size(10);

    // Cold path: cache + memo disabled, every request runs decode +
    // transform + encode. This is the pre-PR cost per view.
    let cold = PspServer::with_config(PspConfig::uncached());
    let cold_id = cold
        .upload(jpeg.clone(), params.clone())
        .expect("upload cold");
    group.bench_function("download_transformed_uncached", |b| {
        b.iter(|| cold.download_transformed(cold_id, &t).expect("cold view"))
    });

    // Hot path: first request populates the content-addressed cache, every
    // iteration after that is a key hash + Arc clone.
    let hot = PspServer::new();
    let hot_id = hot.upload(jpeg, params).expect("upload hot");
    hot.download_transformed(hot_id, &t).expect("warm cache");
    group.bench_function("download_transformed_cached", |b| {
        b.iter(|| hot.download_transformed(hot_id, &t).expect("hot view"))
    });
    group.finish();
}

criterion_group!(benches, bench_store_paths, bench_transform_paths);
criterion_main!(benches);
