//! Wire-path benchmarks: the same per-operation costs `benches/psp.rs`
//! measures in-process, re-measured through a real `net::Server` on
//! loopback TCP. The difference between the two files is the price of
//! the service boundary — HTTP parse, length framing, thread handoff —
//! which the `bench psp --net` gate bounds in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use puppies_bench::pascal_image;
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::Rect;
use puppies_psp::net::{Client, ServeConfig, Server};
use puppies_psp::PspConfig;
use puppies_transform::{ScaleFilter, Transformation};

fn protected_fixture() -> (Vec<u8>, Vec<u8>) {
    let img = pascal_image();
    let roi = Rect::new(100, 80, 160, 120);
    let key = OwnerKey::from_seed([0x51; 32]);
    let out = protect(&img, &[roi], &key, &ProtectOptions::default()).expect("protect fixture");
    (out.bytes, out.params.to_bytes())
}

/// Boots a server on an ephemeral port over a throwaway store (fsync off
/// — the wire, not the disk, is under test) and returns a connected
/// client plus the admin token for shutdown.
struct Wire {
    client: Client,
    admin: String,
    dir: std::path::PathBuf,
    thread: std::thread::JoinHandle<puppies_psp::Result<()>>,
}

fn boot() -> Wire {
    let dir = std::env::temp_dir().join(format!("puppies_crit_net_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.clone(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || server.run());
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .expect("admin token")
        .trim()
        .to_string();
    let client = Client::connect(&addr).expect("connect");
    Wire {
        client,
        admin,
        dir,
        thread,
    }
}

impl Wire {
    fn stop(mut self) {
        self.client.shutdown(&self.admin).expect("shutdown");
        self.thread.join().expect("join").expect("server");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn bench_wire_paths(c: &mut Criterion) {
    let (jpeg, params) = protected_fixture();
    let mut wire = boot();
    let receipt = wire.client.upload(&jpeg, &params).expect("upload");
    let t = Transformation::Scale {
        width: 320,
        height: 240,
        filter: ScaleFilter::Bilinear,
    };
    // Warm the transform cache so `transformed_cached` measures hits.
    wire.client
        .download_transformed(receipt.id, &t)
        .expect("warm cache");

    let mut group = c.benchmark_group("psp_wire");
    group.bench_function("health", |b| {
        b.iter(|| wire.client.health().expect("health"))
    });
    group.bench_function("download", |b| {
        b.iter(|| wire.client.download(receipt.id).expect("download"))
    });
    group.bench_function("download_params", |b| {
        b.iter(|| wire.client.download_params(receipt.id).expect("params"))
    });
    group.bench_function("transformed_cached", |b| {
        b.iter(|| {
            wire.client
                .download_transformed(receipt.id, &t)
                .expect("cached view")
        })
    });
    group.sample_size(20);
    group.bench_function("upload", |b| {
        b.iter(|| wire.client.upload(&jpeg, &params).expect("upload"))
    });
    group.finish();
    wire.stop();
}

criterion_group!(benches, bench_wire_paths);
criterion_main!(benches);
