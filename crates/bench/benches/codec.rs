//! JPEG codec kernel benchmarks: DCT, quantization, entropy coding and
//! the full encode/decode paths that every experiment leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use puppies_bench::pascal_image;
use puppies_jpeg::{dct, CoeffImage, EncodeOptions, HuffmanMode, QuantTable};

fn bench_dct(c: &mut Criterion) {
    let mut block = [0.0f32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i * 37) % 255) as f32 - 128.0;
    }
    c.bench_function("dct_forward_8x8", |b| b.iter(|| dct::forward(&block)));
    let freq = dct::forward(&block);
    c.bench_function("dct_inverse_8x8", |b| b.iter(|| dct::inverse(&freq)));
    // The AAN scaled pair the production codec actually runs.
    c.bench_function("dct_forward_scaled_8x8", |b| {
        b.iter(|| dct::forward_scaled(&block))
    });
    let scaled = dct::forward_scaled(&block);
    c.bench_function("dct_inverse_scaled_8x8", |b| {
        b.iter(|| dct::inverse_scaled(&scaled))
    });
}

fn bench_quant(c: &mut Criterion) {
    let table = QuantTable::luma(75);
    let mut raw = [0.0f32; 64];
    for (i, v) in raw.iter_mut().enumerate() {
        *v = (i as f32 * 13.7) - 400.0;
    }
    c.bench_function("quantize_block", |b| b.iter(|| table.quantize(&raw)));
    let q = table.quantize(&raw);
    c.bench_function("dequantize_block", |b| b.iter(|| table.dequantize(&q)));
    // Folded (AAN-descaled) variants on the same coefficients.
    let folded = table.folded();
    let mut block = [0.0f32; 64];
    block.copy_from_slice(&raw);
    let scaled = dct::forward_scaled(&block);
    c.bench_function("quantize_scaled_block", |b| {
        b.iter(|| folded.quantize_scaled(&scaled))
    });
    let qs = folded.quantize_scaled(&scaled);
    c.bench_function("dequantize_scaled_block", |b| {
        b.iter(|| folded.dequantize_scaled(&qs))
    });
}

fn bench_full_codec(c: &mut Criterion) {
    let img = pascal_image();
    let mut group = c.benchmark_group("full_codec");
    group.sample_size(10);
    group.bench_function("forward_transform_pascal", |b| {
        b.iter(|| CoeffImage::from_rgb(&img, 75))
    });
    let coeff = CoeffImage::from_rgb(&img, 75);
    for (name, mode) in [
        ("encode_standard", HuffmanMode::Standard),
        ("encode_optimized", HuffmanMode::Optimized),
    ] {
        let mut opts = EncodeOptions::default();
        opts.huffman = mode;
        group.bench_function(name, |b| b.iter(|| coeff.encode(&opts).expect("encode")));
    }
    let bytes = coeff.encode(&EncodeOptions::default()).expect("encode");
    group.bench_function("decode_pascal", |b| {
        b.iter(|| CoeffImage::decode(&bytes).expect("decode"))
    });
    group.bench_function("idct_to_rgb_pascal", |b| b.iter(|| coeff.to_rgb()));
    group.finish();
}

fn bench_p3_split(c: &mut Criterion) {
    let img = pascal_image();
    let coeff = CoeffImage::from_rgb(&img, 75);
    let mut group = c.benchmark_group("p3");
    group.sample_size(10);
    group.bench_function("split_pascal", |b| {
        b.iter(|| puppies_p3::P3Split::of(&coeff))
    });
    let split = puppies_p3::P3Split::of(&coeff);
    group.bench_function("reconstruct_pascal", |b| {
        b.iter(|| puppies_p3::reconstruct(&split.public, &split.private).expect("reconstruct"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dct,
    bench_quant,
    bench_full_codec,
    bench_p3_split
);
criterion_main!(benches);
