//! Table V benchmarks: whole-image perturbation and recovery per scheme,
//! on PASCAL- and (reduced) INRIA-profile images.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use puppies_bench::{inria_image, pascal_image};
use puppies_core::perturb::{perturb_roi, recover_roi, RoiKeys};
use puppies_core::{OwnerKey, PerturbProfile, PrivacyLevel, Scheme};
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;

fn keys() -> Vec<RoiKeys> {
    let key = OwnerKey::from_seed([1u8; 32]);
    let grant = key.grant_all();
    (0..3)
        .map(|c| RoiKeys::from_grant(&grant, 0, 0, c).expect("keys"))
        .collect()
}

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("perturb_whole_image");
    group.sample_size(20);
    for (name, img) in [("pascal", pascal_image()), ("inria_half", inria_image())] {
        let coeff = CoeffImage::from_rgb(&img, 75);
        let whole = Rect::new(0, 0, coeff.width(), coeff.height());
        let keys = keys();
        for scheme in [Scheme::Base, Scheme::Compression, Scheme::Zero] {
            let profile = PerturbProfile::paper(scheme, PrivacyLevel::Medium);
            group.bench_with_input(BenchmarkId::new(scheme.name(), name), &coeff, |b, coeff| {
                b.iter(|| {
                    let mut work = coeff.clone();
                    perturb_roi(&mut work, whole, &keys, &profile).expect("perturb")
                })
            });
        }
    }
    group.finish();
}

fn bench_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("recover_whole_image");
    group.sample_size(20);
    let img = pascal_image();
    let coeff = CoeffImage::from_rgb(&img, 75);
    let whole = Rect::new(0, 0, coeff.width(), coeff.height());
    let keys = keys();
    for scheme in [Scheme::Compression, Scheme::Zero] {
        let profile = PerturbProfile::paper(scheme, PrivacyLevel::Medium);
        let mut perturbed = coeff.clone();
        let record = perturb_roi(&mut perturbed, whole, &keys, &profile).expect("perturb");
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut work = perturbed.clone();
                recover_roi(&mut work, whole, &keys, &profile, &record.zind).expect("recover");
                work
            })
        });
    }
    group.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_planes");
    group.sample_size(20);
    let img = pascal_image();
    let key = OwnerKey::from_seed([1u8; 32]);
    let opts = puppies_core::ProtectOptions::from_profile(PerturbProfile::transform_friendly());
    let whole = Rect::new(0, 0, img.width(), img.height());
    let protected = puppies_core::protect(&img, &[whole], &key, &opts).expect("protect");
    group.bench_function("pascal_whole", |b| {
        b.iter(|| {
            puppies_core::shadow::shadow_planes(&protected.params, &key.grant_all(), 3)
                .expect("shadow")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_recover, bench_shadow);
criterion_main!(benches);
