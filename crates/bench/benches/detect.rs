//! §V-C benchmarks: the ROI detector stack (the paper reports object
//! detection dominating at >99% of 3.85 s/image).

use criterion::{criterion_group, criterion_main, Criterion};
use puppies_bench::pascal_image;
use puppies_vision::detect::{recommend_rois, RecommendParams};
use puppies_vision::edges::{canny, CannyParams};
use puppies_vision::face::{detect_faces, FaceDetectorParams};
use puppies_vision::objectness::{propose_objects, ObjectnessParams};
use puppies_vision::sift::{extract_sift, SiftParams};
use puppies_vision::text::{detect_text_blocks, TextDetectorParams};

fn bench_detectors(c: &mut Criterion) {
    let img = pascal_image();
    let gray = img.to_gray();
    let mut group = c.benchmark_group("roi_detection");
    group.sample_size(10);
    group.bench_function("face", |b| {
        b.iter(|| detect_faces(&gray, &FaceDetectorParams::default()))
    });
    group.bench_function("text", |b| {
        b.iter(|| detect_text_blocks(&gray, &TextDetectorParams::default()))
    });
    group.bench_function("objectness", |b| {
        b.iter(|| propose_objects(&gray, &ObjectnessParams::default()))
    });
    group.bench_function("full_recommendation", |b| {
        b.iter(|| recommend_rois(&img, &RecommendParams::default()))
    });
    group.finish();
}

fn bench_attack_kernels(c: &mut Criterion) {
    let img = pascal_image();
    let gray = img.to_gray();
    let mut group = c.benchmark_group("attack_kernels");
    group.sample_size(10);
    group.bench_function("canny", |b| {
        b.iter(|| canny(&gray, &CannyParams::default()))
    });
    group.bench_function("sift_extract", |b| {
        b.iter(|| extract_sift(&gray, &SiftParams::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_attack_kernels);
criterion_main!(benches);
