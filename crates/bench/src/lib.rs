//! Shared fixtures for the Criterion benchmarks.

use puppies_datasets::{generate_one, DatasetProfile};
use puppies_image::RgbImage;

/// A deterministic PASCAL-profile image at the paper's typical resolution.
pub fn pascal_image() -> RgbImage {
    generate_one(DatasetProfile::pascal().with_count(1), 0xBE7C, 0).image
}

/// A deterministic reduced-resolution INRIA-profile image (keeps bench
/// wall time sane; Table V reports the full-resolution numbers).
pub fn inria_image() -> RgbImage {
    generate_one(
        DatasetProfile::inria()
            .with_count(1)
            .with_resolution(612, 816),
        0xBE7C,
        0,
    )
    .image
}
