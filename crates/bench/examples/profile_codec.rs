//! Stage-by-stage codec timing on the pascal fixture (single thread),
//! driven entirely by the `puppies-obs` span layer: the codec's built-in
//! spans feed histograms, and the best (minimum) observation per stage
//! replaces the bespoke best-of-N stopwatch this example used to carry.
//!
//! Pass a file path to also dump the Chrome `trace_event` timeline:
//!
//! ```text
//! cargo run --release -p puppies-bench --example profile_codec -- trace.json
//! ```

use puppies_bench::pascal_image;
use puppies_jpeg::{dct, CoeffImage, EncodeOptions, QuantTable};

const ITERS: usize = 5;
const KERNEL_ITERS: usize = 100_000;

fn main() {
    let pool = puppies_core::parallel::WorkerPool::new(1);
    let session = puppies_obs::Obs::install();
    puppies_core::parallel::with_pool(&pool, || {
        let img = pascal_image();
        let lq = QuantTable::luma(75);
        let coeff = CoeffImage::from_rgb(&img, 75);
        let bytes = coeff.encode(&EncodeOptions::default()).unwrap();

        // Composite passes: the library's own spans (jpeg.fwd_transform,
        // jpeg.fdct_quant, jpeg.encode, jpeg.entropy_encode, jpeg.decode,
        // jpeg.entropy_decode, jpeg.idct, ...) record every stage.
        for _ in 0..ITERS {
            let c = CoeffImage::from_rgb(&img, 75);
            std::hint::black_box(c.encode(&EncodeOptions::default()).unwrap());
            std::hint::black_box(CoeffImage::decode(&bytes).unwrap().to_rgb());
        }
        // Single-plane stages, timed the same way.
        let planes = img.to_ycbcr_planes();
        for _ in 0..ITERS {
            let _s = puppies_obs::span!("profile.from_plane_luma");
            std::hint::black_box(puppies_jpeg::coeff::Component::from_plane(
                1,
                &planes[0],
                lq.clone(),
            ));
        }
        let comp = &coeff.components()[0];
        for _ in 0..ITERS {
            let _s = puppies_obs::span!("profile.to_plane_luma");
            std::hint::black_box(comp.to_plane());
        }

        // Raw kernel rates: one span wraps a whole batch; ns/block is the
        // batch minimum divided by the iteration count.
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 128.0;
        }
        {
            let _s = puppies_obs::span!("kernel.forward");
            for _ in 0..KERNEL_ITERS {
                std::hint::black_box(dct::forward(std::hint::black_box(&block)));
            }
        }
        {
            let _s = puppies_obs::span!("kernel.forward_scaled");
            for _ in 0..KERNEL_ITERS {
                std::hint::black_box(dct::forward_scaled(std::hint::black_box(&block)));
            }
        }
        let folded = lq.folded();
        let scaled = dct::forward_scaled(&block);
        {
            let _s = puppies_obs::span!("kernel.folded_quantize");
            for _ in 0..KERNEL_ITERS {
                std::hint::black_box(folded.quantize_scaled(std::hint::black_box(&scaled)));
            }
        }
    });

    let obs = session.finish().expect("bench session still installed");
    let snap = obs.metrics().snapshot();
    for (name, h) in &snap.histograms {
        if let Some(stage) = name.strip_prefix("kernel.") {
            println!(
                "{stage:<20} {:8.1} ns/block",
                h.min as f64 / KERNEL_ITERS as f64
            );
        } else {
            // Best-of over the recorded samples, like the old stopwatch.
            println!(
                "{name:<22} {:8.3} ms best  {:8.3} ms p50  ({} samples)",
                h.min as f64 / 1e6,
                h.p50 / 1e6,
                h.count
            );
        }
    }
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, obs.chrome_trace()).expect("writing trace file");
        eprintln!("trace written to {path}");
    }
}
