//! Stage-by-stage codec timing on the pascal fixture (single thread).

use puppies_bench::pascal_image;
use puppies_jpeg::{dct, CoeffImage, EncodeOptions, QuantTable};
use std::time::Instant;

fn best<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let pool = puppies_core::parallel::WorkerPool::new(1);
    puppies_core::parallel::with_pool(&pool, || {
        let img = pascal_image();
        let t_ycbcr = best(5, || img.to_ycbcr_planes());
        println!("to_ycbcr_planes:    {t_ycbcr:8.3} ms");

        let planes = img.to_ycbcr_planes();
        let lq = QuantTable::luma(75);
        let t_fplane = best(5, || {
            puppies_jpeg::coeff::Component::from_plane(1, &planes[0], lq.clone())
        });
        println!("from_plane (luma):  {t_fplane:8.3} ms");

        let t_fwd = best(5, || CoeffImage::from_rgb(&img, 75));
        println!("from_rgb total:     {t_fwd:8.3} ms");

        let coeff = CoeffImage::from_rgb(&img, 75);
        let t_enc = best(5, || coeff.encode(&EncodeOptions::default()).unwrap());
        println!("entropy encode:     {t_enc:8.3} ms");

        let bytes = coeff.encode(&EncodeOptions::default()).unwrap();
        let t_dec = best(5, || CoeffImage::decode(&bytes).unwrap());
        println!("entropy decode:     {t_dec:8.3} ms");

        let t_enc_full = best(5, || {
            CoeffImage::from_rgb(&img, 75)
                .encode(&EncodeOptions::default())
                .unwrap()
        });
        println!("composite encode:   {t_enc_full:8.3} ms");
        let t_dec_full = best(5, || CoeffImage::decode(&bytes).unwrap().to_rgb());
        println!("composite decode:   {t_dec_full:8.3} ms");

        let comp = &coeff.components()[0];
        let t_tplane = best(5, || comp.to_plane());
        println!("to_plane (luma):    {t_tplane:8.3} ms");

        let t_rgb = best(5, || coeff.to_rgb());
        println!("to_rgb total:       {t_rgb:8.3} ms");

        // Raw kernel rates.
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 128.0;
        }
        let n = 100_000;
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(dct::forward(std::hint::black_box(&block)));
        }
        println!(
            "reference forward:  {:8.1} ns/block",
            t.elapsed().as_secs_f64() * 1e9 / n as f64
        );
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(dct::forward_scaled(std::hint::black_box(&block)));
        }
        println!(
            "AAN forward_scaled: {:8.1} ns/block",
            t.elapsed().as_secs_f64() * 1e9 / n as f64
        );
        let folded = lq.folded();
        let scaled = dct::forward_scaled(&block);
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(folded.quantize_scaled(std::hint::black_box(&scaled)));
        }
        println!(
            "folded quantize:    {:8.1} ns/block",
            t.elapsed().as_secs_f64() * 1e9 / n as f64
        );
    });
}
