//! Log-linear histograms with atomic buckets.
//!
//! The bucket layout is the classic HdrHistogram-style log-linear grid:
//! values `0..16` get one bucket each (exact), and every power-of-two
//! range `[2^e, 2^(e+1))` above that is split into 16 linear sub-buckets,
//! up to `2^MAX_EXP` where the histogram saturates into one final
//! overflow bucket. Relative quantile error is therefore bounded by
//! 1/16 ≈ 6% everywhere below the saturation point, which is plenty for
//! p50/p95/p99 latency reporting, while the whole structure stays a flat
//! array of atomics — recording is one index computation plus four
//! relaxed atomic ops, with no locks and no allocation.
//!
//! Values are unitless `u64`s; the pipeline records nanoseconds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two range (and the size of the exact range).
const LINEAR: u64 = 16;
/// log2(LINEAR): exponents below this are covered by the exact buckets.
const LINEAR_BITS: u32 = 4;
/// First exponent whose range saturates into the overflow bucket.
/// `2^40` ns ≈ 18 minutes, far beyond any span this pipeline produces.
const MAX_EXP: u32 = 40;
/// Total bucket count: 16 exact + 16 per decade + 1 overflow.
pub(crate) const BUCKETS: usize =
    LINEAR as usize + (MAX_EXP - LINEAR_BITS) as usize * LINEAR as usize + 1;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    if e >= MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = (v >> (e - LINEAR_BITS)) & (LINEAR - 1);
    LINEAR as usize + (e - LINEAR_BITS) as usize * LINEAR as usize + sub as usize
}

/// Inclusive lower bound of bucket `i` (the smallest value that lands in it).
fn bucket_lo(i: usize) -> u64 {
    if i < LINEAR as usize {
        return i as u64;
    }
    if i == BUCKETS - 1 {
        return 1u64 << MAX_EXP;
    }
    let off = i - LINEAR as usize;
    let e = LINEAR_BITS + (off / LINEAR as usize) as u32;
    let sub = (off % LINEAR as usize) as u64;
    (1u64 << e) + sub * (1u64 << (e - LINEAR_BITS))
}

/// Exclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i < LINEAR as usize {
        return i as u64 + 1;
    }
    if i == BUCKETS - 1 {
        return u64::MAX;
    }
    let off = i - LINEAR as usize;
    let e = LINEAR_BITS + (off / LINEAR as usize) as u32;
    bucket_lo(i) + (1u64 << (e - LINEAR_BITS))
}

/// One-pass cumulative view of a histogram for exposition.
///
/// `buckets` holds `(le, cumulative)` pairs for every *occupied* bucket,
/// where `le` is the largest value that lands in the bucket (Prometheus'
/// inclusive upper bound — our buckets hold integers, so the inclusive
/// edge is `bucket_hi - 1`). The overflow bucket is folded into `count`
/// only: exposition renders it as `+Inf`. `count` is re-derived from the
/// bucket array in the same pass, so a renderer's `+Inf` sample can never
/// disagree with its `_count` even while other threads keep recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, cumulative count)`, ascending, occupied
    /// buckets only.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations as summed from the buckets.
    pub count: u64,
    /// Sum of observations at snapshot time.
    pub sum: u64,
}

/// A concurrent log-linear histogram. All operations are lock-free;
/// `record` is safe from any number of threads.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Folds another histogram (e.g. a per-thread shard) into this one.
    /// Quantiles of the merged histogram are exactly those of a histogram
    /// that recorded both value streams, since buckets are additive.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every bucket and summary statistic. Concurrent `record`s
    /// racing with a reset may survive partially (a bucket increment
    /// without its count, or vice versa) — callers using reset for
    /// rolling windows accept losing a handful of edge samples.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Cumulative bucket snapshot for exposition (see
    /// [`HistogramSnapshot`]). One pass over the bucket array; the
    /// returned `count` is the pass's own total so renderers stay
    /// internally consistent under concurrent recording.
    pub fn cumulative(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            sum: self.sum(),
            ..HistogramSnapshot::default()
        };
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            cum += c;
            if i < BUCKETS - 1 {
                out.buckets.push((bucket_hi(i) - 1, cum));
            }
        }
        out.count = cum;
        out
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the target bucket, clamped to the observed min/max so exact
    /// extremes are never overstated. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).max(1.0);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                let lo = bucket_lo(i) as f64;
                let hi = bucket_hi(i).min(self.max().max(1)) as f64;
                let frac = (rank - cum as f64) / c as f64;
                let est = lo + (hi.max(lo) - lo) * frac;
                return est.clamp(self.min() as f64, self.max() as f64);
            }
            cum += c;
        }
        self.max() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v + 1);
        }
    }

    #[test]
    fn boundary_values_land_in_their_own_range() {
        // Every power of two starts a fresh sub-bucket row, and the value
        // just below it belongs to the previous row's last sub-bucket.
        for e in LINEAR_BITS..MAX_EXP {
            let p = 1u64 << e;
            let at = bucket_index(p);
            let below = bucket_index(p - 1);
            assert_eq!(below + 1, at, "2^{e} must open a new bucket");
            assert_eq!(bucket_lo(at), p, "2^{e} is its bucket's lower bound");
            assert!(bucket_hi(below) == p, "previous bucket ends at 2^{e}");
        }
        // Within a row, sub-bucket width is 2^(e-4).
        let i = bucket_index(1024);
        assert_eq!(bucket_hi(i) - bucket_lo(i), 64);
    }

    #[test]
    fn saturation_at_max_bucket() {
        let h = Histogram::new();
        for v in [1u64 << MAX_EXP, (1u64 << MAX_EXP) + 12345, u64::MAX] {
            assert_eq!(bucket_index(v), BUCKETS - 1, "value {v}");
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        // The quantile of a fully saturated histogram reports the overflow
        // bucket's lower bound (clamped into min..max), not garbage.
        assert!(h.quantile(0.5) >= (1u64 << MAX_EXP) as f64);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            let err = (got - want).abs() / want;
            assert!(err < 0.08, "q{q}: got {got}, want ~{want} (err {err:.3})");
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_of_two_shards_matches_combined_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in 0..5_000u64 {
            a.record(v * 3 + 1);
            combined.record(v * 3 + 1);
        }
        for v in 0..5_000u64 {
            b.record(v * 7 + 2);
            combined.record(v * 7 + 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q{q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn cumulative_snapshot_is_monotone_and_complete() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 17, 900, 900, 1 << 41] {
            h.record(v);
        }
        let snap = h.cumulative();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 6 + 17 + 1800 + (1 << 41));
        // Occupied finite buckets only, ascending bounds, cumulative counts.
        let mut prev_le = 0;
        let mut prev_cum = 0;
        for &(le, cum) in &snap.buckets {
            assert!(le >= prev_le && cum >= prev_cum, "({le},{cum})");
            prev_le = le;
            prev_cum = cum;
        }
        // The overflow observation appears in count but not in any finite bucket.
        assert_eq!(snap.buckets.last().unwrap().1, 6);
        // The exact small values land at their inclusive bounds.
        assert_eq!(snap.buckets[0], (0, 1));
        assert_eq!(snap.buckets[1], (3, 3));
    }

    #[test]
    fn cumulative_snapshot_of_empty_histogram() {
        let h = Histogram::new();
        let snap = h.cumulative();
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.cumulative().buckets.is_empty());
        h.record(5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 5);
    }
}
