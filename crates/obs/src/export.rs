//! Exporters: the JSON stats snapshot (written by `--stats`, read by
//! `puppies stats`) and the Chrome `trace_event` file (written by
//! `--trace`, loadable in `about:tracing` or <https://ui.perfetto.dev>).
//!
//! Both formats are emitted and parsed by hand — the workspace has no
//! serde, and both schemas are small and ours.

use crate::metrics::{HistStats, MetricRegistry, MetricsSnapshot};
use crate::span::SpanRecord;
use std::fmt::Write as _;

/// Escapes `s` into a JSON string body (no surrounding quotes): `"`,
/// `\`, and all control characters, per RFC 8259.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders finished spans as a Chrome `trace_event` JSON document:
/// complete (`"ph":"X"`) events with microsecond timestamps, plus
/// thread-name metadata events so Perfetto labels each track.
pub fn chrome_trace(spans: &[SpanRecord], threads: &[(u64, String)], dropped: u64) -> String {
    let mut out = String::with_capacity(spans.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for (tid, name) in threads {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        );
    }
    for s in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
             \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"id\":{},\"parent\":{}}}}}",
            s.tid,
            s.ts_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
            escape_json(&s.name),
            escape_json(s.cat),
            s.id,
            s.parent
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"");
    if dropped > 0 {
        let _ = write!(out, ",\"otherData\":{{\"dropped_spans\":{dropped}}}");
    }
    out.push_str("}\n");
    out
}

/// Renders a metrics snapshot as the stats JSON document. Histogram
/// values are nanoseconds for span- and latency-derived entries (the
/// pipeline records ns); the document stores raw numbers and the pretty
/// printer scales for display.
pub fn stats_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"counters\": {");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {v}", escape_json(name));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {v}", escape_json(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}",
            escape_json(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p95,
            h.p99
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Parses a document produced by [`stats_json`] back into a snapshot.
/// A fixed-schema scanner in the same spirit as the bench JSON reader —
/// not a general JSON parser.
///
/// # Errors
/// Returns a description of the first malformed construct.
pub fn parse_stats_json(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    let section = |name: &str| -> Result<&str, String> {
        let key = format!("\"{name}\":");
        let start = text
            .find(&key)
            .ok_or_else(|| format!("no \"{name}\" section"))?;
        let body = &text[start + key.len()..];
        let open = body.find('{').ok_or_else(|| format!("bad {name}"))?;
        let mut depth = 0usize;
        for (i, c) in body[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(&body[open + 1..open + i]);
                    }
                }
                _ => {}
            }
        }
        Err(format!("unterminated {name}"))
    };
    for (name, value) in scan_entries(section("counters")?) {
        snap.counters.push((
            name,
            value
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad counter: {e}"))?,
        ));
    }
    for (name, value) in scan_entries(section("gauges")?) {
        snap.gauges.push((
            name,
            value
                .trim()
                .parse::<i64>()
                .map_err(|e| format!("bad gauge: {e}"))?,
        ));
    }
    for (name, value) in scan_entries(section("histograms")?) {
        let field = |f: &str| -> Result<f64, String> {
            let key = format!("\"{f}\":");
            let p = value
                .find(&key)
                .ok_or_else(|| format!("histogram {name}: no {f}"))?;
            let rest = value[p + key.len()..].trim_start();
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end]
                .parse::<f64>()
                .map_err(|e| format!("histogram {name}: bad {f}: {e}"))
        };
        snap.histograms.push((
            name.clone(),
            HistStats {
                count: field("count")? as u64,
                sum: field("sum")? as u64,
                min: field("min")? as u64,
                max: field("max")? as u64,
                p50: field("p50")?,
                p95: field("p95")?,
                p99: field("p99")?,
            },
        ));
    }
    Ok(snap)
}

/// Yields `(unescaped name, raw value text)` for each top-level
/// `"name": value` entry of an object body. Values end at a top-level
/// comma (or the end of the body); object values keep their braces.
fn scan_entries(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let bytes = body.as_bytes();
    while pos < body.len() {
        let Some(q0) = body[pos..].find('"').map(|i| pos + i) else {
            break;
        };
        // Find the unescaped closing quote.
        let mut i = q0 + 1;
        let mut q1 = None;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    q1 = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let Some(q1) = q1 else { break };
        let name = unescape_json(&body[q0 + 1..q1]);
        let Some(colon) = body[q1..].find(':').map(|i| q1 + i) else {
            break;
        };
        let value_start = colon + 1;
        let mut depth = 0i32;
        let mut end = body.len();
        for (i, c) in body[value_start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                ',' if depth == 0 => {
                    end = value_start + i;
                    break;
                }
                _ => {}
            }
        }
        out.push((name, body[value_start..end].trim().to_string()));
        pos = end + 1;
    }
    out
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

/// Maps a dotted metric name onto the Prometheus identifier charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots (and anything else illegal) become
/// underscores, and a leading digit gets an underscore prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and line feed.
pub fn escape_prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the Prometheus text format: backslash and
/// line feed only (quotes are legal in help text).
pub fn escape_prom_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders every metric in `reg` in the Prometheus text exposition
/// format (version 0.0.4, the `text/plain` scrape format).
///
/// * Counters gain the conventional `_total` suffix.
/// * Histograms render cumulative `le` buckets from the log-linear grid
///   (occupied buckets only — the grid has 593 cells, almost all empty),
///   always ending with `+Inf`, `_sum`, and `_count`; an empty histogram
///   still renders all three so scrapers see a well-formed family.
/// * The original dotted name is preserved in `# HELP` (escaped), so the
///   mapping back to `--stats` names is mechanical.
///
/// Values are raw (the pipeline records ns for spans, µs for request
/// latencies); unit suffixes in the metric name carry the unit.
pub fn prometheus_text(reg: &MetricRegistry) -> String {
    let snap = reg.snapshot();
    let mut out = String::with_capacity(4096);
    for (name, v) in &snap.counters {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# HELP {pname}_total {}", escape_prom_help(name));
        let _ = writeln!(out, "# TYPE {pname}_total counter");
        let _ = writeln!(out, "{pname}_total {v}");
    }
    for (name, v) in &snap.gauges {
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# HELP {pname} {}", escape_prom_help(name));
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {v}");
    }
    for (name, _) in &snap.histograms {
        // The name is registered as a histogram, so the lookup cannot
        // conflict; a racing kind-conflict would return None and the
        // family is simply skipped this scrape.
        let Some(h) = reg.histogram(name) else {
            continue;
        };
        let cum = h.cumulative();
        let pname = prometheus_name(name);
        let _ = writeln!(out, "# HELP {pname} {}", escape_prom_help(name));
        let _ = writeln!(out, "# TYPE {pname} histogram");
        for &(le, c) in &cum.buckets {
            let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {c}");
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", cum.count);
        let _ = writeln!(out, "{pname}_sum {}", cum.sum);
        let _ = writeln!(out, "{pname}_count {}", cum.count);
    }
    out
}

/// Renders a snapshot as the human-readable table `puppies stats` prints.
/// Histograms are shown in milliseconds (recorded values are ns).
pub fn render_stats(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "{:<26} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram (ms)", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{:<26} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                name,
                h.count,
                h.p50 / 1e6,
                h.p95 / 1e6,
                h.p99 / 1e6,
                h.max as f64 / 1e6
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "{:<26} {:>8}", "counter", "value");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:<26} {v:>8}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "{:<26} {:>8}", "gauge", "value");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:<26} {v:>8}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc\rd"), r"a\nb\tc\rd");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("é✓"), "é✓"); // non-ASCII passes through
    }

    #[test]
    fn chrome_trace_escapes_span_names() {
        let spans = vec![SpanRecord {
            name: Cow::Owned("evil\"name\\with\ncontrols\u{02}".to_string()),
            cat: "test",
            id: 1,
            parent: 0,
            tid: 1,
            ts_ns: 1500,
            dur_ns: 2500,
        }];
        let threads = vec![(1u64, "weird\"thread".to_string())];
        let json = chrome_trace(&spans, &threads, 0);
        assert!(json.contains(r#"evil\"name\\with\ncontrols"#));
        assert!(json.contains(r#"weird\"thread"#));
        // No raw control bytes or unescaped quotes-in-names survive.
        assert!(!json.bytes().any(|b| b < 0x20 && b != b'\n'));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
    }

    #[test]
    fn stats_json_roundtrips() {
        let snap = MetricsSnapshot {
            counters: vec![("a.b".into(), 42), ("weird \"name\"".into(), 7)],
            gauges: vec![("g".into(), -5)],
            histograms: vec![(
                "jpeg.encode".into(),
                HistStats {
                    count: 10,
                    sum: 1000,
                    min: 50,
                    max: 200,
                    p50: 100.0,
                    p95: 190.5,
                    p99: 199.9,
                },
            )],
        };
        let json = stats_json(&snap);
        let back = parse_stats_json(&json).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms.len(), 1);
        let (name, h) = &back.histograms[0];
        assert_eq!(name, "jpeg.encode");
        assert_eq!(h.count, 10);
        assert!((h.p95 - 190.5).abs() < 1e-9);
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("psp.net.requests"), "psp_net_requests");
        assert_eq!(prometheus_name("bench.net p99"), "bench_net_p99");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a:b_c9"), "a:b_c9");
    }

    #[test]
    fn prometheus_escaping_per_text_format_spec() {
        // Label values escape backslash, quote, and newline.
        assert_eq!(escape_prom_label(r"a\b"), r"a\\b");
        assert_eq!(escape_prom_label(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_prom_label("two\nlines"), r"two\nlines");
        // Help text escapes backslash and newline but leaves quotes alone.
        assert_eq!(escape_prom_help(r"a\b"), r"a\\b");
        assert_eq!(escape_prom_help("two\nlines"), r"two\nlines");
        assert_eq!(escape_prom_help(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn prometheus_text_renders_all_three_kinds() {
        let reg = MetricRegistry::default();
        reg.counter("psp.net.requests").unwrap().add(3);
        reg.gauge("psp.photos").unwrap().set(-2);
        let h = reg.histogram("psp.net.req_us").unwrap();
        h.record(5);
        h.record(5);
        h.record(700);
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE psp_net_requests_total counter"));
        assert!(text.contains("\npsp_net_requests_total 3\n"));
        assert!(text.contains("# TYPE psp_photos gauge"));
        assert!(text.contains("\npsp_photos -2\n"));
        assert!(text.contains("# TYPE psp_net_req_us histogram"));
        assert!(text.contains("psp_net_req_us_bucket{le=\"5\"} 2\n"));
        assert!(text.contains("psp_net_req_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("\npsp_net_req_us_sum 710\n"));
        assert!(text.contains("\npsp_net_req_us_count 3\n"));
        // The dotted names survive in HELP lines.
        assert!(text.contains("# HELP psp_net_req_us psp.net.req_us\n"));
        // Cumulative buckets are monotone non-decreasing in both fields.
        let mut prev = (0u64, 0u64);
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
        {
            let le: u64 = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let c: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(le >= prev.0 && c >= prev.1, "{line}");
            prev = (le, c);
        }
    }

    #[test]
    fn prometheus_empty_histogram_still_renders_inf_sum_count() {
        let reg = MetricRegistry::default();
        reg.histogram("empty.hist").unwrap();
        let text = prometheus_text(&reg);
        assert!(text.contains("empty_hist_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_hist_sum 0\n"));
        assert!(text.contains("empty_hist_count 0\n"));
        // No finite buckets for an empty histogram.
        assert!(!text.contains("empty_hist_bucket{le=\"0\""));
    }

    #[test]
    fn prometheus_help_escapes_metric_names_with_specials() {
        let reg = MetricRegistry::default();
        reg.counter("weird\\name\nwith specials").unwrap().add(1);
        let text = prometheus_text(&reg);
        assert!(text.contains(r"# HELP weird_name_with_specials_total weird\\name\nwith specials"));
        // The body never contains a raw newline inside a HELP line.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn render_includes_quantile_columns() {
        let snap = MetricsSnapshot {
            counters: vec![("c".into(), 1)],
            gauges: vec![],
            histograms: vec![(
                "h".into(),
                HistStats {
                    count: 1,
                    sum: 2_000_000,
                    min: 2_000_000,
                    max: 2_000_000,
                    p50: 2_000_000.0,
                    p95: 2_000_000.0,
                    p99: 2_000_000.0,
                },
            )],
        };
        let text = render_stats(&snap);
        assert!(text.contains("p50"));
        assert!(text.contains("p99"));
        assert!(text.contains("2.000"));
    }
}
