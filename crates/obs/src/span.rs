//! Hierarchical spans with thread-aware nesting.
//!
//! Each thread keeps a stack of open span ids; a new span's parent is the
//! top of the executing thread's stack. Work that hops threads (worker
//! pool jobs) carries its logical parent explicitly via
//! [`crate::Obs::span_with_parent`], so a trace shows `pool.job` nested
//! under the submitting `core.protect` span even though they ran on
//! different threads. Finished spans land in a bounded in-memory buffer
//! (the Chrome-trace exporter drains it) and their durations feed a
//! histogram named after the span, which is where `puppies stats`
//! quantiles come from.

use crate::Obs;
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One finished span, as exported to Chrome trace files.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (histogram key and trace label).
    pub name: Cow<'static, str>,
    /// Trace category.
    pub cat: &'static str,
    /// Unique span id.
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Small dense id of the thread the span ran on.
    pub tid: u64,
    /// Start offset from subscriber creation, nanoseconds.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Bounded buffer of finished spans plus the thread-name table.
pub(crate) struct TraceBuffer {
    pub(crate) spans: Mutex<Vec<SpanRecord>>,
    pub(crate) dropped: AtomicU64,
    pub(crate) capacity: usize,
    pub(crate) threads: Mutex<Vec<(u64, String)>>,
    next_tid: AtomicU64,
}

impl TraceBuffer {
    pub(crate) fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            capacity,
            threads: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
        }
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(rec);
    }

    /// Registers the calling thread on first use, returning its dense id.
    fn register_thread(&self) -> u64 {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        self.threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((tid, name));
        tid
    }
}

thread_local! {
    /// Open span ids on this thread, innermost last. Entries pushed by
    /// [`SpanGuard`] and by explicit parent adoption in pool jobs.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's dense trace id, per subscriber generation.
    static THREAD_ID: RefCell<Option<(u64, u64)>> = const { RefCell::new(None) };
}

fn thread_trace_id(obs: &Obs) -> u64 {
    THREAD_ID.with(|slot| {
        let mut slot = slot.borrow_mut();
        match *slot {
            Some((generation, tid)) if generation == obs.generation => tid,
            _ => {
                let tid = obs.trace.register_thread();
                *slot = Some((obs.generation, tid));
                tid
            }
        }
    })
}

/// The id of the innermost open span on this thread (0 if none). Capture
/// it before handing work to another thread, then reopen the lineage
/// there with [`Obs::span_with_parent`].
pub fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An open span; ends (and is recorded) on drop. Obtained from
/// [`crate::span!`] or [`Obs::span`] — a disabled subscriber yields an
/// inert guard that costs nothing to drop.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    obs: Arc<Obs>,
    name: Cow<'static, str>,
    cat: &'static str,
    id: u64,
    parent: u64,
    start: Instant,
}

impl SpanGuard {
    /// An inert guard (disabled subscriber).
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard { inner: None }
    }

    pub(crate) fn begin(
        obs: Arc<Obs>,
        name: Cow<'static, str>,
        cat: &'static str,
        parent: Option<u64>,
    ) -> SpanGuard {
        let id = obs.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = parent.unwrap_or_else(current_span_id);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            inner: Some(ActiveSpan {
                obs,
                name,
                cat,
                id,
                parent,
                start: Instant::now(),
            }),
        }
    }

    /// This span's id (0 for an inert guard), for cross-thread parenting.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.inner.take() else {
            return;
        };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        let ts_ns = span.start.duration_since(span.obs.start).as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span. Guards drop in LIFO
            // order in correct code; the retain guards against a guard
            // leaked across an unwind.
            if stack.last() == Some(&span.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != span.id);
            }
        });
        if let Some(h) = span.obs.metrics.histogram(&span.name) {
            h.record(dur_ns);
        }
        let tid = thread_trace_id(&span.obs);
        span.obs.trace.push(SpanRecord {
            name: span.name,
            cat: span.cat,
            id: span.id,
            parent: span.parent,
            tid,
            ts_ns,
            dur_ns,
        });
    }
}
