//! `puppies-obs` — zero-dependency tracing, metrics and pipeline
//! profiling for the PuPPIeS stack.
//!
//! Everything the production-scale roadmap needs to *measure* lives
//! here: hierarchical [spans](span::SpanGuard) with thread-aware
//! nesting, [counters/gauges/histograms](metrics::MetricRegistry) with
//! log-linear p50/p95/p99 buckets, and two exporters — a JSON stats
//! snapshot and a Chrome `trace_event` file loadable in
//! `about:tracing` / <https://ui.perfetto.dev>.
//!
//! # Subscriber model
//!
//! All instrumentation routes through one optional process-global
//! subscriber ([`Obs`]). When none is installed — the default — every
//! macro and helper short-circuits on a single relaxed atomic load, so
//! instrumented hot paths cost a predictable branch and nothing else
//! (measured <1% on the bench fixture; the CI perf job gates it at 5%).
//! Installing a subscriber turns the same call sites into real spans
//! and metric updates:
//!
//! ```
//! let session = puppies_obs::Obs::install();
//! {
//!     let _outer = puppies_obs::span!("work.outer");
//!     let _inner = puppies_obs::span!("work.inner", "demo");
//!     puppies_obs::counted!("work.items", 3);
//! } // spans end on drop
//! let obs = session.finish().unwrap();
//! let snap = obs.metrics().snapshot();
//! assert_eq!(snap.counters[0], ("work.items".to_string(), 3));
//! assert!(obs.chrome_trace().contains("work.inner"));
//! ```
//!
//! Instrumentation never touches pipeline *data* — with or without a
//! subscriber, protect/recover/codec outputs are byte-identical
//! (pinned by `crates/core/tests/parallel.rs`).

mod export;
mod hist;
mod metrics;
mod span;

pub use export::{
    chrome_trace, escape_json, escape_prom_help, escape_prom_label, parse_stats_json,
    prometheus_name, prometheus_text, render_stats, stats_json,
};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, HistStats, MetricRegistry, MetricsSnapshot};
pub use span::{current_span_id, SpanGuard, SpanRecord};

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Default cap on buffered trace spans (~96 MB worst case is far above
/// anything real; a days-long soak just stops tracing and counts drops).
const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A tracing/metrics subscriber: the span clock, the trace buffer and
/// the metric registry. Usually installed process-globally via
/// [`Obs::install`]; tests that want isolation can use an [`Obs`]
/// directly through [`Obs::new`] + explicit method calls.
pub struct Obs {
    pub(crate) start: Instant,
    pub(crate) generation: u64,
    pub(crate) metrics: MetricRegistry,
    pub(crate) trace: span::TraceBuffer,
    pub(crate) next_span_id: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<Option<Arc<Obs>>> = RwLock::new(None);
static GENERATION: AtomicU64 = AtomicU64::new(1);

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh, unattached subscriber.
    pub fn new() -> Obs {
        Obs {
            start: Instant::now(),
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            metrics: MetricRegistry::default(),
            trace: span::TraceBuffer::new(DEFAULT_TRACE_CAPACITY),
            next_span_id: AtomicU64::new(1),
        }
    }

    /// Creates a subscriber and installs it as the process-global one,
    /// replacing any previous subscriber. The returned [`ObsSession`]
    /// yields the subscriber back via [`ObsSession::finish`].
    pub fn install() -> ObsSession {
        let obs = Arc::new(Obs::new());
        *GLOBAL.write().unwrap_or_else(|e| e.into_inner()) = Some(obs.clone());
        ENABLED.store(true, Ordering::SeqCst);
        ObsSession { obs }
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Opens a span on this subscriber; the parent is the innermost open
    /// span on the calling thread.
    pub fn span(
        self: &Arc<Self>,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
    ) -> SpanGuard {
        SpanGuard::begin(self.clone(), name.into(), cat, None)
    }

    /// Opens a span whose parent is given explicitly — how worker-pool
    /// jobs keep their lineage when they hop threads.
    pub fn span_with_parent(
        self: &Arc<Self>,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        parent: u64,
    ) -> SpanGuard {
        SpanGuard::begin(self.clone(), name.into(), cat, Some(parent))
    }

    /// Renders all finished spans as a Chrome `trace_event` JSON
    /// document (see [`chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        let spans = self.trace.spans.lock().unwrap_or_else(|e| e.into_inner());
        let threads = self.trace.threads.lock().unwrap_or_else(|e| e.into_inner());
        chrome_trace(&spans, &threads, self.trace.dropped.load(Ordering::Relaxed))
    }

    /// Renders the current metric state as the stats JSON document
    /// (see [`stats_json`]).
    pub fn stats_json(&self) -> String {
        stats_json(&self.metrics.snapshot())
    }

    /// Number of finished spans currently buffered.
    pub fn span_count(&self) -> usize {
        self.trace
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// A copy of the finished-span buffer, for programmatic inspection
    /// of trace topology (tests asserting parentage, tooling walking the
    /// span tree without going through the Chrome JSON).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.trace
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// RAII handle for a globally installed subscriber; uninstalls on
/// [`ObsSession::finish`] (or drop) and hands the subscriber back for
/// export.
pub struct ObsSession {
    obs: Arc<Obs>,
}

impl ObsSession {
    /// The installed subscriber (for mid-session snapshots).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Uninstalls the subscriber and returns it for export. Returns the
    /// `Arc` even if another `install` already displaced this session's
    /// subscriber.
    pub fn finish(self) -> Option<Arc<Obs>> {
        let mut global = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
        if global.as_ref().is_some_and(|g| Arc::ptr_eq(g, &self.obs)) {
            *global = None;
            ENABLED.store(false, Ordering::SeqCst);
        }
        Some(self.obs.clone())
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        let mut global = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
        if global.as_ref().is_some_and(|g| Arc::ptr_eq(g, &self.obs)) {
            *global = None;
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

/// Whether a global subscriber is installed. The one branch every
/// disabled instrumentation site pays.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` with the global subscriber, if any.
pub fn with<R>(f: impl FnOnce(&Arc<Obs>) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let guard = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(f)
}

/// Opens a span on the global subscriber (inert guard when disabled).
pub fn span(name: impl Into<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
    with(|obs| obs.span(name, cat)).unwrap_or_else(SpanGuard::noop)
}

/// Opens a span with an explicit parent id on the global subscriber.
pub fn span_with_parent(
    name: impl Into<Cow<'static, str>>,
    cat: &'static str,
    parent: u64,
) -> SpanGuard {
    with(|obs| obs.span_with_parent(name, cat, parent)).unwrap_or_else(SpanGuard::noop)
}

/// Adds to a global counter.
pub fn counter_add(name: &str, n: u64) {
    with(|obs| {
        if let Some(c) = obs.metrics.counter(name) {
            c.add(n);
        }
    });
}

/// Sets a global gauge.
pub fn gauge_set(name: &str, v: i64) {
    with(|obs| {
        if let Some(g) = obs.metrics.gauge(name) {
            g.set(v);
        }
    });
}

/// Adds (possibly negatively) to a global gauge.
pub fn gauge_add(name: &str, d: i64) {
    with(|obs| {
        if let Some(g) = obs.metrics.gauge(name) {
            g.add(d);
        }
    });
}

/// Records a value into a global histogram (the pipeline's convention:
/// nanoseconds for durations).
pub fn record(name: &str, v: u64) {
    with(|obs| {
        if let Some(h) = obs.metrics.histogram(name) {
            h.record(v);
        }
    });
}

/// Cross-process trace propagation context: a trace id (the installing
/// subscriber's generation, constant for the life of a session) plus the
/// span that should become the remote side's parent.
///
/// The wire form — the value of the `x-puppies-trace` HTTP header — is
/// two 16-digit lowercase hex fields joined by a dash:
///
/// ```text
/// x-puppies-trace: 0000000000000003-00000000000000a1
/// ```
///
/// A receiver that shares the sender's subscriber (in-process benches,
/// tests) reconnects the span tree exactly; a genuinely remote receiver
/// records the foreign parent id verbatim, which trace viewers render as
/// a cross-process link. Malformed values must be ignored, never fail a
/// request — [`TraceContext::parse`] returns `None` and the receiver
/// proceeds rootless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Groups every span of one distributed request flow.
    pub trace_id: u64,
    /// The span to adopt as parent on the receiving side.
    pub span_id: u64,
}

impl TraceContext {
    /// The context to propagate from the calling thread: the global
    /// subscriber's generation and the innermost open span. `None` when
    /// no subscriber is installed (callers then omit the header).
    pub fn current() -> Option<TraceContext> {
        with(|obs| TraceContext {
            trace_id: obs.generation,
            span_id: span::current_span_id(),
        })
    }

    /// Renders the header value (`<trace>-<span>`, 16 hex digits each).
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }

    /// Parses a header value produced by [`TraceContext::header_value`].
    /// Lenient in length (1–16 hex digits per field), strict in shape;
    /// anything else is `None`.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let s = s.trim();
        let (t, p) = s.split_once('-')?;
        if t.is_empty() || p.is_empty() || t.len() > 16 || p.len() > 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_str_radix(t, 16).ok()?,
            span_id: u64::from_str_radix(p, 16).ok()?,
        })
    }
}

/// Drop guard that records its elapsed time, in microseconds, into a
/// named global histogram — the idiom for request-style latencies where
/// the same scope must feed several histograms (overall + per-endpoint)
/// or the name is only known at exit.
///
/// ```
/// let sw = puppies_obs::Stopwatch::start();
/// // ... handle the request ...
/// sw.record_us("psp.net.req_us");
/// ```
///
/// Unlike [`span`], nothing is emitted to the trace; when no subscriber
/// is installed the record is a no-op but the elapsed time is still
/// available via [`Stopwatch::elapsed_us`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Microseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time into histogram `name` and returns it, so
    /// one stopwatch can feed several histograms with one measurement.
    pub fn record_us(&self, name: &str) -> u64 {
        let us = self.elapsed_us();
        record(name, us);
        us
    }
}

/// Opens a span on the global subscriber. True no-op (one relaxed load)
/// when no subscriber is installed.
///
/// ```
/// let _g = puppies_obs::span!("stage.name");
/// let _h = puppies_obs::span!("stage.other", "category");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name, "puppies")
    };
    ($name:expr, $cat:expr) => {
        $crate::span($name, $cat)
    };
}

/// Adds `n` to the global counter `name`; no-op without a subscriber.
#[macro_export]
macro_rules! counted {
    ($name:expr) => {
        $crate::counted!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::counter_add($name, $n as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global subscriber is process-wide, so every test touching it
    // runs under this lock to stay order-independent.
    static INSTALL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_macros_are_inert() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let g = span!("never.recorded");
        assert_eq!(g.id(), 0);
        drop(g);
        counted!("never.counted", 5);
        record("never.hist", 1);
        // Nothing to observe — and installing afterwards starts clean.
        let session = Obs::install();
        let obs = session.finish().unwrap();
        assert_eq!(obs.span_count(), 0);
        assert!(obs.metrics().snapshot().counters.is_empty());
    }

    #[test]
    fn stopwatch_records_elapsed_into_histograms() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Without a subscriber: no panic, elapsed still measurable.
        let sw = Stopwatch::start();
        let _ = sw.record_us("sw.disabled_us");

        let session = Obs::install();
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let overall = sw.record_us("sw.total_us");
        let endpoint = sw.record_us("sw.endpoint_us");
        assert!(overall >= 2_000, "slept 2ms but measured {overall}us");
        assert!(endpoint >= overall, "later record must not rewind time");
        let obs = session.finish().unwrap();
        let snap = obs.metrics().snapshot();
        for name in ["sw.total_us", "sw.endpoint_us"] {
            let (_, stats) = snap
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{name} missing from snapshot"));
            assert_eq!(stats.count, 1);
        }
        assert!(
            !snap.histograms.iter().any(|(n, _)| n == "sw.disabled_us"),
            "record before install must not leak into the session"
        );
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = Obs::install();
        {
            let outer = span!("outer");
            let outer_id = outer.id();
            let inner = span!("inner");
            assert_ne!(inner.id(), 0);
            drop(inner);
            drop(outer);
            let obs = session.obs();
            let spans = obs.trace.spans.lock().unwrap();
            assert_eq!(spans.len(), 2);
            let inner_rec = spans.iter().find(|s| s.name == "inner").unwrap();
            assert_eq!(inner_rec.parent, outer_id);
            let outer_rec = spans.iter().find(|s| s.name == "outer").unwrap();
            assert_eq!(outer_rec.parent, 0);
        }
        session.finish();
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = Obs::install();
        let root = span!("root");
        let root_id = root.id();
        let child_parent = std::thread::spawn(move || {
            let g = span_with_parent("remote", "pool", root_id);
            let id = g.id();
            drop(g);
            id
        })
        .join()
        .unwrap();
        drop(root);
        let obs = session.finish().unwrap();
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"remote\""));
        assert!(trace.contains(&format!("\"parent\":{root_id}")));
        assert_ne!(child_parent, 0);
    }

    #[test]
    fn trace_context_roundtrips_and_rejects_garbage() {
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 0xa1,
        };
        let header = ctx.header_value();
        assert_eq!(header, "0000000000000003-00000000000000a1");
        assert_eq!(TraceContext::parse(&header), Some(ctx));
        // Lenient lengths, surrounding whitespace tolerated.
        assert_eq!(
            TraceContext::parse(" 3-a1 "),
            Some(TraceContext {
                trace_id: 3,
                span_id: 0xa1
            })
        );
        for bad in [
            "",
            "-",
            "3-",
            "-a1",
            "nothex-a1",
            "3-a1-7",
            "00000000000000003-a1", // 17 digits
            "3 a1",
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn trace_context_current_tracks_subscriber_and_span() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(TraceContext::current().is_none());
        let session = Obs::install();
        let outside = TraceContext::current().unwrap();
        assert_eq!(outside.span_id, 0, "no open span yet");
        let g = span!("ctx.root");
        let inside = TraceContext::current().unwrap();
        assert_eq!(inside.span_id, g.id());
        assert_eq!(inside.trace_id, outside.trace_id);
        drop(g);
        session.finish();
    }

    #[test]
    fn span_durations_feed_histograms() {
        let _l = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = Obs::install();
        for _ in 0..5 {
            let _g = span!("timed.stage");
        }
        let obs = session.finish().unwrap();
        let snap = obs.metrics().snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "timed.stage");
        assert_eq!(h.count, 5);
    }
}
