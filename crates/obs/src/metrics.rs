//! Named counters, gauges and histograms behind a sharded registry.
//!
//! The registry is "lock-free-ish": metric *updates* are plain atomic
//! operations with no lock held, and metric *lookup* takes a short
//! read-lock on one of 16 name-hashed shards (a write-lock only the
//! first time a name is seen). Contention between pipeline stages is
//! therefore limited to threads updating the *same* metric, which is
//! exactly the atomics' job.

use crate::hist::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

const SHARDS: usize = 16;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (possibly negative) to the gauge.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The sharded name → metric map.
pub struct MetricRegistry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
}

/// FNV-1a, the workspace's standard tiny hash (same family the golden
/// manifest uses) — stable across platforms, unlike `DefaultHasher`.
fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Default for MetricRegistry {
    fn default() -> Self {
        MetricRegistry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

macro_rules! get_or_insert {
    ($self:ident, $name:ident, $variant:ident, $ty:ty) => {{
        let shard = &$self.shards[(fnv($name) % SHARDS as u64) as usize];
        if let Some(Metric::$variant(m)) =
            shard.read().unwrap_or_else(|e| e.into_inner()).get($name)
        {
            return Some(m.clone());
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        match map
            .entry($name.to_string())
            .or_insert_with(|| Metric::$variant(Arc::new(<$ty>::default())))
        {
            Metric::$variant(m) => Some(m.clone()),
            // Name already registered as a different metric kind: report
            // nothing rather than corrupt the other metric.
            _ => None,
        }
    }};
}

impl MetricRegistry {
    /// The counter named `name`, created on first use. `None` if the name
    /// is already taken by a different metric kind.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        get_or_insert!(self, name, Counter, Counter)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        get_or_insert!(self, name, Gauge, Gauge)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        get_or_insert!(self, name, Histogram, Histogram)
    }

    /// Snapshot of every metric, each kind sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(|e| e.into_inner());
            for (name, metric) in map.iter() {
                match metric {
                    Metric::Counter(c) => out.counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => out.gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => out.histograms.push((
                        name.clone(),
                        HistStats {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min(),
                            max: h.max(),
                            p50: h.quantile(0.50),
                            p95: h.quantile(0.95),
                            p99: h.quantile(0.99),
                        },
                    )),
                }
            }
        }
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Point-in-time summary of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, stats)` pairs, sorted by name.
    pub histograms: Vec<(String, HistStats)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_once_and_accumulate() {
        let reg = MetricRegistry::default();
        reg.counter("a").unwrap().add(2);
        reg.counter("a").unwrap().add(3);
        reg.gauge("g").unwrap().set(7);
        reg.gauge("g").unwrap().add(-2);
        reg.histogram("h").unwrap().record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 5)]);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn kind_conflicts_return_none() {
        let reg = MetricRegistry::default();
        assert!(reg.counter("x").is_some());
        assert!(reg.gauge("x").is_none());
        assert!(reg.histogram("x").is_none());
    }

    #[test]
    fn concurrent_updates_from_many_threads() {
        let reg = Arc::new(MetricRegistry::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        reg.counter("n").unwrap().add(1);
                        reg.histogram("lat").unwrap().record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].1, 8000);
        assert_eq!(snap.histograms[0].1.count, 8000);
    }
}
