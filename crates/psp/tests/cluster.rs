//! Failure-injection integration test for the k-of-n cluster: kill and
//! corrupt up to n−k backends mid-workload (the in-process mirror of the
//! PR 6 kill -9 service gate) and assert every acknowledged upload still
//! reconstructs byte-identically — before, during, and after backend
//! replacement + rebalance.

use puppies_core::{protect, KeyGrant, OwnerKey, ProtectOptions, PublicParams};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_psp::cluster::fault::Fault;
use puppies_psp::cluster::{ClusterConfig, ClusterPhotoId, ShardedPspCluster};
use puppies_psp::{PspConfig, PspServer};

fn photo(tag: u32) -> RgbImage {
    RgbImage::from_fn(96, 64, |x, y| {
        Rgb::new(
            (40 + (x * 2 + y + tag) % 150) as u8,
            (60 + (x + y * 3 + tag * 7) % 140) as u8,
            (50 + (x * 3 + y * 2 + tag * 13) % 160) as u8,
        )
    })
}

struct Uploaded {
    id: ClusterPhotoId,
    bytes: Vec<u8>,
    grant: KeyGrant,
}

fn upload_one(cluster: &ShardedPspCluster, key: &OwnerKey, image_id: u64, tag: u32) -> Uploaded {
    let img = photo(tag);
    let rois = [Rect::new(16, 8, 32, 32)];
    let opts = ProtectOptions::default().with_image_id(image_id);
    let protected = protect(&img, &rois, key, &opts).unwrap();
    let grant = key.grant_rois(image_id, &[0]);
    let id = cluster
        .upload(protected.bytes.clone(), protected.params.to_bytes(), &grant)
        .unwrap();
    Uploaded {
        id,
        bytes: protected.bytes,
        grant,
    }
}

fn assert_reconstructs(cluster: &ShardedPspCluster, up: &Uploaded, ctx: &str) {
    let (grant, bytes) = cluster.reconstruct(up.id).unwrap();
    assert_eq!(bytes, up.bytes, "bytes diverged: {ctx}");
    assert_eq!(
        grant.to_entries(),
        up.grant.to_entries(),
        "grant diverged: {ctx}"
    );
}

/// The headline gate: a 5-of-3 cluster loses its full fault budget
/// (one kill + one corruption = n−k = 2 backends) in the middle of a
/// workload, gets the dead node replaced, rebalances, and every
/// acknowledged upload reconstructs byte-identically at every stage.
#[test]
fn acknowledged_uploads_survive_n_minus_k_failures_and_rebalance() {
    let cfg = ClusterConfig::new(5, 3).with_seed([7u8; 32]);
    let cluster = ShardedPspCluster::new(cfg).unwrap();
    let key = OwnerKey::from_seed([21u8; 32]);

    // Phase 1: healthy uploads.
    let mut uploads: Vec<Uploaded> = (0..3)
        .map(|i| upload_one(&cluster, &key, i + 1, i as u32))
        .collect();

    // Phase 2: burn the whole fault budget mid-workload.
    cluster.fault(1, Fault::Kill);
    cluster.fault(3, Fault::Corrupt);

    // Every earlier ack still reconstructs from the 3 clean backends.
    for (i, up) in uploads.iter().enumerate() {
        assert_reconstructs(&cluster, up, &format!("upload {i} under 2 faults"));
    }

    // Uploads continue under failure: acks are still binding because the
    // quorum rule counts only healthy share stores.
    for i in 3..6 {
        uploads.push(upload_one(&cluster, &key, i + 1, i as u32));
    }
    for (i, up) in uploads.iter().enumerate() {
        assert_reconstructs(&cluster, up, &format!("upload {i} mid-failure"));
    }

    // Phase 3: replace the dead backend (fresh empty server — its old
    // shares are gone) and heal the corruptor, then re-share everything.
    cluster.replace_backend(1).unwrap();
    cluster.clear_fault(3);
    let rebalanced = cluster.rebalance_all().unwrap();
    assert_eq!(rebalanced, uploads.len());

    // Phase 4: full fault tolerance is restored — a *different* pair of
    // backends can now fail and everything still reconstructs.
    cluster.fault(0, Fault::Kill);
    cluster.fault(4, Fault::Corrupt);
    for (i, up) in uploads.iter().enumerate() {
        assert_reconstructs(&cluster, up, &format!("upload {i} after rebalance"));
    }

    // One more failure (3 down > n−k) must fail loudly, not return junk.
    cluster.fault(2, Fault::Kill);
    assert!(cluster.reconstruct(uploads[0].id).is_err());
}

/// End-to-end recovery parity: the image fetched through the cluster
/// (reconstruct + local recovery) is pixel-identical to single-PSP
/// recovery with the same grant.
#[test]
fn cluster_fetch_matches_single_psp_recovery() {
    let cluster = ShardedPspCluster::new(ClusterConfig::new(4, 2)).unwrap();
    let single = PspServer::with_config(PspConfig::uncached());
    let key = OwnerKey::from_seed([33u8; 32]);

    let img = photo(99);
    let rois = [Rect::new(8, 8, 40, 24)];
    let opts = ProtectOptions::default().with_image_id(5);
    let protected = protect(&img, &rois, &key, &opts).unwrap();
    let grant = key.grant_rois(5, &[0]);

    let cid = cluster
        .upload(protected.bytes.clone(), protected.params.to_bytes(), &grant)
        .unwrap();
    let sid = single
        .upload(protected.bytes.clone(), protected.params.to_bytes())
        .unwrap();

    // Degrade to exactly k live backends before fetching.
    cluster.fault(0, Fault::Kill);
    cluster.fault(2, Fault::Corrupt);
    let via_cluster = cluster.fetch(cid).unwrap();

    let params = PublicParams::from_bytes(&single.download_params(sid).unwrap()).unwrap();
    let via_single =
        puppies_core::shadow::recover_transformed(&single.download(sid).unwrap(), &params, &grant)
            .unwrap();

    assert_eq!(via_cluster, via_single, "cluster vs single-PSP recovery");
    // Sanity: recovery actually recovered the protected region.
    let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
    assert_eq!(via_cluster, reference);
}

/// Concurrency: uploads, reconstructs, and fault flips from many threads
/// never corrupt an acknowledged upload.
#[test]
fn concurrent_workload_with_fault_flips() {
    use std::sync::Arc;
    let cluster = Arc::new(ShardedPspCluster::new(ClusterConfig::new(5, 3)).unwrap());
    let key = OwnerKey::from_seed([55u8; 32]);

    // Seed a few uploads, remembering ground truth.
    let uploads: Arc<Vec<Uploaded>> = Arc::new(
        (0..4)
            .map(|i| upload_one(&cluster, &key, i + 1, 100 + i as u32))
            .collect(),
    );

    let mut handles = Vec::new();
    // Chaos thread: flips backend 0 in and out of Kill while backend 4
    // stays Corrupt throughout. However a reconstruct's per-backend
    // samples interleave with the flips, at most backends {0, 4} are
    // unusable — never below the k = 3 clean backends {1, 2, 3}.
    cluster.fault(4, Fault::Corrupt);
    {
        let c = cluster.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..40 {
                c.fault(0, Fault::Kill);
                std::thread::yield_now();
                c.clear_fault(0);
            }
        }));
    }
    // Reader threads: every reconstruction must be exact, every time.
    for t in 0..3 {
        let c = cluster.clone();
        let ups = uploads.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..30 {
                let up = &ups[(t + round) % ups.len()];
                let (_, bytes) = c.reconstruct(up.id).unwrap();
                assert_eq!(bytes, up.bytes, "reader {t} round {round}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
