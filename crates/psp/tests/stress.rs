//! Multi-threaded serving stress: ≥8 real OS threads hammer one server
//! with a mixed upload/download/transform workload on overlapping ids.
//! Completion proves freedom from deadlock (every lock in the store is
//! scoped and never held across codec work); afterwards the footprint
//! accounting and cache coherence are checked exactly.

use puppies_core::parallel::{with_pool, WorkerPool};
use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::{PhotoId, PspConfig, PspServer};
use puppies_transform::Transformation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn protected_photo(seed: u8, quality: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(48, 48, |x, y| {
        Rgb::new(
            ((x * 7 + y * 3) as u8).wrapping_add(seed),
            ((x + y * 5) as u8).wrapping_mul(seed | 1),
            seed,
        )
    });
    let key = OwnerKey::from_seed([seed; 32]);
    let protected = protect(
        &img,
        &[Rect::new(8, 8, 16, 16)],
        &key,
        &ProtectOptions::default().with_quality(quality),
    )
    .unwrap();
    (protected.bytes, protected.params.to_bytes())
}

/// Tiny deterministic per-thread RNG (xorshift64*) so the mix is seeded
/// but thread-interleaving stays genuinely racy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn mixed_ops_from_eight_threads_no_deadlock_and_exact_accounting() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 120;
    let server = Arc::new(PspServer::new());
    // A small overlapping id population so threads genuinely collide.
    let fixtures: Vec<(Vec<u8>, Vec<u8>)> = (0..4u8)
        .map(|s| protected_photo(s + 1, 70 + s * 5))
        .collect();
    let mut seed_ids = Vec::new();
    for (b, p) in &fixtures {
        seed_ids.push(server.upload(b.clone(), p.clone()).unwrap());
    }
    let transforms = [
        Transformation::Rotate90,
        Transformation::Rotate180,
        Transformation::FlipHorizontal,
        Transformation::Recompress { quality: 40 },
        Transformation::Scale {
            width: 24,
            height: 24,
            filter: puppies_transform::ScaleFilter::Bilinear,
        },
    ];
    let errors = AtomicU64::new(0);
    thread::scope(|scope| {
        for tid in 0..THREADS {
            let server = &server;
            let fixtures = &fixtures;
            let seed_ids = &seed_ids;
            let transforms = &transforms;
            let errors = &errors;
            scope.spawn(move || {
                let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (tid as u64 + 1));
                for _ in 0..OPS_PER_THREAD {
                    let roll = rng.next() % 100;
                    let id = seed_ids[(rng.next() % seed_ids.len() as u64) as usize];
                    if roll < 15 {
                        let f = &fixtures[(rng.next() % fixtures.len() as u64) as usize];
                        server.upload(f.0.clone(), f.1.clone()).unwrap();
                    } else if roll < 45 {
                        server.download(id).unwrap();
                    } else if roll < 60 {
                        server.download_params(id).unwrap();
                    } else if roll < 90 {
                        let t = &transforms[(rng.next() % transforms.len() as u64) as usize];
                        // Hits either the cached fast path or the full
                        // pipeline; errs only once a concurrent in-place
                        // transform marked the photo as transformed.
                        if server.download_transformed(id, t).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        let t = &transforms[(rng.next() % transforms.len() as u64) as usize];
                        // In-place transforms race each other on the four
                        // shared ids: exactly one wins per id, the rest see
                        // the chain-not-supported error. Both outcomes are
                        // legal; corruption is not.
                        if server.transform(id, t).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    // Footprint accounting survived the races exactly: the incremental
    // total equals a fresh walk over every stored photo, counting each
    // shared byte allocation once (exact-duplicate uploads intern their
    // bytes, so re-uploaded fixtures share one buffer).
    let mut walked = 0u64;
    let mut count = 0usize;
    let mut seen_bytes = std::collections::HashSet::new();
    for id in 0..u64::MAX {
        match server.download(PhotoId(id)) {
            Ok(bytes) => {
                if seen_bytes.insert(bytes.as_ptr() as usize) {
                    walked += bytes.len() as u64;
                }
                walked += server.download_params(PhotoId(id)).unwrap().len() as u64;
                count += 1;
            }
            Err(_) => break, // ids are dense from 0
        }
    }
    assert_eq!(server.len(), count);
    assert_eq!(server.storage_footprint_total(), walked);
    // Every stored stream still decodes (no torn writes).
    for id in 0..count as u64 {
        let bytes = server.download(PhotoId(id)).unwrap();
        puppies_jpeg::CoeffImage::decode(&bytes).unwrap();
    }
    // The request log merged across shards is a strictly ordered timeline.
    let log = server.recent_requests();
    assert!(!log.is_empty());
    assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn cache_on_vs_off_is_byte_identical_across_worker_counts() {
    // The same batched workload must produce byte-identical results with
    // the transform cache on or off, at 1, 2 and 4 workers. This is the
    // "caching is an optimization, never an observable" guarantee.
    let fixtures: Vec<(Vec<u8>, Vec<u8>)> = (0..3u8)
        .map(|s| protected_photo(s + 10, 65 + s * 10))
        .collect();
    let transforms = [
        Transformation::Rotate90,
        Transformation::FlipVertical,
        Transformation::Recompress { quality: 35 },
        Transformation::Scale {
            width: 32,
            height: 32,
            filter: puppies_transform::ScaleFilter::Box,
        },
    ];
    let run = |config: PspConfig, workers: usize| -> Vec<(Vec<u8>, Vec<u8>)> {
        let server = PspServer::with_config(config);
        let ids: Vec<PhotoId> = fixtures
            .iter()
            .map(|(b, p)| server.upload(b.clone(), p.clone()).unwrap())
            .collect();
        // Repeat each (photo, transform) pair twice so the cached run
        // actually exercises hits.
        let mut requests = Vec::new();
        for _ in 0..2 {
            for &id in &ids {
                for t in &transforms {
                    requests.push((id, t.clone()));
                }
            }
        }
        let pool = WorkerPool::new(workers);
        let results = with_pool(&pool, || server.transform_batch(&requests));
        results
            .into_iter()
            .map(|r| {
                let (b, p) = r.unwrap();
                (b.to_vec(), p.to_vec())
            })
            .collect()
    };
    let reference = run(PspConfig::uncached(), 1);
    for workers in [1usize, 2, 4] {
        let cached = run(PspConfig::default(), workers);
        let uncached = run(PspConfig::uncached(), workers);
        assert_eq!(cached, reference, "cache on, {workers} workers");
        assert_eq!(uncached, reference, "cache off, {workers} workers");
    }
    // Sanity: the cached configuration actually hit.
    let server = PspServer::new();
    let (b, p) = &fixtures[0];
    let id = server.upload(b.clone(), p.clone()).unwrap();
    server
        .download_transformed(id, &Transformation::Rotate90)
        .unwrap();
    server
        .download_transformed(id, &Transformation::Rotate90)
        .unwrap();
    assert_eq!(server.cache_stats().hits, 1);
}
