//! Property tests for the GF(256) Shamir layer: split/reconstruct
//! round-trips over random payloads and (n, k) shapes, integrity-tag
//! corruption detection, and the field axioms checked against the
//! log/exp-table implementation.

use proptest::prelude::*;
use puppies_psp::cluster::gf256;
use puppies_psp::cluster::shamir::{reconstruct, split, ShamirError, Share};

fn arb_seed() -> impl Strategy<Value = [u8; 32]> {
    any::<[u8; 32]>()
}

/// (n, k) with 1 ≤ k ≤ n ≤ 10 — small enough that subset selection
/// stays cheap, wide enough to cover k = 1, k = n, and the middle.
fn arb_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=10, any::<usize>()).prop_map(|(n, kr)| (n, 1 + kr % n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any k distinct shares (here: a random contiguous-free selection)
    /// reconstruct the exact payload, for any payload length and shape.
    #[test]
    fn split_reconstruct_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        shape in arb_shape(),
        generation in any::<u16>(),
        seed in arb_seed(),
        pick_seed in any::<u64>(),
    ) {
        let (n, k) = shape;
        let shares = split(&payload, n, k, generation, seed).unwrap();
        prop_assert_eq!(shares.len(), n);
        // Pick k distinct indices pseudo-randomly from pick_seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = pick_seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let subset: Vec<Share> = order[..k].iter().map(|&i| shares[i].clone()).collect();
        prop_assert_eq!(reconstruct(&subset).unwrap(), payload);
    }

    /// k−1 shares never satisfy the threshold.
    #[test]
    fn below_threshold_always_fails(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        shape in arb_shape(),
        seed in arb_seed(),
    ) {
        let (n, k) = shape;
        prop_assume!(k > 1);
        let shares = split(&payload, n, k, 0, seed).unwrap();
        let err = reconstruct(&shares[..k - 1]).unwrap_err();
        prop_assert_eq!(err, ShamirError::NotEnoughShares { have: k - 1, need: k });
    }

    /// Flipping any single bit of any share's payload is caught by the
    /// integrity tag before interpolation.
    #[test]
    fn corrupted_share_detected(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        shape in arb_shape(),
        seed in arb_seed(),
        victim in any::<usize>(),
        byte in any::<usize>(),
        bit in 0u8..8,
    ) {
        let (n, k) = shape;
        let mut shares = split(&payload, n, k, 0, seed).unwrap();
        let v = victim % n;
        let b = byte % shares[v].payload.len();
        shares[v].payload[b] ^= 1 << bit;
        prop_assert!(!shares[v].verify());
        let index = shares[v].index;
        // Reconstruction that includes the corrupted share rejects it.
        prop_assert_eq!(
            reconstruct(&shares).unwrap_err(),
            ShamirError::BadTag { index }
        );
    }

    /// Wire encoding round-trips every share exactly.
    #[test]
    fn share_wire_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        shape in arb_shape(),
        generation in any::<u16>(),
        seed in arb_seed(),
    ) {
        let (n, k) = shape;
        for share in split(&payload, n, k, generation, seed).unwrap() {
            let back = Share::from_bytes(&share.to_bytes()).unwrap();
            prop_assert_eq!(&back, &share);
            prop_assert!(back.verify());
        }
    }

    /// Field axioms vs the table implementation: commutativity,
    /// associativity, distributivity, inverses, and agreement with the
    /// bitwise reference multiplier.
    #[test]
    fn gf256_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c))
        );
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        prop_assert_eq!(gf256::mul(a, b), gf256::mul_naive(a, b));
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::div(gf256::mul(b, a), a), b);
        }
    }

    /// Two splits of the same payload under different seeds produce
    /// different share payloads (k ≥ 2 only: k = 1 replicates), yet both
    /// reconstruct the same secret — fresh randomness is what makes the
    /// rebalance generation bump meaningful.
    #[test]
    fn reseeding_changes_shares_not_secret(
        payload in prop::collection::vec(any::<u8>(), 16..128),
        n in 2usize..=8,
        seed_a in arb_seed(),
        seed_b in arb_seed(),
    ) {
        prop_assume!(seed_a != seed_b);
        let k = 2;
        let a = split(&payload, n, k, 0, seed_a).unwrap();
        let b = split(&payload, n, k, 0, seed_b).unwrap();
        prop_assert_ne!(&a[0].payload, &b[0].payload);
        prop_assert_eq!(reconstruct(&a[n - k..]).unwrap(), payload.clone());
        prop_assert_eq!(reconstruct(&b[n - k..]).unwrap(), payload);
    }
}
