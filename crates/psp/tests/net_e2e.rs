//! End-to-end tests of the networked PSP: a real `Server` on an ephemeral
//! loopback port, driven by the blocking `Client`, checked byte-for-byte
//! against the in-process `PspServer` it wraps.

use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::net::{Client, ServeConfig, Server};
use puppies_psp::{KeyAgreement, PspConfig, PspServer};
use puppies_transform::Transformation;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "puppies_net_e2e_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn protected_photo(seed: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(64, 64, |x, y| {
        Rgb::new(
            seed.wrapping_add((x * 3 + y) as u8),
            (x + y * 2) as u8,
            seed,
        )
    });
    let p = protect(
        &img,
        &[Rect::new(8, 8, 24, 24)],
        &OwnerKey::from_seed([seed; 32]),
        &ProtectOptions::default(),
    )
    .unwrap();
    (p.bytes, p.params.to_bytes())
}

struct Running {
    addr: String,
    admin: String,
    join: JoinHandle<()>,
}

fn start(dir: &Path) -> Running {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let join = std::thread::spawn(move || server.run().unwrap());
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .unwrap()
        .trim()
        .to_string();
    Running { addr, admin, join }
}

fn stop(run: Running) {
    let mut c = Client::connect(&run.addr).unwrap();
    c.shutdown(&run.admin).unwrap();
    run.join.join().unwrap();
}

#[test]
fn wire_flow_matches_in_process_byte_for_byte() {
    let dir = tmp("parity");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    client.health().unwrap();

    let (bytes, params) = protected_photo(7);
    let receipt = client.upload(&bytes, &params).unwrap();

    // Raw download round-trips the protected bitstream untouched.
    assert_eq!(client.download(receipt.id).unwrap(), bytes);
    assert_eq!(client.download_params(receipt.id).unwrap(), params);

    // The serving-door transform matches the in-process path exactly.
    let reference = PspServer::new();
    let ref_id = reference.upload(bytes.clone(), params.clone()).unwrap();
    let t = Transformation::Rotate90;
    let (ref_bytes, ref_params) = reference.download_transformed(ref_id, &t).unwrap();
    let (net_bytes, net_params, _) = client.download_transformed(receipt.id, &t).unwrap();
    assert_eq!(net_bytes, ref_bytes.to_vec());
    assert_eq!(net_params, ref_params.to_vec());

    // Second identical request is a cache hit on the wire.
    let (_, _, cache) = client.download_transformed(receipt.id, &t).unwrap();
    assert_eq!(cache, puppies_psp::net::client::WireCache::Hit);

    // In-place transform needs the owner token.
    let err = client
        .transform(receipt.id, "0000", &Transformation::Rotate180)
        .unwrap_err();
    assert!(err.to_string().contains("403"), "got: {err}");
    client
        .transform(receipt.id, &receipt.owner_token, &Transformation::Rotate180)
        .unwrap();
    reference
        .transform(ref_id, &Transformation::Rotate180)
        .unwrap();
    assert_eq!(
        client.download(receipt.id).unwrap(),
        reference.download(ref_id).unwrap().to_vec()
    );

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grant_mailbox_is_end_to_end_encrypted_and_durable() {
    let dir = tmp("grants");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();

    // Receiver registers; sender encrypts a grant for them end-to-end.
    let receiver_ka = KeyAgreement::new(&mut rand_seeded(1));
    let sender_ka = KeyAgreement::new(&mut rand_seeded(2));
    let token = client
        .register_receiver(receiver_ka.public_value())
        .unwrap();

    let sender_channel = sender_ka.agree(receiver_ka.public_value());
    let plaintext = b"grant: keys for photo 0".to_vec();
    let ciphertext = sender_channel.encrypt(&plaintext);
    client
        .deposit_grant(
            receiver_ka.public_value(),
            sender_ka.public_value(),
            &ciphertext,
        )
        .unwrap();

    // Restart the server: the mailbox and token must survive.
    stop(run);
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();

    let grants = client.fetch_grants(&token).unwrap();
    assert_eq!(grants.len(), 1);
    let (sender_public, fetched) = &grants[0];
    let receiver_channel = receiver_ka.agree(*sender_public);
    assert_eq!(receiver_channel.decrypt(fetched).unwrap(), plaintext);

    // Drained durably: another fetch (and another restart) is empty.
    assert!(client.fetch_grants(&token).unwrap().is_empty());
    stop(run);
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    assert!(client.fetch_grants(&token).unwrap().is_empty());
    assert!(client.fetch_grants("deadbeef").is_err());

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uploads_survive_restart_and_ids_keep_allocating() {
    let dir = tmp("restart");
    let (bytes, params) = protected_photo(3);
    let first;
    {
        let run = start(&dir);
        let mut client = Client::connect(&run.addr).unwrap();
        first = client.upload(&bytes, &params).unwrap();
        stop(run);
    }
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    assert_eq!(client.download(first.id).unwrap(), bytes);
    // Owner token derivation is stable across restarts.
    client
        .transform(first.id, &first.owner_token, &Transformation::FlipVertical)
        .unwrap();
    let second = client.upload(&bytes, &params).unwrap();
    assert!(second.id > first.id);
    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_applies_serve_conf() {
    let dir = tmp("reload");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    let (bytes, params) = protected_photo(9);

    std::fs::write(dir.join("serve.conf"), "max_body = 64\n").unwrap();
    let echo = client.reload(&run.admin).unwrap();
    assert!(echo.contains("max_body:64"), "got: {echo}");

    // Uploads over the new cap are refused; small bodies still work.
    let mut fresh = Client::connect(&run.addr).unwrap();
    assert!(fresh.upload(&bytes, &params).is_err());
    let mut fresh = Client::connect(&run.addr).unwrap();
    fresh.health().unwrap();

    std::fs::write(dir.join("serve.conf"), "").unwrap();
    client.reload(&run.admin).unwrap();
    let mut fresh = Client::connect(&run.addr).unwrap();
    fresh.upload(&bytes, &params).unwrap();

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

fn rand_seeded(seed: u8) -> impl rand::Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha20Rng::from_seed([seed; 32])
}
