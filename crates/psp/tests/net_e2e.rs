//! End-to-end tests of the networked PSP: a real `Server` on an ephemeral
//! loopback port, driven by the blocking `Client`, checked byte-for-byte
//! against the in-process `PspServer` it wraps.

use puppies_core::{protect, OwnerKey, ProtectOptions};
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_psp::net::{Client, ServeConfig, Server};
use puppies_psp::{KeyAgreement, PspConfig, PspServer};
use puppies_transform::Transformation;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "puppies_net_e2e_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn protected_photo(seed: u8) -> (Vec<u8>, Vec<u8>) {
    let img = RgbImage::from_fn(64, 64, |x, y| {
        Rgb::new(
            seed.wrapping_add((x * 3 + y) as u8),
            (x + y * 2) as u8,
            seed,
        )
    });
    let p = protect(
        &img,
        &[Rect::new(8, 8, 24, 24)],
        &OwnerKey::from_seed([seed; 32]),
        &ProtectOptions::default(),
    )
    .unwrap();
    (p.bytes, p.params.to_bytes())
}

struct Running {
    addr: String,
    admin: String,
    join: JoinHandle<()>,
}

fn start(dir: &Path) -> Running {
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let join = std::thread::spawn(move || server.run().unwrap());
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .unwrap()
        .trim()
        .to_string();
    Running { addr, admin, join }
}

fn stop(run: Running) {
    let mut c = Client::connect(&run.addr).unwrap();
    c.shutdown(&run.admin).unwrap();
    run.join.join().unwrap();
}

#[test]
fn wire_flow_matches_in_process_byte_for_byte() {
    let dir = tmp("parity");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    client.health().unwrap();

    let (bytes, params) = protected_photo(7);
    let receipt = client.upload(&bytes, &params).unwrap();

    // Raw download round-trips the protected bitstream untouched.
    assert_eq!(client.download(receipt.id).unwrap(), bytes);
    assert_eq!(client.download_params(receipt.id).unwrap(), params);

    // The serving-door transform matches the in-process path exactly.
    let reference = PspServer::new();
    let ref_id = reference.upload(bytes.clone(), params.clone()).unwrap();
    let t = Transformation::Rotate90;
    let (ref_bytes, ref_params) = reference.download_transformed(ref_id, &t).unwrap();
    let (net_bytes, net_params, _) = client.download_transformed(receipt.id, &t).unwrap();
    assert_eq!(net_bytes, ref_bytes.to_vec());
    assert_eq!(net_params, ref_params.to_vec());

    // Second identical request is a cache hit on the wire.
    let (_, _, cache) = client.download_transformed(receipt.id, &t).unwrap();
    assert_eq!(cache, puppies_psp::net::client::WireCache::Hit);

    // In-place transform needs the owner token.
    let err = client
        .transform(receipt.id, "0000", &Transformation::Rotate180)
        .unwrap_err();
    assert!(err.to_string().contains("403"), "got: {err}");
    client
        .transform(receipt.id, &receipt.owner_token, &Transformation::Rotate180)
        .unwrap();
    reference
        .transform(ref_id, &Transformation::Rotate180)
        .unwrap();
    assert_eq!(
        client.download(receipt.id).unwrap(),
        reference.download(ref_id).unwrap().to_vec()
    );

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grant_mailbox_is_end_to_end_encrypted_and_durable() {
    let dir = tmp("grants");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();

    // Receiver registers; sender encrypts a grant for them end-to-end.
    let receiver_ka = KeyAgreement::new(&mut rand_seeded(1));
    let sender_ka = KeyAgreement::new(&mut rand_seeded(2));
    let token = client
        .register_receiver(receiver_ka.public_value())
        .unwrap();

    let sender_channel = sender_ka.agree(receiver_ka.public_value());
    let plaintext = b"grant: keys for photo 0".to_vec();
    let ciphertext = sender_channel.encrypt(&plaintext);
    client
        .deposit_grant(
            receiver_ka.public_value(),
            sender_ka.public_value(),
            &ciphertext,
        )
        .unwrap();

    // Restart the server: the mailbox and token must survive.
    stop(run);
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();

    let grants = client.fetch_grants(&token).unwrap();
    assert_eq!(grants.len(), 1);
    let (sender_public, fetched) = &grants[0];
    let receiver_channel = receiver_ka.agree(*sender_public);
    assert_eq!(receiver_channel.decrypt(fetched).unwrap(), plaintext);

    // Drained durably: another fetch (and another restart) is empty.
    assert!(client.fetch_grants(&token).unwrap().is_empty());
    stop(run);
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    assert!(client.fetch_grants(&token).unwrap().is_empty());
    assert!(client.fetch_grants("deadbeef").is_err());

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uploads_survive_restart_and_ids_keep_allocating() {
    let dir = tmp("restart");
    let (bytes, params) = protected_photo(3);
    let first;
    {
        let run = start(&dir);
        let mut client = Client::connect(&run.addr).unwrap();
        first = client.upload(&bytes, &params).unwrap();
        stop(run);
    }
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    assert_eq!(client.download(first.id).unwrap(), bytes);
    // Owner token derivation is stable across restarts.
    client
        .transform(first.id, &first.owner_token, &Transformation::FlipVertical)
        .unwrap();
    let second = client.upload(&bytes, &params).unwrap();
    assert!(second.id > first.id);
    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_applies_serve_conf() {
    let dir = tmp("reload");
    let run = start(&dir);
    let mut client = Client::connect(&run.addr).unwrap();
    let (bytes, params) = protected_photo(9);

    std::fs::write(dir.join("serve.conf"), "max_body = 64\n").unwrap();
    let echo = client.reload(&run.admin).unwrap();
    assert!(echo.contains("max_body:64"), "got: {echo}");

    // Uploads over the new cap are refused; small bodies still work.
    let mut fresh = Client::connect(&run.addr).unwrap();
    assert!(fresh.upload(&bytes, &params).is_err());
    let mut fresh = Client::connect(&run.addr).unwrap();
    fresh.health().unwrap();

    std::fs::write(dir.join("serve.conf"), "").unwrap();
    client.reload(&run.admin).unwrap();
    let mut fresh = Client::connect(&run.addr).unwrap();
    fresh.upload(&bytes, &params).unwrap();

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

fn rand_seeded(seed: u8) -> impl rand::Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha20Rng::from_seed([seed; 32])
}

/// Serializes the tests that install the process-global obs subscriber
/// (and the one asserting its absence).
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// One raw HTTP GET with arbitrary extra header lines; returns the status.
fn raw_get(addr: &str, path: &str, extra: &str) -> u16 {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nhost: t\r\n{extra}connection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    String::from_utf8_lossy(&buf)
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status")
}

#[test]
fn readyz_is_503_until_recovery_publishes_the_store() {
    let dir = tmp("readyz");
    // Seed the store with one upload so recovery has something to replay.
    let (bytes, params) = protected_photo(5);
    let seeded_id = {
        let run = start(&dir);
        let mut client = Client::connect(&run.addr).unwrap();
        let id = client.upload(&bytes, &params).unwrap().id;
        stop(run);
        id
    };
    let (server, recovery) = Server::bind_unready(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.clone(),
        fsync: false,
        psp: PspConfig::default(),
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let admin = std::fs::read_to_string(dir.join("admin.token"))
        .unwrap()
        .trim()
        .to_string();
    let join = std::thread::spawn(move || server.run().unwrap());

    // Liveness answers before replay; readiness and the store do not.
    assert_eq!(raw_get(&addr, "/healthz", ""), 200);
    assert_eq!(raw_get(&addr, "/health", ""), 200);
    assert_eq!(raw_get(&addr, "/readyz", ""), 503);
    let mut client = Client::connect(&addr).unwrap();
    assert!(!client.ready().unwrap());
    assert!(client.download(seeded_id).is_err());

    let stats = recovery.run().unwrap();
    assert!(stats.records > 0, "seeded WAL should replay records");
    assert_eq!(raw_get(&addr, "/readyz", ""), 200);
    let mut client = Client::connect(&addr).unwrap();
    assert!(client.ready().unwrap());
    assert_eq!(client.download(seeded_id).unwrap(), bytes);

    let mut c = Client::connect(&addr).unwrap();
    c.shutdown(&admin).unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_scrape_is_prometheus_text_and_counters_are_monotone() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = tmp("metrics");
    let run = start(&dir);

    // Without a subscriber the scrape is an explicit 503, not empty-200.
    assert!(!puppies_obs::enabled());
    let mut client = Client::connect(&run.addr).unwrap();
    let err = client.metrics_text().unwrap_err();
    assert!(err.to_string().contains("503"), "got: {err}");

    let session = puppies_obs::Obs::install();
    let (bytes, params) = protected_photo(6);
    let receipt = client.upload(&bytes, &params).unwrap();
    client
        .download_transformed(receipt.id, &Transformation::Rotate90)
        .unwrap();
    client
        .download_transformed(receipt.id, &Transformation::Rotate90)
        .unwrap();

    let first = client.metrics_text().unwrap();
    assert!(first.contains("# TYPE psp_net_requests_total counter"));
    assert!(first.contains("psp_ready 1"));
    assert!(first.contains("psp_slo_requests_total{endpoint=\"transformed\"}"));
    assert!(first.contains("psp_slo_window_coeff_serve_rate{endpoint=\"transformed\"} 1"));
    assert!(first.contains("psp_slo_window_cache_hit_rate{endpoint=\"transformed\"} 0.5"));
    let parse = |text: &str, name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} missing"))
    };
    client.download(receipt.id).unwrap();
    let second = client.metrics_text().unwrap();
    assert!(
        parse(&second, "psp_net_requests_total") > parse(&first, "psp_net_requests_total"),
        "request counter must be monotone across scrapes"
    );
    // The structured access log captured the served-path fields.
    let log = std::fs::read_to_string(dir.join("access.log")).unwrap();
    assert!(log.contains("\"served\":\"coeff-domain\""), "got: {log}");
    assert!(log.contains("\"cache\":\"hit\""), "got: {log}");

    drop(session.finish());
    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_header_stitches_one_tree_and_malformed_headers_are_safe() {
    let _guard = OBS_LOCK.lock().unwrap();
    let dir = tmp("trace");
    let run = start(&dir);

    // Malformed or absent trace headers must never fail a request.
    for extra in [
        "",
        "x-puppies-trace: zzzz\r\n",
        "x-puppies-trace: 123\r\n",
        "x-puppies-trace: -\r\n",
        "x-puppies-trace: 1-2-3\r\n",
        "x-puppies-trace: ffffffffffffffffff-1\r\n",
    ] {
        assert_eq!(raw_get(&run.addr, "/health", extra), 200, "extra={extra:?}");
    }

    let session = puppies_obs::Obs::install();
    let (bytes, params) = protected_photo(8);
    {
        let _root = puppies_obs::span("test.e2e", "test");
        let mut client = Client::connect(&run.addr).unwrap();
        let receipt = client.upload(&bytes, &params).unwrap();
        client
            .download_transformed(receipt.id, &Transformation::Rotate90)
            .unwrap();
        let mut cfg = puppies_psp::ClusterConfig::new(3, 2);
        cfg.backend = PspConfig::uncached();
        let cluster = puppies_psp::ShardedPspCluster::new(cfg).unwrap();
        let grant = OwnerKey::from_seed([8u8; 32]).grant_all();
        let id = cluster
            .upload(bytes.clone(), params.clone(), &grant)
            .unwrap();
        cluster.reconstruct(id).unwrap();
    }
    let obs = session.finish().unwrap();
    let spans = obs.spans();
    let by_id: std::collections::HashMap<u64, &puppies_obs::SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    let root = spans
        .iter()
        .find(|s| s.name == "test.e2e")
        .expect("root span recorded");
    let descends_from_root = |mut id: u64| -> bool {
        // Walk parents; depth-capped in case of concurrent-test noise.
        for _ in 0..64 {
            if id == root.id {
                return true;
            }
            match by_id.get(&id) {
                Some(s) if s.parent != 0 => id = s.parent,
                _ => return false,
            }
        }
        false
    };
    let client_ids: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "psp.net.client_call" && descends_from_root(s.id))
        .map(|s| s.id)
        .collect();
    assert!(!client_ids.is_empty(), "client spans under the test root");
    // The server adopted the wire trace context: its request spans hang
    // off this process's client spans, completing one connected tree.
    let adopted = spans
        .iter()
        .filter(|s| s.name == "psp.net.request" && client_ids.contains(&s.parent))
        .count();
    assert!(
        adopted >= 2,
        "server spans parented to client spans (upload + transform), got {adopted}"
    );
    // Cluster fan-out spans joined the same tree: one per backend for the
    // store, at least k for the reconstruct fetch.
    let backend_stores = spans
        .iter()
        .filter(|s| s.name == "cluster.backend.store" && descends_from_root(s.id))
        .count();
    let backend_fetches = spans
        .iter()
        .filter(|s| s.name == "cluster.backend.fetch" && descends_from_root(s.id))
        .count();
    assert_eq!(backend_stores, 3, "one store span per backend");
    assert!(
        backend_fetches >= 2,
        "at least k fetch spans, got {backend_fetches}"
    );

    stop(run);
    let _ = std::fs::remove_dir_all(&dir);
}
