//! Property tests for WAL recovery: any prefix of a recorded log —
//! including one torn mid-record — recovers exactly the records whose
//! frames are fully contained in the prefix, in order, losing nothing
//! that was acknowledged before the cut.

use proptest::prelude::*;
use puppies_psp::wal::{scan, WalRecord};

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), any::<[u8; 32]>(), any::<[u8; 32]>()).prop_map(
            |(id, bytes_sha, params_sha)| WalRecord::Upload {
                id,
                bytes_sha,
                params_sha,
            }
        ),
        (any::<u64>(), any::<[u8; 32]>(), any::<[u8; 32]>()).prop_map(
            |(id, bytes_sha, params_sha)| WalRecord::Transform {
                id,
                bytes_sha,
                params_sha,
            }
        ),
        (any::<u128>(), any::<[u8; 32]>())
            .prop_map(|(dh_public, token)| WalRecord::Receiver { dh_public, token }),
        (
            any::<u128>(),
            any::<u128>(),
            prop::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(receiver, sender, ciphertext)| WalRecord::GrantDeposit {
                receiver,
                sender,
                ciphertext,
            }),
        any::<u128>().prop_map(|receiver| WalRecord::GrantDrain { receiver }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cutting a valid log at any byte offset recovers exactly the
    /// records whose frames fit in the prefix — no lost acknowledged
    /// records before the cut, no phantom records after it.
    #[test]
    fn any_prefix_recovers_exactly_the_contained_records(
        records in prop::collection::vec(arb_record(), 0..12),
        cut_fraction in 0.0f64..=1.0,
    ) {
        let frames: Vec<Vec<u8>> = records.iter().map(WalRecord::to_frame).collect();
        let log: Vec<u8> = frames.concat();
        let cut = ((log.len() as f64) * cut_fraction) as usize;
        let prefix = &log[..cut.min(log.len())];

        // How many whole frames fit in the prefix?
        let mut fit = 0;
        let mut consumed = 0;
        for frame in &frames {
            if consumed + frame.len() <= prefix.len() {
                fit += 1;
                consumed += frame.len();
            } else {
                break;
            }
        }

        let (recovered, good) = scan(prefix);
        prop_assert_eq!(recovered.len(), fit, "prefix of {} bytes", prefix.len());
        prop_assert_eq!(&recovered[..], &records[..fit]);
        // `good` is the clean-prefix end offset; everything past it is the
        // torn tail that replay truncates.
        prop_assert_eq!(good as usize, consumed);
    }

    /// Appending arbitrary garbage after a valid log never corrupts the
    /// recovered records: everything acknowledged still replays, and the
    /// garbage is reported as the truncatable tail (unless it happens to
    /// parse, in which case recovery keeps strictly more).
    #[test]
    fn garbage_tail_never_loses_acknowledged_records(
        records in prop::collection::vec(arb_record(), 0..8),
        garbage in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let mut log: Vec<u8> = records.iter().flat_map(|r| r.to_frame()).collect();
        log.extend_from_slice(&garbage);
        let (recovered, _) = scan(&log);
        prop_assert!(recovered.len() >= records.len());
        prop_assert_eq!(&recovered[..records.len()], &records[..]);
    }

    /// Encode/decode of every record variant round-trips through the
    /// frame writer and the scanner.
    #[test]
    fn frames_roundtrip(records in prop::collection::vec(arb_record(), 0..16)) {
        let log: Vec<u8> = records.iter().flat_map(|r| r.to_frame()).collect();
        let (recovered, good) = scan(&log);
        prop_assert_eq!(recovered, records);
        // A log of intact frames scans clean to its end: nothing torn.
        prop_assert_eq!(good as usize, log.len());
    }
}
