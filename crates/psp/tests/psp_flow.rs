//! Integration tests for the PSP layer: the full
//! sender → server → transform → receiver flows that the inline module
//! tests only cover piecewise.

use puppies_core::{OwnerKey, PerturbProfile, PrivacyLevel, ProtectOptions, PublicParams, Scheme};
use puppies_image::metrics::psnr_rgb;
use puppies_image::{Rect, Rgb, RgbImage};
use puppies_jpeg::CoeffImage;
use puppies_psp::{transport_grant, KeyAgreement, PhotoId, PspServer, Receiver, Sender};
use puppies_transform::Transformation;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn photo() -> RgbImage {
    RgbImage::from_fn(64, 48, |x, y| {
        Rgb::new(
            (64 + (x * 5 + y * 2) % 128) as u8,
            (64 + (x * 2 + y * 4) % 128) as u8,
            (64 + (x + y * 3) % 128) as u8,
        )
    })
}

const ROI: Rect = Rect::new(16, 8, 32, 24);

#[test]
fn share_grant_fetch_round_trip_is_exact() {
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([5u8; 32]));
    let img = photo();
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let (photo_id, image_id) = sender.share(&server, &img, &[ROI], &opts).unwrap();

    // An authorized receiver sees the original image (scenario 1: the
    // stored JPEG is decoded and un-perturbed coefficient-exact).
    let receiver = Receiver::with_grant(sender.grant(image_id, &[0]));
    let fetched = receiver.fetch(&server, photo_id).unwrap();
    let reference = CoeffImage::from_rgb(&img, opts.quality).to_rgb();
    assert_eq!(fetched, reference, "authorized fetch must be exact");

    // The public view differs inside the ROI (that's the whole point) and
    // matches outside it.
    let public = receiver.fetch_public_view(&server, photo_id).unwrap();
    assert_ne!(public, reference);
    let mut outside_equal = true;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let inside = (ROI.x..ROI.x + ROI.w).contains(&x) && (ROI.y..ROI.y + ROI.h).contains(&y);
            if !inside && public.get(x, y) != reference.get(x, y) {
                outside_equal = false;
            }
        }
    }
    assert!(outside_equal, "perturbation must not leak outside the ROI");
}

#[test]
fn unauthorized_receiver_cannot_recover() {
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([5u8; 32]));
    let img = photo();
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let (photo_id, _) = sender.share(&server, &img, &[ROI], &opts).unwrap();

    let stranger = Receiver::new();
    let reference = CoeffImage::from_rgb(&img, opts.quality).to_rgb();
    // Without keys the fetch either fails or returns the perturbed view —
    // it must never equal the original.
    if let Ok(view) = stranger.fetch(&server, photo_id) {
        assert_ne!(view, reference);
    }
}

#[test]
fn server_transform_then_fetch_recovers_exactly() {
    // The PSP rotates the stored photo; an authorized receiver still
    // recovers the rotation of the *original* exactly (§IV-C).
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([7u8; 32]));
    let img = photo();
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let (photo_id, image_id) = sender.share(&server, &img, &[ROI], &opts).unwrap();
    server
        .transform(photo_id, &Transformation::Rotate90)
        .unwrap();

    let receiver = Receiver::with_grant(sender.grant(image_id, &[0]));
    let fetched = receiver.fetch(&server, photo_id).unwrap();
    let expected = Transformation::Rotate90
        .apply_to_coeff(&CoeffImage::from_rgb(&img, opts.quality))
        .unwrap()
        .to_rgb();
    assert_eq!(fetched, expected, "post-transform recovery must be exact");
}

#[test]
fn server_rejects_second_transform() {
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([7u8; 32]));
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let (photo_id, _) = sender.share(&server, &photo(), &[ROI], &opts).unwrap();
    server
        .transform(photo_id, &Transformation::FlipHorizontal)
        .unwrap();
    assert!(
        server
            .transform(photo_id, &Transformation::Rotate90)
            .is_err(),
        "params track exactly one transformation; a second must be refused"
    );
}

#[test]
fn server_pixel_transform_shadow_recovery() {
    // Downscale on the PSP, shadow recovery at the receiver: needs the
    // transform-friendly profile, and is approximate (PSNR-bounded).
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([3u8; 32]));
    let img = photo();
    let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly());
    let (photo_id, image_id) = sender.share(&server, &img, &[ROI], &opts).unwrap();
    let t = Transformation::Scale {
        width: 32,
        height: 24,
        filter: puppies_transform::ScaleFilter::Bilinear,
    };
    server.transform(photo_id, &t).unwrap();

    let expected = t
        .apply_to_rgb(&CoeffImage::from_rgb(&img, opts.quality).to_rgb())
        .unwrap();
    let authorized = Receiver::with_grant(sender.grant(image_id, &[0]));
    let recovered = authorized.fetch(&server, photo_id).unwrap();
    let baseline = authorized.fetch_public_view(&server, photo_id).unwrap();
    let psnr = psnr_rgb(&recovered, &expected);
    let psnr_baseline = psnr_rgb(&baseline, &expected);
    assert!(
        psnr > psnr_baseline + 3.0 && psnr > 22.0,
        "shadow recovery {psnr:.1} dB vs baseline {psnr_baseline:.1} dB"
    );
}

#[test]
fn grant_transport_over_secure_channel_preserves_keys() {
    // DH agree → encrypt grant → decrypt → the transported grant recovers
    // as well as the original one.
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let alice = KeyAgreement::new(&mut rng);
    let bob = KeyAgreement::new(&mut rng);
    let alice_chan = alice.agree(bob.public_value());
    let bob_chan = bob.agree(alice.public_value());

    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([21u8; 32]));
    let img = photo();
    let opts = ProtectOptions::new(Scheme::Base, PrivacyLevel::High);
    let (photo_id, image_id) = sender.share(&server, &img, &[ROI], &opts).unwrap();

    let grant = sender.grant(image_id, &[0]);
    let transported = transport_grant(&alice_chan, &bob_chan, &grant).unwrap();
    let receiver = Receiver::with_grant(transported);
    let fetched = receiver.fetch(&server, photo_id).unwrap();
    assert_eq!(fetched, CoeffImage::from_rgb(&img, opts.quality).to_rgb());
}

#[test]
fn tampered_ciphertext_is_rejected() {
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let a = KeyAgreement::new(&mut rng);
    let b = KeyAgreement::new(&mut rng);
    let chan_a = a.agree(b.public_value());
    let chan_b = b.agree(a.public_value());
    let mut cipher = chan_a.encrypt(b"some grant bytes");
    let mid = cipher.len() / 2;
    cipher[mid] ^= 0x01;
    assert!(
        chan_b.decrypt(&cipher).is_err(),
        "checksum must catch tampering"
    );
}

#[test]
fn storage_footprint_counts_image_and_params() {
    let server = PspServer::new();
    let mut sender = Sender::new(OwnerKey::from_seed([2u8; 32]));
    let opts = ProtectOptions::new(Scheme::Zero, PrivacyLevel::Medium);
    let (photo_id, _) = sender.share(&server, &photo(), &[ROI], &opts).unwrap();
    let bytes = server.download(photo_id).unwrap();
    let params = server.download_params(photo_id).unwrap();
    assert!(PublicParams::from_bytes(&params).is_ok());
    assert_eq!(
        server.storage_footprint(photo_id).unwrap(),
        bytes.len() + params.len()
    );
    assert!(server.download(PhotoId(u64::MAX)).is_err());
}
