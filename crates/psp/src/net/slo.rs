//! Rolling-window SLO accounting for the networked PSP.
//!
//! Each endpoint gets a tracker: cumulative request/error/burn counters
//! plus a ring of time slots (default six 10-second slots = a 60-second
//! window) holding per-slot request counts, error counts, a latency
//! histogram, and the transform-door serve-path tallies. Recording is
//! lock-free — a handful of relaxed atomics per request; a slot whose
//! epoch has passed is reset in place by the first thread to claim it
//! for the new epoch, so the window "rolls" without any background
//! thread. Resets racing with records can lose a few edge samples; SLO
//! windows are statistics, not ledgers, and accept that.
//!
//! The **error budget burn** counter increments once per failed request
//! that lands while the rolling window's error rate already exceeds the
//! target (default 1%, i.e. a 99% availability SLO) — a scrape-friendly
//! monotone signal that alerting can rate() without re-deriving window
//! state.

use puppies_obs::{escape_prom_label, Histogram};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The endpoints tracked, in exposition order. `other` absorbs anything
/// unrecognized so the label set stays bounded.
pub const ENDPOINTS: [&str; 9] = [
    "upload",
    "download",
    "params",
    "transformed",
    "transform",
    "search",
    "grants",
    "receivers",
    "other",
];

/// Window geometry and SLO target.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Seconds per slot.
    pub slot_secs: u64,
    /// Slots in the ring; the window covers `slot_secs * slots` seconds.
    pub slots: usize,
    /// Error-rate target (fraction of requests); the error budget burns
    /// while the window's rate is above this.
    pub target_error_rate: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            slot_secs: 10,
            slots: 6,
            target_error_rate: 0.01,
        }
    }
}

/// One request's contribution to the window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    /// `false` counts against the error budget (the server treats 5xx as
    /// errors; 4xx are the client's problem, not the SLO's).
    pub ok: bool,
    /// Service time in microseconds.
    pub latency_us: u64,
    /// Transform door only: did the result cache serve it?
    pub cache_hit: Option<bool>,
    /// Transform door only, cache misses only: coefficient-domain
    /// (`true`) vs pixel-fallback (`false`).
    pub coeff_served: Option<bool>,
    /// Transform door only, cache hits only: served via the perceptual
    /// signature (family) key (`true`) vs the exact content key (`false`).
    pub sig_hit: Option<bool>,
}

/// A slot's epoch tag is `epoch + 1` so the zero-initialized ring reads
/// as "never used" rather than "epoch 0".
#[derive(Default)]
struct Slot {
    tag: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_lookups: AtomicU64,
    coeff: AtomicU64,
    coeff_lookups: AtomicU64,
    sig_hits: AtomicU64,
    sig_lookups: AtomicU64,
    latency: Histogram,
}

impl Slot {
    fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_lookups.store(0, Ordering::Relaxed);
        self.coeff.store(0, Ordering::Relaxed);
        self.coeff_lookups.store(0, Ordering::Relaxed);
        self.sig_hits.store(0, Ordering::Relaxed);
        self.sig_lookups.store(0, Ordering::Relaxed);
        self.latency.reset();
    }
}

/// Point-in-time view of one endpoint's rolling window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Requests in the window.
    pub requests: u64,
    /// Errors in the window.
    pub errors: u64,
    /// Seconds the window currently covers (grows until the ring fills).
    pub covered_secs: u64,
    /// Requests per second over `covered_secs`.
    pub request_rate: f64,
    /// Errors / requests (0 when idle).
    pub error_rate: f64,
    /// Median latency estimate, µs.
    pub p50_us: f64,
    /// 99th-percentile latency estimate, µs.
    pub p99_us: f64,
    /// Cache hits / cache lookups, when the endpoint consults the cache.
    pub cache_hit_rate: Option<f64>,
    /// Coeff-domain serves / (coeff + pixel) misses, transform door only.
    pub coeff_serve_rate: Option<f64>,
    /// Signature-family hits / cache hits, transform door only — the
    /// share of cached serves that only the perceptual-identity key could
    /// satisfy.
    pub sig_hit_rate: Option<f64>,
}

/// Cumulative + windowed view of one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloSnapshot {
    /// Requests since process start.
    pub requests_total: u64,
    /// Errors since process start.
    pub errors_total: u64,
    /// Error-budget burn events since process start (see module docs).
    pub burn_total: u64,
    /// The rolling window.
    pub window: WindowStats,
}

struct Tracker {
    slots: Box<[Slot]>,
    requests_total: AtomicU64,
    errors_total: AtomicU64,
    burn_total: AtomicU64,
}

impl Tracker {
    fn new(slots: usize) -> Tracker {
        Tracker {
            slots: (0..slots.max(1)).map(|_| Slot::default()).collect(),
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            burn_total: AtomicU64::new(0),
        }
    }

    fn slot_for(&self, epoch: u64) -> &Slot {
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let tag = epoch + 1;
        if slot.tag.load(Ordering::Relaxed) != tag && slot.tag.swap(tag, Ordering::Relaxed) != tag {
            slot.reset();
        }
        slot
    }

    /// Slots still inside the window ending at `epoch`.
    fn live_slots(&self, epoch: u64) -> impl Iterator<Item = &Slot> {
        let oldest_tag = (epoch + 1).saturating_sub(self.slots.len() as u64 - 1);
        self.slots.iter().filter(move |s| {
            let tag = s.tag.load(Ordering::Relaxed);
            tag != 0 && tag >= oldest_tag && tag <= epoch + 1
        })
    }

    fn record_at(&self, epoch: u64, sample: Sample, target: f64) {
        let slot = self.slot_for(epoch);
        slot.requests.fetch_add(1, Ordering::Relaxed);
        slot.latency.record(sample.latency_us);
        if let Some(hit) = sample.cache_hit {
            slot.cache_lookups.fetch_add(1, Ordering::Relaxed);
            if hit {
                slot.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(coeff) = sample.coeff_served {
            slot.coeff_lookups.fetch_add(1, Ordering::Relaxed);
            if coeff {
                slot.coeff.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(sig) = sample.sig_hit {
            slot.sig_lookups.fetch_add(1, Ordering::Relaxed);
            if sig {
                slot.sig_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if !sample.ok {
            slot.errors.fetch_add(1, Ordering::Relaxed);
            self.errors_total.fetch_add(1, Ordering::Relaxed);
            let (mut req, mut err) = (0u64, 0u64);
            for s in self.live_slots(epoch) {
                req += s.requests.load(Ordering::Relaxed);
                err += s.errors.load(Ordering::Relaxed);
            }
            if req > 0 && err as f64 / req as f64 > target {
                self.burn_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn snapshot_at(&self, epoch: u64, slot_secs: u64) -> SloSnapshot {
        let mut w = WindowStats::default();
        let merged = Histogram::new();
        let (mut hits, mut lookups, mut coeff, mut coeff_lookups) = (0u64, 0u64, 0u64, 0u64);
        let (mut sig_hits, mut sig_lookups) = (0u64, 0u64);
        let mut live = 0u64;
        for s in self.live_slots(epoch) {
            live += 1;
            w.requests += s.requests.load(Ordering::Relaxed);
            w.errors += s.errors.load(Ordering::Relaxed);
            hits += s.cache_hits.load(Ordering::Relaxed);
            lookups += s.cache_lookups.load(Ordering::Relaxed);
            coeff += s.coeff.load(Ordering::Relaxed);
            coeff_lookups += s.coeff_lookups.load(Ordering::Relaxed);
            sig_hits += s.sig_hits.load(Ordering::Relaxed);
            sig_lookups += s.sig_lookups.load(Ordering::Relaxed);
            merged.merge(&s.latency);
        }
        // Idle slots never get claimed, so count covered time from the
        // window's span, capped by how long the process could have run.
        w.covered_secs = slot_secs * (self.slots.len() as u64).min(epoch + 1).max(live);
        if w.covered_secs > 0 {
            w.request_rate = w.requests as f64 / w.covered_secs as f64;
        }
        if w.requests > 0 {
            w.error_rate = w.errors as f64 / w.requests as f64;
        }
        w.p50_us = merged.quantile(0.50);
        w.p99_us = merged.quantile(0.99);
        if lookups > 0 {
            w.cache_hit_rate = Some(hits as f64 / lookups as f64);
        }
        if coeff_lookups > 0 {
            w.coeff_serve_rate = Some(coeff as f64 / coeff_lookups as f64);
        }
        if sig_lookups > 0 {
            w.sig_hit_rate = Some(sig_hits as f64 / sig_lookups as f64);
        }
        SloSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            burn_total: self.burn_total.load(Ordering::Relaxed),
            window: w,
        }
    }
}

/// Per-endpoint SLO trackers plus the shared clock.
pub struct SloRegistry {
    config: SloConfig,
    start: Instant,
    trackers: Vec<(&'static str, Tracker)>,
}

impl Default for SloRegistry {
    fn default() -> Self {
        SloRegistry::new(SloConfig::default())
    }
}

impl SloRegistry {
    /// A registry with one tracker per [`ENDPOINTS`] entry.
    pub fn new(config: SloConfig) -> SloRegistry {
        SloRegistry {
            config,
            start: Instant::now(),
            trackers: ENDPOINTS
                .iter()
                .map(|&name| (name, Tracker::new(config.slots)))
                .collect(),
        }
    }

    fn epoch(&self) -> u64 {
        self.start.elapsed().as_secs() / self.config.slot_secs.max(1)
    }

    fn tracker(&self, endpoint: &str) -> &Tracker {
        self.trackers
            .iter()
            .find(|(name, _)| *name == endpoint)
            .map(|(_, t)| t)
            .unwrap_or(&self.trackers[ENDPOINTS.len() - 1].1)
    }

    /// Records one request against `endpoint` (unknown names fold into
    /// `other`).
    pub fn record(&self, endpoint: &str, sample: Sample) {
        self.record_at(self.epoch(), endpoint, sample);
    }

    /// Test hook: record at an explicit epoch instead of the wall clock.
    pub fn record_at(&self, epoch: u64, endpoint: &str, sample: Sample) {
        self.tracker(endpoint)
            .record_at(epoch, sample, self.config.target_error_rate);
    }

    /// One endpoint's snapshot at the current epoch.
    pub fn snapshot(&self, endpoint: &str) -> SloSnapshot {
        self.snapshot_at(self.epoch(), endpoint)
    }

    /// Test hook: snapshot at an explicit epoch.
    pub fn snapshot_at(&self, epoch: u64, endpoint: &str) -> SloSnapshot {
        self.tracker(endpoint)
            .snapshot_at(epoch, self.config.slot_secs)
    }

    /// Renders every tracker in the Prometheus text format, labelled by
    /// endpoint: monotone `psp_slo_{requests,errors,error_budget_burn}_total`
    /// counters plus `psp_slo_window_*` gauges for the rolling window.
    /// Endpoints with no traffic yet are skipped to keep scrapes small.
    pub fn render_prometheus(&self) -> String {
        let epoch = self.epoch();
        let mut out = String::with_capacity(2048);
        let snaps: Vec<(&str, SloSnapshot)> = self
            .trackers
            .iter()
            .map(|(name, t)| (*name, t.snapshot_at(epoch, self.config.slot_secs)))
            .filter(|(_, s)| s.requests_total > 0)
            .collect();
        if snaps.is_empty() {
            return out;
        }
        let counter =
            |out: &mut String, name: &str, help: &str, get: &dyn Fn(&SloSnapshot) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} counter");
                for (ep, s) in &snaps {
                    let _ = writeln!(
                        out,
                        "{name}{{endpoint=\"{}\"}} {}",
                        escape_prom_label(ep),
                        get(s)
                    );
                }
            };
        counter(
            &mut out,
            "psp_slo_requests_total",
            "requests per endpoint",
            &|s| s.requests_total,
        );
        counter(
            &mut out,
            "psp_slo_errors_total",
            "5xx responses per endpoint",
            &|s| s.errors_total,
        );
        counter(
            &mut out,
            "psp_slo_error_budget_burn_total",
            "errors landed while the window error rate exceeded the SLO target",
            &|s| s.burn_total,
        );
        let gauge = |out: &mut String,
                     name: &str,
                     help: &str,
                     get: &dyn Fn(&SloSnapshot) -> Option<f64>| {
            let mut titled = false;
            for (ep, s) in &snaps {
                let Some(v) = get(s) else { continue };
                if !titled {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    titled = true;
                }
                let _ = writeln!(out, "{name}{{endpoint=\"{}\"}} {v}", escape_prom_label(ep));
            }
        };
        gauge(
            &mut out,
            "psp_slo_window_request_rate",
            "requests/s over the rolling window",
            &|s| Some(s.window.request_rate),
        );
        gauge(
            &mut out,
            "psp_slo_window_error_rate",
            "errors/requests over the rolling window",
            &|s| Some(s.window.error_rate),
        );
        gauge(
            &mut out,
            "psp_slo_window_p99_us",
            "p99 latency (us) over the rolling window",
            &|s| Some(s.window.p99_us),
        );
        gauge(
            &mut out,
            "psp_slo_window_cache_hit_rate",
            "transform-cache hit rate over the rolling window",
            &|s| s.window.cache_hit_rate,
        );
        gauge(
            &mut out,
            "psp_slo_window_coeff_serve_rate",
            "coeff-domain share of uncached transforms over the rolling window",
            &|s| s.window.coeff_serve_rate,
        );
        gauge(
            &mut out,
            "psp_slo_window_sig_hit_rate",
            "signature-family share of cached transform serves over the rolling window",
            &|s| s.window.sig_hit_rate,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(latency_us: u64) -> Sample {
        Sample {
            ok: true,
            latency_us,
            ..Sample::default()
        }
    }

    fn err() -> Sample {
        Sample {
            ok: false,
            latency_us: 1000,
            ..Sample::default()
        }
    }

    #[test]
    fn window_tracks_rates_and_quantiles() {
        let reg = SloRegistry::new(SloConfig::default());
        for i in 0..100 {
            reg.record_at(0, "upload", ok(100 + i));
        }
        reg.record_at(0, "upload", err());
        let s = reg.snapshot_at(0, "upload");
        assert_eq!(s.requests_total, 101);
        assert_eq!(s.errors_total, 1);
        assert_eq!(s.window.requests, 101);
        assert_eq!(s.window.errors, 1);
        assert!(s.window.p50_us >= 100.0 && s.window.p50_us <= 220.0);
        assert!(s.window.request_rate > 0.0);
        assert!(s.window.cache_hit_rate.is_none());
    }

    #[test]
    fn old_slots_roll_out_of_the_window() {
        let cfg = SloConfig {
            slot_secs: 10,
            slots: 3,
            target_error_rate: 0.01,
        };
        let reg = SloRegistry::new(cfg);
        reg.record_at(0, "download", ok(50));
        reg.record_at(1, "download", ok(50));
        // Window at epoch 2 still sees both...
        assert_eq!(reg.snapshot_at(2, "download").window.requests, 2);
        // ...but at epoch 3 the window is epochs 1..=3, so the epoch-0
        // slot has rolled out; at epoch 10 the whole window is empty while
        // the cumulative counters keep the history.
        assert_eq!(reg.snapshot_at(3, "download").window.requests, 1);
        let s = reg.snapshot_at(10, "download");
        assert_eq!(s.window.requests, 0);
        assert_eq!(s.requests_total, 2);
        // A new record at epoch 10 reuses (and resets) a stale slot.
        reg.record_at(10, "download", ok(50));
        assert_eq!(reg.snapshot_at(10, "download").window.requests, 1);
    }

    #[test]
    fn burn_counter_only_ticks_past_the_target() {
        let cfg = SloConfig {
            target_error_rate: 0.5,
            ..SloConfig::default()
        };
        let reg = SloRegistry::new(cfg);
        for _ in 0..10 {
            reg.record_at(0, "transformed", ok(10));
        }
        // 1 error in 11 requests: 9% < 50% target — no burn.
        reg.record_at(0, "transformed", err());
        assert_eq!(reg.snapshot_at(0, "transformed").burn_total, 0);
        // Pile on errors until the window rate crosses 50%: burns tick.
        for _ in 0..15 {
            reg.record_at(0, "transformed", err());
        }
        let s = reg.snapshot_at(0, "transformed");
        assert_eq!(s.errors_total, 16);
        assert!(
            s.burn_total > 0 && s.burn_total < 16,
            "burn={}",
            s.burn_total
        );
    }

    #[test]
    fn serve_path_rates_only_from_transform_samples() {
        let reg = SloRegistry::default();
        for hit in [true, false, false, false] {
            reg.record_at(
                0,
                "transformed",
                Sample {
                    ok: true,
                    latency_us: 200,
                    cache_hit: Some(hit),
                    coeff_served: if hit { None } else { Some(true) },
                    sig_hit: if hit { Some(false) } else { None },
                },
            );
        }
        reg.record_at(
            0,
            "transformed",
            Sample {
                ok: true,
                latency_us: 900,
                cache_hit: Some(false),
                coeff_served: Some(false),
                sig_hit: None,
            },
        );
        let w = reg.snapshot_at(0, "transformed").window;
        assert_eq!(w.cache_hit_rate, Some(0.2));
        assert_eq!(w.coeff_serve_rate, Some(0.75));
        assert_eq!(w.sig_hit_rate, Some(0.0), "one cached serve, exact key");
    }

    #[test]
    fn sig_hit_rate_tracks_family_served_share() {
        let reg = SloRegistry::default();
        // Three cached serves: two via the signature-family key.
        for sig in [true, true, false] {
            reg.record_at(
                0,
                "transformed",
                Sample {
                    ok: true,
                    latency_us: 40,
                    cache_hit: Some(true),
                    coeff_served: None,
                    sig_hit: Some(sig),
                },
            );
        }
        let w = reg.snapshot_at(0, "transformed").window;
        assert_eq!(w.cache_hit_rate, Some(1.0));
        assert!((w.sig_hit_rate.unwrap() - 2.0 / 3.0).abs() < 1e-9);
        let text = reg.render_prometheus();
        assert!(text.contains("psp_slo_window_sig_hit_rate{endpoint=\"transformed\"}"));
        // The search endpoint is a first-class label.
        reg.record_at(
            0,
            "search",
            Sample {
                ok: true,
                latency_us: 10,
                ..Sample::default()
            },
        );
        assert_eq!(reg.snapshot_at(0, "search").requests_total, 1);
    }

    #[test]
    fn unknown_endpoints_fold_into_other() {
        let reg = SloRegistry::default();
        reg.record_at(0, "not-an-endpoint", ok(5));
        assert_eq!(reg.snapshot_at(0, "other").requests_total, 1);
    }

    #[test]
    fn prometheus_rendering_is_labelled_and_monotone_friendly() {
        let reg = SloRegistry::default();
        assert!(
            reg.render_prometheus().is_empty(),
            "idle registry renders nothing"
        );
        reg.record("upload", ok(123));
        reg.record(
            "transformed",
            Sample {
                ok: false,
                latency_us: 5000,
                cache_hit: Some(false),
                coeff_served: Some(true),
                sig_hit: None,
            },
        );
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE psp_slo_requests_total counter"));
        assert!(text.contains("psp_slo_requests_total{endpoint=\"upload\"} 1"));
        assert!(text.contains("psp_slo_errors_total{endpoint=\"transformed\"} 1"));
        assert!(text.contains("psp_slo_error_budget_burn_total{endpoint=\"transformed\"} 1"));
        assert!(text.contains("psp_slo_window_request_rate{endpoint=\"upload\"}"));
        assert!(text.contains("psp_slo_window_coeff_serve_rate{endpoint=\"transformed\"} 1"));
        // Untouched endpoints do not appear.
        assert!(!text.contains("endpoint=\"grants\""));
    }
}
