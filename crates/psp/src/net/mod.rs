//! The PSP on the wire: a std-only HTTP/1.1 service over [`crate::DiskStore`].
//!
//! The PUPPIES deployment model (Fig. 5) puts the photo-sharing platform
//! behind a network boundary: senders upload protected JPEG bitstreams,
//! the semi-honest PSP stores and transforms them, receivers download.
//! This module makes that boundary real without pulling in an HTTP stack:
//! requests are parsed and written by [`http`], bodies are length-framed
//! binary ([`proto`]), and protected bytes travel end-to-end untouched —
//! the server never re-encodes what it did not transform.
//!
//! # Endpoints
//!
//! | Method & path                  | Auth            | Body → response |
//! |--------------------------------|-----------------|-----------------|
//! | `GET  /health`                 | —               | → `ok` (alias `/healthz`; liveness, always 200) |
//! | `GET  /readyz`                 | —               | → `ready`, or 503 listing what is not ready |
//! | `GET  /metrics`                | —               | → Prometheus text format 0.0.4 |
//! | `GET  /stats`                  | —               | → text metrics |
//! | `POST /photos`                 | —               | framed bytes+params → `id:`/`token:` lines |
//! | `GET  /photos/<id>`            | —               | → raw bitstream |
//! | `GET  /photos/<id>/params`     | —               | → raw params |
//! | `POST /photos/<id>/transformed`| —               | canonical transform → framed bytes+params, `x-cache: hit\|miss` |
//! | `POST /photos/<id>/transform`  | owner bearer    | canonical transform → 204 (durable, in place) |
//! | `POST /receivers`              | —               | 16-byte DH public → `token:` line |
//! | `POST /grants`                 | —               | receiver ‖ sender ‖ framed ciphertext → 204 (durable) |
//! | `GET  /grants`                 | receiver bearer | → framed deposits (drains, durably) |
//! | `POST /admin/reload`           | admin bearer    | → re-read `serve.conf`, echo settings |
//! | `POST /admin/shutdown`         | admin bearer    | → 202, graceful drain |
//!
//! Grant bodies are end-to-end encrypted by the sender's
//! [`crate::SecureChannel`]; the PSP is a mailbox and never sees key
//! material in the clear. Downloads are deliberately public — the store
//! only ever holds *protected* bitstreams, and serving them to anyone is
//! exactly the paper's threat model.
//!
//! # Tokens
//!
//! Three bearer-token classes, all 64 lowercase hex chars:
//! - **admin** — random per store directory, persisted to `admin.token`;
//!   gates reload/shutdown.
//! - **owner** — returned by upload, derived from the admin secret and the
//!   photo id, so it survives restarts without widening the WAL; gates the
//!   in-place transform.
//! - **receiver** — random, bound to a DH public value, WAL-durable;
//!   gates the grant mailbox drain.

pub mod client;
pub mod http;
pub mod proto;
pub mod server;
pub mod slo;

pub use client::Client;
pub use server::{serve, Recovery, ServeConfig, Server};
pub use slo::{Sample, SloConfig, SloRegistry, SloSnapshot};
