//! Binary body framing and the `Transformation` wire decode.
//!
//! Every multi-part body is a sequence of `[u32 LE length][payload]`
//! frames; fixed-width fields (photo ids, DH publics) are raw
//! little-endian. Transformations travel as their frozen
//! [`Transformation::canonical_bytes`] encoding — already injective and
//! stable by contract — so this module only has to supply the decoder.

use puppies_image::{Rect, Rgb};
use puppies_transform::{FilterOp, ScaleFilter, Transformation};

/// Hard cap on any framed payload accepted off the wire (4 MiB), matching
/// the WAL's record cap so nothing storable is refusable and vice versa.
pub const MAX_FRAME_LEN: usize = crate::wal::MAX_RECORD_LEN;

/// Appends one `[u32 LE len][payload]` frame.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one frame from `data` at `*pos`, advancing past it. Returns
/// `None` on truncation or an over-cap length.
pub fn take_frame<'a>(data: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len_bytes = data.get(*pos..*pos + 4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let payload = data.get(*pos + 4..*pos + 4 + len)?;
    *pos += 4 + len;
    Some(payload)
}

/// Encodes an upload / transformed-download body: framed bitstream then
/// framed public params.
pub fn encode_pair(bytes: &[u8], params: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + bytes.len() + params.len());
    put_frame(&mut out, bytes);
    put_frame(&mut out, params);
    out
}

/// Decodes a bitstream+params pair, rejecting trailing garbage.
pub fn decode_pair(data: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let mut pos = 0;
    let bytes = take_frame(data, &mut pos)?.to_vec();
    let params = take_frame(data, &mut pos)?.to_vec();
    (pos == data.len()).then_some((bytes, params))
}

fn le_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(data.get(*pos..*pos + 4)?.try_into().unwrap());
    *pos += 4;
    Some(v)
}

fn rect(data: &[u8], pos: &mut usize) -> Option<Rect> {
    let x = le_u32(data, pos)?;
    let y = le_u32(data, pos)?;
    let w = le_u32(data, pos)?;
    let h = le_u32(data, pos)?;
    Some(Rect::new(x, y, w, h))
}

/// Decodes a [`Transformation::canonical_bytes`] encoding. Returns `None`
/// on unknown tags, truncation, or trailing bytes — the decoder is exact:
/// `decode(t.canonical_bytes()) == Some(t)` and nothing else parses.
pub fn decode_transformation(data: &[u8]) -> Option<Transformation> {
    let mut pos = 1;
    let t = match *data.first()? {
        0x01 => {
            let width = le_u32(data, &mut pos)?;
            let height = le_u32(data, &mut pos)?;
            let filter = match *data.get(pos)? {
                0 => ScaleFilter::Nearest,
                1 => ScaleFilter::Bilinear,
                2 => ScaleFilter::Box,
                _ => return None,
            };
            pos += 1;
            Transformation::Scale {
                width,
                height,
                filter,
            }
        }
        0x02 => Transformation::Crop(rect(data, &mut pos)?),
        0x03 => Transformation::Rotate90,
        0x04 => Transformation::Rotate180,
        0x05 => Transformation::Rotate270,
        0x06 => Transformation::FlipHorizontal,
        0x07 => Transformation::FlipVertical,
        0x08 => {
            let quality = *data.get(pos)?;
            pos += 1;
            Transformation::Recompress { quality }
        }
        0x09 => {
            let kind = *data.get(pos)?;
            pos += 1;
            let op = match kind {
                0 => FilterOp::Gaussian {
                    sigma: f32::from_bits(le_u32(data, &mut pos)?),
                },
                1 => FilterOp::Sharpen,
                2 => FilterOp::Box {
                    side: le_u32(data, &mut pos)?,
                },
                _ => return None,
            };
            Transformation::Filter(op)
        }
        0x0a => {
            let r = rect(data, &mut pos)?;
            let [cr, cg, cb]: [u8; 3] = data.get(pos..pos + 3)?.try_into().unwrap();
            pos += 3;
            let alpha = f32::from_bits(le_u32(data, &mut pos)?);
            Transformation::Overlay {
                rect: r,
                color: Rgb::new(cr, cg, cb),
                alpha,
            }
        }
        _ => return None,
    };
    (pos == data.len()).then_some(t)
}

/// Lowercase hex of arbitrary bytes (token wire form).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Inverse of [`hex`]; `None` on odd length or non-hex characters.
pub fn unhex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_roundtrip_and_trailing_garbage_rejected() {
        let enc = encode_pair(&[1, 2, 3], &[9]);
        assert_eq!(decode_pair(&enc), Some((vec![1, 2, 3], vec![9])));
        let mut noisy = enc.clone();
        noisy.push(0);
        assert_eq!(decode_pair(&noisy), None);
        assert_eq!(decode_pair(&enc[..enc.len() - 1]), None);
    }

    #[test]
    fn transformation_decode_inverts_canonical_bytes() {
        let all = [
            Transformation::Scale {
                width: 640,
                height: 480,
                filter: ScaleFilter::Box,
            },
            Transformation::Crop(Rect::new(8, 16, 100, 50)),
            Transformation::Rotate90,
            Transformation::Rotate180,
            Transformation::Rotate270,
            Transformation::FlipHorizontal,
            Transformation::FlipVertical,
            Transformation::Recompress { quality: 75 },
            Transformation::Filter(FilterOp::Gaussian { sigma: 1.5 }),
            Transformation::Filter(FilterOp::Sharpen),
            Transformation::Filter(FilterOp::Box { side: 5 }),
            Transformation::Overlay {
                rect: Rect::new(0, 0, 10, 10),
                color: Rgb::new(255, 0, 128),
                alpha: 0.5,
            },
        ];
        for t in all {
            assert_eq!(decode_transformation(&t.canonical_bytes()), Some(t));
        }
    }

    #[test]
    fn transformation_decode_rejects_junk() {
        assert_eq!(decode_transformation(&[]), None);
        assert_eq!(decode_transformation(&[0x00]), None);
        assert_eq!(decode_transformation(&[0xff, 1, 2]), None);
        // Truncated scale.
        assert_eq!(decode_transformation(&[0x01, 0, 0]), None);
        // Rotate with trailing bytes.
        assert_eq!(decode_transformation(&[0x03, 0]), None);
        // Bad scale filter discriminant.
        let mut bad = Transformation::Scale {
            width: 1,
            height: 1,
            filter: ScaleFilter::Nearest,
        }
        .canonical_bytes();
        *bad.last_mut().unwrap() = 9;
        assert_eq!(decode_transformation(&bad), None);
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex(&hex(&bytes)), Some(bytes));
        assert_eq!(unhex("0g"), None);
        assert_eq!(unhex("abc"), None);
    }
}
