//! Blocking PSP client over one keep-alive connection.
//!
//! Mirrors the in-process [`crate::PspServer`] doors one-for-one so
//! callers (the CLI, the `bench psp --net` load generator, the
//! conformance oracle) can swap the wire in and compare byte-for-byte.

use super::http;
use super::proto;
use crate::store::PhotoId;
use crate::{PspError, Result};
use puppies_transform::Transformation;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Response headers, lowercased names.
type Headers = Vec<(String, String)>;

/// Whether a transformed download was served from the PSP's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCache {
    /// `x-cache: hit`.
    Hit,
    /// `x-cache: miss` (or absent).
    Miss,
}

/// Which pipeline produced a transformed download, as reported by the
/// server's `x-served-path` response header — the wire-visible face of
/// [`crate::ServedPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireServed {
    /// `x-served-path: coeff-domain` — transformed on quantized
    /// coefficients, no pixels materialized.
    CoeffDomain,
    /// `x-served-path: pixel-fallback` — decode → transform → re-encode.
    PixelFallback,
    /// `x-served-path: cached` — transform-result cache, no codec work.
    Cached,
    /// `x-served-path: sig-cached` — transform-result cache via the
    /// perceptual-identity (signature family) key: this photo is a
    /// recompressed near-duplicate of a photo already served.
    SigCached,
    /// Header absent or unrecognized (an older server).
    Unknown,
}

impl WireServed {
    fn from_header(v: &str) -> WireServed {
        match v {
            "coeff-domain" => WireServed::CoeffDomain,
            "pixel-fallback" => WireServed::PixelFallback,
            "cached" => WireServed::Cached,
            "sig-cached" => WireServed::SigCached,
            _ => WireServed::Unknown,
        }
    }
}

/// A photo id plus the owner token that authorizes in-place transforms.
#[derive(Debug, Clone)]
pub struct UploadReceipt {
    /// The assigned photo id.
    pub id: PhotoId,
    /// Bearer token for `POST /photos/<id>/transform`.
    pub owner_token: String,
}

/// One blocking keep-alive connection to a PSP server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn net_err(what: &str, e: impl std::fmt::Display) -> PspError {
    PspError::Channel(format!("{what}: {e}"))
}

impl Client {
    /// Connects with a 10 s request timeout.
    ///
    /// # Errors
    /// Fails if the address does not resolve or connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| net_err("connect", e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| net_err("timeout", e))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| net_err("clone", e))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn call(
        &mut self,
        method: &str,
        path: &str,
        bearer: Option<&str>,
        body: &[u8],
    ) -> Result<http::RawResponse> {
        // When a subscriber is installed, every wire call gets its own
        // client-side span, and that span rides the request as an
        // `x-puppies-trace` header so the server (and anything it fans
        // out to) can parent itself under this call.
        let _span = puppies_obs::span("psp.net.client_call", "net.client");
        let trace = puppies_obs::TraceContext::current().map(|c| c.header_value());
        let header;
        let extra: &[(&str, &str)] = match trace.as_deref() {
            Some(v) => {
                header = [("x-puppies-trace", v)];
                &header
            }
            None => &[],
        };
        http::write_request(&mut self.writer, method, path, bearer, extra, body)
            .map_err(|e| net_err("write request", e))?;
        http::read_response(&mut self.reader).map_err(|e| net_err("read response", e))
    }

    fn expect(
        &mut self,
        method: &str,
        path: &str,
        bearer: Option<&str>,
        body: &[u8],
        want: u16,
    ) -> Result<(Headers, Vec<u8>)> {
        let (status, headers, resp) = self.call(method, path, bearer, body)?;
        if status != want {
            let text = String::from_utf8_lossy(&resp);
            return Err(PspError::Channel(format!(
                "{method} {path}: HTTP {status}: {}",
                text.trim()
            )));
        }
        Ok((headers, resp))
    }

    /// `GET /health`.
    ///
    /// # Errors
    /// Fails if the server is unreachable or unhealthy.
    pub fn health(&mut self) -> Result<()> {
        self.expect("GET", "/health", None, &[], 200).map(|_| ())
    }

    /// `GET /readyz`: `Ok(true)` when the server reports ready (200),
    /// `Ok(false)` while it is up but still recovering or degraded (503).
    ///
    /// # Errors
    /// Fails only on transport errors or unexpected statuses.
    pub fn ready(&mut self) -> Result<bool> {
        let (status, _, body) = self.call("GET", "/readyz", None, &[])?;
        match status {
            200 => Ok(true),
            503 => Ok(false),
            other => Err(PspError::Channel(format!(
                "GET /readyz: HTTP {other}: {}",
                String::from_utf8_lossy(&body).trim()
            ))),
        }
    }

    /// `GET /metrics`: the Prometheus text exposition.
    ///
    /// # Errors
    /// Fails on transport errors or if the server has no live metrics
    /// subscriber (503).
    pub fn metrics_text(&mut self) -> Result<String> {
        self.expect("GET", "/metrics", None, &[], 200)
            .map(|(_, body)| String::from_utf8_lossy(&body).into_owned())
    }

    /// Uploads a protected bitstream + params; the returned receipt's
    /// token gates in-place transforms on this photo.
    ///
    /// # Errors
    /// Fails on transport errors or a non-200 response.
    pub fn upload(&mut self, bytes: &[u8], params: &[u8]) -> Result<UploadReceipt> {
        let body = proto::encode_pair(bytes, params);
        let (_, resp) = self.expect("POST", "/photos", None, &body, 200)?;
        let text = String::from_utf8_lossy(&resp);
        let field = |key: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix(key))
                .map(str::to_string)
        };
        let id = field("id:")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| PspError::Channel("upload response missing id".into()))?;
        let owner_token = field("token:")
            .ok_or_else(|| PspError::Channel("upload response missing token".into()))?;
        Ok(UploadReceipt {
            id: PhotoId(id),
            owner_token,
        })
    }

    /// Downloads the stored bitstream.
    ///
    /// # Errors
    /// Fails on transport errors or unknown photos.
    pub fn download(&mut self, id: PhotoId) -> Result<Vec<u8>> {
        self.expect("GET", &format!("/photos/{}", id.0), None, &[], 200)
            .map(|(_, body)| body)
    }

    /// Downloads the stored public params.
    ///
    /// # Errors
    /// Fails on transport errors or unknown photos.
    pub fn download_params(&mut self, id: PhotoId) -> Result<Vec<u8>> {
        self.expect("GET", &format!("/photos/{}/params", id.0), None, &[], 200)
            .map(|(_, body)| body)
    }

    /// Serving-door transform: returns `(bytes, params, cache outcome)`
    /// without modifying the stored photo.
    ///
    /// # Errors
    /// Fails on transport errors, unknown photos, or invalid transforms.
    pub fn download_transformed(
        &mut self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(Vec<u8>, Vec<u8>, WireCache)> {
        self.download_transformed_traced(id, t)
            .map(|(b, p, cache, _)| (b, p, cache))
    }

    /// [`Client::download_transformed`], but also reports which pipeline
    /// produced the response (the `x-served-path` header) so load
    /// generators can verify the decode-free serving claim end to end.
    ///
    /// # Errors
    /// As [`Client::download_transformed`].
    pub fn download_transformed_traced(
        &mut self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(Vec<u8>, Vec<u8>, WireCache, WireServed)> {
        let (headers, body) = self.expect(
            "POST",
            &format!("/photos/{}/transformed", id.0),
            None,
            &t.canonical_bytes(),
            200,
        )?;
        let (bytes, params) = proto::decode_pair(&body)
            .ok_or_else(|| PspError::Channel("bad transformed-download body".into()))?;
        let cache =
            headers
                .iter()
                .find(|(k, _)| k == "x-cache")
                .map_or(WireCache::Miss, |(_, v)| {
                    if v == "hit" {
                        WireCache::Hit
                    } else {
                        WireCache::Miss
                    }
                });
        let served = headers
            .iter()
            .find(|(k, _)| k == "x-served-path")
            .map_or(WireServed::Unknown, |(_, v)| WireServed::from_header(v));
        Ok((bytes, params, cache, served))
    }

    /// In-place transform, authorized by the upload receipt's owner token.
    ///
    /// # Errors
    /// Fails on transport errors, bad tokens, or invalid transforms.
    pub fn transform(&mut self, id: PhotoId, owner_token: &str, t: &Transformation) -> Result<()> {
        self.expect(
            "POST",
            &format!("/photos/{}/transform", id.0),
            Some(owner_token),
            &t.canonical_bytes(),
            204,
        )
        .map(|_| ())
    }

    /// Registers this receiver's DH public value; the returned bearer
    /// token authorizes [`Client::fetch_grants`].
    ///
    /// # Errors
    /// Fails on transport errors.
    pub fn register_receiver(&mut self, dh_public: u128) -> Result<String> {
        let (_, resp) = self.expect("POST", "/receivers", None, &dh_public.to_le_bytes(), 200)?;
        String::from_utf8_lossy(&resp)
            .lines()
            .find_map(|l| l.strip_prefix("token:").map(str::to_string))
            .ok_or_else(|| PspError::Channel("receiver response missing token".into()))
    }

    /// Deposits an end-to-end-encrypted grant in `receiver`'s mailbox.
    /// The PSP never sees the plaintext.
    ///
    /// # Errors
    /// Fails on transport errors.
    pub fn deposit_grant(&mut self, receiver: u128, sender: u128, ciphertext: &[u8]) -> Result<()> {
        let mut body = Vec::with_capacity(36 + ciphertext.len());
        body.extend_from_slice(&receiver.to_le_bytes());
        body.extend_from_slice(&sender.to_le_bytes());
        proto::put_frame(&mut body, ciphertext);
        self.expect("POST", "/grants", None, &body, 204).map(|_| ())
    }

    /// Drains this receiver's mailbox: `(sender public, ciphertext)`
    /// pairs, oldest first. Durable — a fetched grant stays fetched
    /// across server restarts.
    ///
    /// # Errors
    /// Fails on transport errors or an unknown token.
    pub fn fetch_grants(&mut self, receiver_token: &str) -> Result<Vec<(u128, Vec<u8>)>> {
        let (_, body) = self.expect("GET", "/grants", Some(receiver_token), &[], 200)?;
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < body.len() {
            let sender_bytes = body
                .get(pos..pos + 16)
                .ok_or_else(|| PspError::Channel("torn grant list".into()))?;
            let sender = u128::from_le_bytes(sender_bytes.try_into().unwrap());
            pos += 16;
            let ciphertext = proto::take_frame(&body, &mut pos)
                .ok_or_else(|| PspError::Channel("torn grant frame".into()))?;
            out.push((sender, ciphertext.to_vec()));
        }
        Ok(out)
    }

    /// `POST /search` — near-duplicate search by probe image. The probe
    /// is hashed server-side from public data only (its params blob, when
    /// given, masks the private ROIs); returns `(probe signature,
    /// matches)` with each match a `(photo id, Hamming distance)` pair,
    /// nearest first.
    ///
    /// # Errors
    /// Fails on transport errors or undecodable probes.
    pub fn search(
        &mut self,
        bytes: &[u8],
        params: Option<&[u8]>,
    ) -> Result<(u64, Vec<(PhotoId, u32)>)> {
        let body = proto::encode_pair(bytes, params.unwrap_or(&[]));
        let (_, resp) = self.expect("POST", "/search", None, &body, 200)?;
        let text = String::from_utf8_lossy(&resp);
        let mut lines = text.lines();
        let sig = lines
            .next()
            .and_then(|l| l.strip_prefix("sig:"))
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| PspError::Channel("search response missing sig".into()))?;
        let mut matches = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            let (Some(id), Some(dist)) = (parts.next(), parts.next()) else {
                continue;
            };
            let (Ok(id), Ok(dist)) = (id.parse::<u64>(), dist.parse::<u32>()) else {
                return Err(PspError::Channel(format!("bad search line: {line}")));
            };
            matches.push((PhotoId(id), dist));
        }
        Ok((sig, matches))
    }

    /// `GET /stats` as `key:value` lines.
    ///
    /// # Errors
    /// Fails on transport errors.
    pub fn stats(&mut self) -> Result<String> {
        self.expect("GET", "/stats", None, &[], 200)
            .map(|(_, body)| String::from_utf8_lossy(&body).into_owned())
    }

    /// Asks the server to re-read `serve.conf` (admin token required).
    ///
    /// # Errors
    /// Fails on transport errors or a bad token.
    pub fn reload(&mut self, admin_token: &str) -> Result<String> {
        self.expect("POST", "/admin/reload", Some(admin_token), &[], 200)
            .map(|(_, body)| String::from_utf8_lossy(&body).into_owned())
    }

    /// Asks the server to drain and stop (admin token required).
    ///
    /// # Errors
    /// Fails on transport errors or a bad token.
    pub fn shutdown(&mut self, admin_token: &str) -> Result<()> {
        self.expect("POST", "/admin/shutdown", Some(admin_token), &[], 202)
            .map(|_| ())
    }
}
