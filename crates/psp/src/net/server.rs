//! The serving loop: a thread-per-connection HTTP/1.1 front end over
//! [`DiskStore`], with graceful drain on SIGTERM/SIGINT and `serve.conf`
//! reload on SIGHUP (or `POST /admin/reload`).
//!
//! The accept loop runs nonblocking and polls a shutdown flag every 25 ms,
//! so `kill -TERM` stops new connections immediately; handler threads
//! notice the drain at their next idle poll (≤500 ms), finish the request
//! they are on, and exit. The WAL is synced before [`Server::run`]
//! returns, so a graceful stop loses nothing even with per-append fsync
//! disabled. A `kill -9` at any point is also safe — that is the WAL's
//! job, not the drain's.

use super::http::{self, ReadOutcome, Request, Response};
use super::proto;
use crate::cache::fnv64_chain;
use crate::sha256::{ct_eq, sha256, sha256_concat};
use crate::store::{PhotoId, PspConfig};
use crate::store_disk::DiskStore;
use crate::{PspError, Result};
use parking_lot::RwLock;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How the server is stood up. Everything here is fixed for the process
/// lifetime; per-request tunables live in `serve.conf` and reload.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 for ephemeral).
    pub addr: String,
    /// Store directory (WAL, segments, `admin.token`, `serve.conf`).
    pub dir: PathBuf,
    /// Whether every WAL append fsyncs (durability) — disable only for
    /// benchmarks that measure something other than the disk.
    pub fsync: bool,
    /// In-memory store configuration (cache budget, shard count...).
    pub psp: PspConfig,
}

impl ServeConfig {
    /// A config with the default [`PspConfig`] and fsync on.
    pub fn new(addr: impl Into<String>, dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            dir: dir.into(),
            fsync: true,
            psp: PspConfig::default(),
        }
    }
}

/// Settings re-read from `<dir>/serve.conf` on SIGHUP / `/admin/reload`.
/// The file is `key = value` lines, `#` comments; unknown keys are
/// ignored so the format can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tunables {
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Whether to honour HTTP keep-alive (off forces one request per
    /// connection — useful when diagnosing connection-state bugs).
    pub keep_alive: bool,
}

impl Default for Tunables {
    fn default() -> Tunables {
        Tunables {
            // Two max-size frames plus framing slack.
            max_body: 2 * proto::MAX_FRAME_LEN + 64,
            keep_alive: true,
        }
    }
}

impl Tunables {
    fn parse(text: &str) -> Tunables {
        let mut t = Tunables::default();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match (key.trim(), value.trim()) {
                ("max_body", v) => {
                    if let Ok(n) = v.parse() {
                        t.max_body = n;
                    }
                }
                ("keep_alive", v) => {
                    if let Ok(b) = v.parse() {
                        t.keep_alive = b;
                    }
                }
                _ => {}
            }
        }
        t
    }

    fn load(dir: &Path) -> Tunables {
        match std::fs::read_to_string(dir.join("serve.conf")) {
            Ok(text) => Tunables::parse(&text),
            Err(_) => Tunables::default(),
        }
    }
}

// Process-wide signal flags. Signal handlers may only do async-signal-safe
// work; a relaxed store to a static atomic is exactly that.
static SIG_SHUTDOWN: AtomicBool = AtomicBool::new(false);
static SIG_RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_shutdown(_: i32) {
        SIG_SHUTDOWN.store(true, Ordering::Relaxed);
    }
    extern "C" fn on_reload(_: i32) {
        SIG_RELOAD.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGHUP: i32 = 1;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown as *const () as usize);
        signal(SIGINT, on_shutdown as *const () as usize);
        signal(SIGHUP, on_reload as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Fallback entropy for platforms without `/dev/urandom`: wall clock,
/// monotonic clock, pid, and a fresh allocation's address, folded through
/// FNV. Only ever used hardened through SHA-256 (see [`random_token`]).
fn entropy64(salt: u64) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let tick = Instant::now();
    let addr = &tick as *const _ as u64;
    let mut h = fnv64_chain(salt, &nanos.to_le_bytes());
    h = fnv64_chain(h, &std::process::id().to_le_bytes());
    h = fnv64_chain(h, &addr.to_le_bytes());
    h
}

/// 32 token bytes from the OS CSPRNG (`/dev/urandom`) when it exists,
/// else the clock/pid/address mix whitened through SHA-256.
fn random_token() -> [u8; 32] {
    let mut out = [0u8; 32];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut out))
        .is_ok()
    {
        return out;
    }
    let mut seed = [0u8; 32];
    let mut h = entropy64(0xcbf2_9ce4_8422_2325);
    for chunk in seed.chunks_mut(8) {
        h = entropy64(h);
        chunk.copy_from_slice(&h.to_le_bytes());
    }
    sha256(&seed)
}

/// Shared state between the accept loop and handler threads.
struct Shared {
    store: DiskStore,
    dir: PathBuf,
    admin_token: String,
    tunables: RwLock<Tunables>,
    draining: AtomicBool,
    connections: AtomicUsize,
}

impl Shared {
    /// Per-photo owner token: a one-way keyed derivation from the admin
    /// secret, `SHA-256(domain ‖ admin token ‖ id)`. Keyed so tokens
    /// survive restarts without widening the WAL; one-way so no uploader
    /// can invert their own token back to the secret and forge another
    /// photo's (an invertible mix like FNV allows exactly that).
    fn owner_token(&self, id: PhotoId) -> String {
        let digest = sha256_concat(&[
            b"puppies.owner.v1",
            self.admin_token.as_bytes(),
            &id.0.to_le_bytes(),
        ]);
        proto::hex(&digest)
    }
}

/// A bound, recovered, ready-to-run PSP service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Opens (recovering) the store, loads or mints `admin.token`, reads
    /// `serve.conf`, and binds the listener. Nothing is served until
    /// [`Server::run`].
    ///
    /// # Errors
    /// Fails on recovery errors or if the address cannot be bound.
    pub fn bind(config: &ServeConfig) -> Result<Server> {
        let store = DiskStore::open(&config.dir, config.psp.clone(), config.fsync)?;
        let token_path = config.dir.join("admin.token");
        let admin_token = match std::fs::read_to_string(&token_path) {
            Ok(t) if t.trim().len() == 64 => t.trim().to_string(),
            _ => {
                let minted = proto::hex(&random_token());
                std::fs::write(&token_path, &minted)
                    .map_err(|e| PspError::Channel(format!("writing admin token: {e}")))?;
                minted
            }
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| PspError::Channel(format!("binding {}: {e}", config.addr)))?;
        let shared = Arc::new(Shared {
            store,
            dir: config.dir.clone(),
            admin_token,
            tunables: RwLock::new(Tunables::load(&config.dir)),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// What recovery found when the store was opened.
    pub fn recovery(&self) -> crate::store_disk::RecoveryStats {
        self.shared.store.recovery()
    }

    /// Serves until SIGTERM/SIGINT or `POST /admin/shutdown`, then drains:
    /// stops accepting, lets in-flight requests finish (10 s deadline),
    /// syncs the WAL, returns.
    ///
    /// # Errors
    /// Fails on listener errors or a failed final WAL sync.
    pub fn run(self) -> Result<()> {
        install_signal_handlers();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| PspError::Channel(format!("nonblocking listener: {e}")))?;
        while !self.draining() {
            if SIG_RELOAD.swap(false, Ordering::Relaxed) {
                self.reload();
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    puppies_obs::counter_add("psp.net.conn_accepted", 1);
                    puppies_obs::gauge_add("psp.net.connections", 1);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                        puppies_obs::gauge_add("psp.net.connections", -1);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(PspError::Channel(format!("accept: {e}"))),
            }
        }
        // Drain: handler threads poll `draining` at least every 500 ms.
        self.shared.draining.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.connections.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.shared.store.sync()
    }

    fn draining(&self) -> bool {
        SIG_SHUTDOWN.load(Ordering::Relaxed) || self.shared.draining.load(Ordering::Relaxed)
    }

    fn reload(&self) {
        let t = Tunables::load(&self.shared.dir);
        *self.shared.tunables.write() = t;
        puppies_obs::counter_add("psp.net.reloads", 1);
    }
}

/// One client connection: serve requests until close, malformed input, a
/// drain, or `connection: close`.
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // Poll for the start of a request without consuming anything, so a
        // read timeout here (the idle keep-alive case) can never tear a
        // half-read request head.
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::Relaxed) || SIG_SHUTDOWN.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let tunables = *shared.tunables.read();
        let req = match http::read_request(&mut reader, tunables.max_body)? {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(status, why) => {
                let _ = http::write_response(&mut writer, &Response::status(status, why), false);
                return Ok(());
            }
        };
        let keep_alive = tunables.keep_alive && req.keep_alive();
        let sw = puppies_obs::Stopwatch::start();
        let resp = route(shared, &req);
        puppies_obs::counter_add("psp.net.requests", 1);
        sw.record_us("psp.net.req_us");
        sw.record_us(endpoint_metric(&req));
        if resp.status >= 500 {
            puppies_obs::counter_add("psp.net.errors", 1);
        }
        let shutdown_after = resp.status == 202 && req.path == "/admin/shutdown";
        http::write_response(&mut writer, &resp, keep_alive && !shutdown_after)?;
        if shutdown_after {
            shared.draining.store(true, Ordering::Relaxed);
            return Ok(());
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Stable per-endpoint latency histogram name.
fn endpoint_metric(req: &Request) -> &'static str {
    let mut segs = req.path.split('/').filter(|s| !s.is_empty());
    match (req.method.as_str(), segs.next(), segs.next(), segs.next()) {
        ("POST", Some("photos"), None, None) => "psp.net.upload_us",
        ("GET", Some("photos"), Some(_), None) => "psp.net.download_us",
        ("GET", Some("photos"), Some(_), Some("params")) => "psp.net.params_us",
        ("POST", Some("photos"), Some(_), Some("transformed")) => "psp.net.transformed_us",
        ("POST", Some("photos"), Some(_), Some("transform")) => "psp.net.transform_us",
        (_, Some("grants"), ..) => "psp.net.grants_us",
        (_, Some("receivers"), ..) => "psp.net.receivers_us",
        _ => "psp.net.other_us",
    }
}

fn error_response(e: &PspError) -> Response {
    match e {
        PspError::UnknownPhoto(_) => Response::status(404, "unknown photo"),
        PspError::Transform(e) => Response::status(400, &format!("transform: {e}")),
        PspError::Core(e) => Response::status(400, &format!("core: {e}")),
        PspError::IdsExhausted => Response::status(503, "id space exhausted"),
        PspError::Channel(m) => Response::status(500, m),
        PspError::Cluster(m) => Response::status(500, m),
    }
}

fn respond<T>(out: Result<T>, ok: impl FnOnce(T) -> Response) -> Response {
    match out {
        Ok(v) => ok(v),
        Err(e) => error_response(&e),
    }
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["health"]) => Response::text("ok\n"),
        ("GET", ["stats"]) => stats(shared),
        ("POST", ["photos"]) => upload(shared, req),
        ("GET", ["photos", id]) => with_id(id, |id| {
            respond(shared.store.server().download(id), |b| {
                Response::ok(b.to_vec())
            })
        }),
        ("GET", ["photos", id, "params"]) => with_id(id, |id| {
            respond(shared.store.server().download_params(id), |p| {
                Response::ok(p.to_vec())
            })
        }),
        ("POST", ["photos", id, "transformed"]) => {
            with_id(id, |id| download_transformed(shared, req, id))
        }
        ("POST", ["photos", id, "transform"]) => with_id(id, |id| transform(shared, req, id)),
        ("POST", ["receivers"]) => register_receiver(shared, req),
        ("POST", ["grants"]) => deposit_grant(shared, req),
        ("GET", ["grants"]) => drain_grants(shared, req),
        ("POST", ["admin", "reload"]) => admin(shared, req, |shared| {
            let t = Tunables::load(&shared.dir);
            *shared.tunables.write() = t;
            puppies_obs::counter_add("psp.net.reloads", 1);
            Response::text(format!(
                "max_body:{}\nkeep_alive:{}\n",
                t.max_body, t.keep_alive
            ))
        }),
        ("POST", ["admin", "shutdown"]) => {
            admin(shared, req, |_| Response::status(202, "draining"))
        }
        (_, ["health" | "stats" | "photos" | "receivers" | "grants" | "admin", ..]) => {
            Response::status(405, "method not allowed")
        }
        _ => Response::status(404, "no such endpoint"),
    }
}

fn with_id(raw: &str, f: impl FnOnce(PhotoId) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(PhotoId(id)),
        Err(_) => Response::status(400, "bad photo id"),
    }
}

fn admin(shared: &Shared, req: &Request, f: impl FnOnce(&Shared) -> Response) -> Response {
    match req.bearer() {
        Some(token) if ct_eq(token.as_bytes(), shared.admin_token.as_bytes()) => f(shared),
        Some(_) => Response::status(403, "bad admin token"),
        None => Response::status(401, "admin token required"),
    }
}

fn stats(shared: &Shared) -> Response {
    let server = shared.store.server();
    let cache = server.cache_stats();
    Response::text(format!(
        "photos:{}\ncache_hits:{}\ncache_misses:{}\ncache_entries:{}\ncache_bytes:{}\n",
        server.len(),
        cache.hits,
        cache.misses,
        cache.entries,
        cache.bytes,
    ))
}

fn upload(shared: &Shared, req: &Request) -> Response {
    let Some((bytes, params)) = proto::decode_pair(&req.body) else {
        return Response::status(400, "bad upload body");
    };
    respond(shared.store.upload(bytes, params), |id| {
        Response::text(format!("id:{}\ntoken:{}\n", id.0, shared.owner_token(id)))
    })
}

fn download_transformed(shared: &Shared, req: &Request, id: PhotoId) -> Response {
    let Some(t) = proto::decode_transformation(&req.body) else {
        return Response::status(400, "bad transformation encoding");
    };
    respond(
        shared.store.server().download_transformed_traced(id, &t),
        |((bytes, params), outcome, served)| {
            let cache = match outcome {
                crate::store::CacheOutcome::Hit => "hit",
                _ => "miss",
            };
            Response::ok(proto::encode_pair(&bytes, &params))
                .with_header("x-cache", cache)
                .with_header("x-served-path", served.as_str())
        },
    )
}

fn transform(shared: &Shared, req: &Request, id: PhotoId) -> Response {
    match req.bearer() {
        Some(token) if ct_eq(token.as_bytes(), shared.owner_token(id).as_bytes()) => {}
        Some(_) => return Response::status(403, "bad owner token"),
        None => return Response::status(401, "owner token required"),
    }
    let Some(t) = proto::decode_transformation(&req.body) else {
        return Response::status(400, "bad transformation encoding");
    };
    respond(shared.store.transform(id, &t), |()| {
        Response::status(204, "transformed")
    })
}

fn register_receiver(shared: &Shared, req: &Request) -> Response {
    let Ok(public): std::result::Result<[u8; 16], _> = req.body.as_slice().try_into() else {
        return Response::status(400, "body must be a 16-byte DH public value");
    };
    let token = random_token();
    respond(
        shared
            .store
            .register_receiver(u128::from_le_bytes(public), token),
        |()| Response::text(format!("token:{}\n", proto::hex(&token))),
    )
}

fn deposit_grant(shared: &Shared, req: &Request) -> Response {
    let body = &req.body;
    if body.len() < 32 {
        return Response::status(400, "bad grant body");
    }
    let receiver = u128::from_le_bytes(body[..16].try_into().unwrap());
    let sender = u128::from_le_bytes(body[16..32].try_into().unwrap());
    let mut pos = 32;
    let Some(ciphertext) = proto::take_frame(body, &mut pos) else {
        return Response::status(400, "bad grant ciphertext frame");
    };
    if pos != body.len() {
        return Response::status(400, "trailing bytes after grant");
    }
    respond(
        shared
            .store
            .deposit_grant(receiver, sender, ciphertext.to_vec()),
        |()| Response::status(204, "deposited"),
    )
}

fn drain_grants(shared: &Shared, req: &Request) -> Response {
    let Some(token) = req.bearer() else {
        return Response::status(401, "receiver token required");
    };
    let Some(receiver) = proto::unhex(token)
        .filter(|t| t.len() == 32)
        .and_then(|t| shared.store.receiver_for_token(&t))
    else {
        return Response::status(403, "unknown receiver token");
    };
    respond(shared.store.drain_grants(receiver), |deposits| {
        let mut out = Vec::new();
        for (sender, ciphertext) in deposits {
            out.extend_from_slice(&sender.to_le_bytes());
            proto::put_frame(&mut out, &ciphertext);
        }
        Response::ok(out)
    })
}

/// Convenience: bind and run in one call (the CLI entry point).
///
/// # Errors
/// As [`Server::bind`] and [`Server::run`].
pub fn serve(config: &ServeConfig) -> Result<()> {
    let server = Server::bind(config)?;
    let addr = server
        .local_addr()
        .map_err(|e| PspError::Channel(format!("local addr: {e}")))?;
    let rec = server.recovery();
    let mut stdout = io::stdout();
    let _ = writeln!(
        stdout,
        "psp-serve listening on {addr} (recovered {} records, {} photos, truncated {} bytes)",
        rec.records, rec.photos, rec.truncated_bytes
    );
    let _ = stdout.flush();
    server.run()
}
