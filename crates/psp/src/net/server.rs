//! The serving loop: a thread-per-connection HTTP/1.1 front end over
//! [`DiskStore`], with graceful drain on SIGTERM/SIGINT and `serve.conf`
//! reload on SIGHUP (or `POST /admin/reload`).
//!
//! The accept loop runs nonblocking and polls a shutdown flag every 25 ms,
//! so `kill -TERM` stops new connections immediately; handler threads
//! notice the drain at their next idle poll (≤500 ms), finish the request
//! they are on, and exit. The WAL is synced before [`Server::run`]
//! returns, so a graceful stop loses nothing even with per-append fsync
//! disabled. A `kill -9` at any point is also safe — that is the WAL's
//! job, not the drain's.
//!
//! # Observability
//!
//! The listener comes up *before* WAL replay ([`Server::bind_unready`] +
//! [`Recovery::run`]), so `/healthz` answers from the first instant while
//! `/readyz` returns 503 until recovery publishes the store — orchestrators
//! can distinguish "booting" from "dead" during long replays. `/metrics`
//! serves the process-wide [`puppies_obs`] registry in Prometheus text
//! format plus per-endpoint rolling-window SLO families ([`super::slo`]).
//! Requests carrying an `x-puppies-trace` header are adopted as children
//! of the caller's span, so one Chrome trace stitches client, server, and
//! backends. A sampled structured access log (JSON lines, `access.log` in
//! the store dir) records what the fixed in-memory ring cannot retain.

use super::http::{self, ReadOutcome, Request, Response};
use super::proto;
use super::slo::{Sample, SloConfig, SloRegistry};
use crate::cache::fnv64_chain;
use crate::sha256::{ct_eq, sha256, sha256_concat};
use crate::store::{PhotoId, PspConfig};
use crate::store_disk::{DiskStore, RecoveryStats};
use crate::{PspError, Result};
use parking_lot::{Mutex, RwLock};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How the server is stood up. Everything here is fixed for the process
/// lifetime; per-request tunables live in `serve.conf` and reload.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 for ephemeral).
    pub addr: String,
    /// Store directory (WAL, segments, `admin.token`, `serve.conf`).
    pub dir: PathBuf,
    /// Whether every WAL append fsyncs (durability) — disable only for
    /// benchmarks that measure something other than the disk.
    pub fsync: bool,
    /// In-memory store configuration (cache budget, shard count...).
    pub psp: PspConfig,
}

impl ServeConfig {
    /// A config with the default [`PspConfig`] and fsync on.
    pub fn new(addr: impl Into<String>, dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            dir: dir.into(),
            fsync: true,
            psp: PspConfig::default(),
        }
    }
}

/// Settings re-read from `<dir>/serve.conf` on SIGHUP / `/admin/reload`.
/// The file is `key = value` lines, `#` comments; unknown keys are
/// ignored so the format can grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tunables {
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Whether to honour HTTP keep-alive (off forces one request per
    /// connection — useful when diagnosing connection-state bugs).
    pub keep_alive: bool,
    /// Access-log sampling: log every Nth request (1 = all, 0 = none).
    /// Slow requests are always logged regardless of sampling.
    pub access_log_sample: u64,
    /// Threshold above which a request is logged as slow, microseconds.
    pub slow_request_us: u64,
}

impl Default for Tunables {
    fn default() -> Tunables {
        Tunables {
            // Two max-size frames plus framing slack.
            max_body: 2 * proto::MAX_FRAME_LEN + 64,
            keep_alive: true,
            access_log_sample: 1,
            slow_request_us: 250_000,
        }
    }
}

impl Tunables {
    fn parse(text: &str) -> Tunables {
        let mut t = Tunables::default();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match (key.trim(), value.trim()) {
                ("max_body", v) => {
                    if let Ok(n) = v.parse() {
                        t.max_body = n;
                    }
                }
                ("keep_alive", v) => {
                    if let Ok(b) = v.parse() {
                        t.keep_alive = b;
                    }
                }
                ("access_log_sample", v) => {
                    if let Ok(n) = v.parse() {
                        t.access_log_sample = n;
                    }
                }
                ("slow_request_us", v) => {
                    if let Ok(n) = v.parse() {
                        t.slow_request_us = n;
                    }
                }
                _ => {}
            }
        }
        t
    }

    fn load(dir: &Path) -> Tunables {
        match std::fs::read_to_string(dir.join("serve.conf")) {
            Ok(text) => Tunables::parse(&text),
            Err(_) => Tunables::default(),
        }
    }
}

// Process-wide signal flags. Signal handlers may only do async-signal-safe
// work; a relaxed store to a static atomic is exactly that.
static SIG_SHUTDOWN: AtomicBool = AtomicBool::new(false);
static SIG_RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_shutdown(_: i32) {
        SIG_SHUTDOWN.store(true, Ordering::Relaxed);
    }
    extern "C" fn on_reload(_: i32) {
        SIG_RELOAD.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGHUP: i32 = 1;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown as *const () as usize);
        signal(SIGINT, on_shutdown as *const () as usize);
        signal(SIGHUP, on_reload as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Fallback entropy for platforms without `/dev/urandom`: wall clock,
/// monotonic clock, pid, and a fresh allocation's address, folded through
/// FNV. Only ever used hardened through SHA-256 (see [`random_token`]).
fn entropy64(salt: u64) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let tick = Instant::now();
    let addr = &tick as *const _ as u64;
    let mut h = fnv64_chain(salt, &nanos.to_le_bytes());
    h = fnv64_chain(h, &std::process::id().to_le_bytes());
    h = fnv64_chain(h, &addr.to_le_bytes());
    h
}

/// 32 token bytes from the OS CSPRNG (`/dev/urandom`) when it exists,
/// else the clock/pid/address mix whitened through SHA-256.
fn random_token() -> [u8; 32] {
    let mut out = [0u8; 32];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut out))
        .is_ok()
    {
        return out;
    }
    let mut seed = [0u8; 32];
    let mut h = entropy64(0xcbf2_9ce4_8422_2325);
    for chunk in seed.chunks_mut(8) {
        h = entropy64(h);
        chunk.copy_from_slice(&h.to_le_bytes());
    }
    sha256(&seed)
}

/// Reports cluster backend health as `(healthy, total, k)` for readiness:
/// ready needs `healthy >= k`. Attached via [`Server::set_quorum_probe`]
/// when the store fronts a [`crate::cluster::ShardedPspCluster`].
pub type QuorumProbe = Box<dyn Fn() -> (usize, usize, usize) + Send + Sync>;

/// Shared state between the accept loop and handler threads.
struct Shared {
    /// Published by [`Recovery::run`] once WAL replay finishes; every
    /// store-touching route is gated on `ready` first.
    store: OnceLock<DiskStore>,
    ready: AtomicBool,
    dir: PathBuf,
    admin_token: String,
    tunables: RwLock<Tunables>,
    draining: AtomicBool,
    connections: AtomicUsize,
    slo: SloRegistry,
    quorum: RwLock<Option<QuorumProbe>>,
    access_log: Mutex<Option<BufWriter<File>>>,
    access_seq: AtomicU64,
}

impl Shared {
    fn store(&self) -> &DiskStore {
        self.store.get().expect("store-touching route before ready")
    }

    fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// Per-photo owner token: a one-way keyed derivation from the admin
    /// secret, `SHA-256(domain ‖ admin token ‖ id)`. Keyed so tokens
    /// survive restarts without widening the WAL; one-way so no uploader
    /// can invert their own token back to the secret and forge another
    /// photo's (an invertible mix like FNV allows exactly that).
    fn owner_token(&self, id: PhotoId) -> String {
        let digest = sha256_concat(&[
            b"puppies.owner.v1",
            self.admin_token.as_bytes(),
            &id.0.to_le_bytes(),
        ]);
        proto::hex(&digest)
    }
}

/// A bound, ready-to-run PSP service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// The deferred store-recovery step from [`Server::bind_unready`]: the
/// listener is already answering `/healthz` (and 503ing `/readyz`) while
/// this replays the WAL. [`Recovery::run`] publishes the store and flips
/// the server ready.
pub struct Recovery {
    shared: Arc<Shared>,
    dir: PathBuf,
    psp: PspConfig,
    fsync: bool,
}

impl Recovery {
    /// Opens the store (replaying the WAL), publishes it, and marks the
    /// server ready.
    ///
    /// # Errors
    /// Fails on recovery errors; the paired server is put into drain so
    /// its accept loop exits rather than 503 forever.
    pub fn run(self) -> Result<RecoveryStats> {
        match DiskStore::open(&self.dir, self.psp, self.fsync) {
            Ok(store) => {
                let stats = store.recovery();
                let _ = self.shared.store.set(store);
                self.shared.ready.store(true, Ordering::Release);
                puppies_obs::gauge_set("psp.net.ready", 1);
                Ok(stats)
            }
            Err(e) => {
                self.shared.draining.store(true, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

impl Server {
    /// Opens (recovering) the store, loads or mints `admin.token`, reads
    /// `serve.conf`, and binds the listener. Nothing is served until
    /// [`Server::run`].
    ///
    /// # Errors
    /// Fails on recovery errors or if the address cannot be bound.
    pub fn bind(config: &ServeConfig) -> Result<Server> {
        let (server, recovery) = Server::bind_unready(config)?;
        recovery.run()?;
        Ok(server)
    }

    /// Binds the listener and mints tokens but defers store recovery to
    /// the returned [`Recovery`], so the caller can serve liveness checks
    /// during a long WAL replay. Until `Recovery::run` completes, every
    /// store-touching endpoint answers 503 and `/readyz` says why.
    ///
    /// # Errors
    /// Fails if the address cannot be bound or the token cannot persist.
    pub fn bind_unready(config: &ServeConfig) -> Result<(Server, Recovery)> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| PspError::Channel(format!("creating {}: {e}", config.dir.display())))?;
        let token_path = config.dir.join("admin.token");
        let admin_token = match std::fs::read_to_string(&token_path) {
            Ok(t) if t.trim().len() == 64 => t.trim().to_string(),
            _ => {
                let minted = proto::hex(&random_token());
                std::fs::write(&token_path, &minted)
                    .map_err(|e| PspError::Channel(format!("writing admin token: {e}")))?;
                minted
            }
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| PspError::Channel(format!("binding {}: {e}", config.addr)))?;
        let access_log = File::options()
            .create(true)
            .append(true)
            .open(config.dir.join("access.log"))
            .ok()
            .map(BufWriter::new);
        let shared = Arc::new(Shared {
            store: OnceLock::new(),
            ready: AtomicBool::new(false),
            dir: config.dir.clone(),
            admin_token,
            tunables: RwLock::new(Tunables::load(&config.dir)),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            slo: SloRegistry::new(SloConfig::default()),
            quorum: RwLock::new(None),
            access_log: Mutex::new(access_log),
            access_seq: AtomicU64::new(0),
        });
        let recovery = Recovery {
            shared: Arc::clone(&shared),
            dir: config.dir.clone(),
            psp: config.psp.clone(),
            fsync: config.fsync,
        };
        Ok((Server { listener, shared }, recovery))
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// What recovery found when the store was opened. Meaningful only
    /// after recovery has run (always true for [`Server::bind`]).
    pub fn recovery(&self) -> RecoveryStats {
        self.shared
            .store
            .get()
            .map(DiskStore::recovery)
            .unwrap_or_default()
    }

    /// Attaches a cluster-quorum health probe that `/readyz` and
    /// `/metrics` consult (see [`QuorumProbe`]).
    pub fn set_quorum_probe(
        &self,
        probe: impl Fn() -> (usize, usize, usize) + Send + Sync + 'static,
    ) {
        *self.shared.quorum.write() = Some(Box::new(probe));
    }

    /// Serves until SIGTERM/SIGINT or `POST /admin/shutdown`, then drains:
    /// stops accepting, lets in-flight requests finish (10 s deadline),
    /// syncs the WAL, returns.
    ///
    /// # Errors
    /// Fails on listener errors or a failed final WAL sync.
    pub fn run(self) -> Result<()> {
        install_signal_handlers();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| PspError::Channel(format!("nonblocking listener: {e}")))?;
        while !self.draining() {
            if SIG_RELOAD.swap(false, Ordering::Relaxed) {
                self.reload();
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    puppies_obs::counter_add("psp.net.conn_accepted", 1);
                    puppies_obs::gauge_add("psp.net.connections", 1);
                    std::thread::spawn(move || {
                        let _ = handle_connection(&shared, stream);
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                        puppies_obs::gauge_add("psp.net.connections", -1);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(PspError::Channel(format!("accept: {e}"))),
            }
        }
        // Drain: handler threads poll `draining` at least every 500 ms.
        self.shared.draining.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.connections.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        if let Some(log) = self.shared.access_log.lock().as_mut() {
            let _ = log.flush();
        }
        match self.shared.store.get() {
            Some(store) => store.sync(),
            // Recovery never published a store; nothing to sync.
            None => Ok(()),
        }
    }

    fn draining(&self) -> bool {
        SIG_SHUTDOWN.load(Ordering::Relaxed) || self.shared.draining.load(Ordering::Relaxed)
    }

    fn reload(&self) {
        let t = Tunables::load(&self.shared.dir);
        *self.shared.tunables.write() = t;
        puppies_obs::counter_add("psp.net.reloads", 1);
    }
}

/// One client connection: serve requests until close, malformed input, a
/// drain, or `connection: close`.
fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // Poll for the start of a request without consuming anything, so a
        // read timeout here (the idle keep-alive case) can never tear a
        // half-read request head.
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::Relaxed) || SIG_SHUTDOWN.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let tunables = *shared.tunables.read();
        let req = match http::read_request(&mut reader, tunables.max_body)? {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(status, why) => {
                let _ = http::write_response(&mut writer, &Response::status(status, why), false);
                return Ok(());
            }
        };
        let keep_alive = tunables.keep_alive && req.keep_alive();
        // Adopt the caller's trace context when the header parses; a
        // malformed or absent header degrades to a fresh root span, never
        // an error — tracing must not be able to fail a request.
        let trace = req
            .header("x-puppies-trace")
            .and_then(puppies_obs::TraceContext::parse);
        let endpoint = endpoint_key(&req);
        let sw = puppies_obs::Stopwatch::start();
        let resp = {
            let _span = match &trace {
                Some(ctx) => {
                    puppies_obs::span_with_parent("psp.net.request", "net.server", ctx.span_id)
                }
                None => puppies_obs::span("psp.net.request", "net.server"),
            };
            route(shared, &req)
        };
        puppies_obs::counter_add("psp.net.requests", 1);
        let dur_us = sw.record_us("psp.net.req_us");
        sw.record_us(endpoint_metric(endpoint));
        if resp.status >= 500 {
            puppies_obs::counter_add("psp.net.errors", 1);
        }
        observe_request(
            shared,
            &tunables,
            endpoint,
            &req,
            &resp,
            dur_us,
            trace.as_ref(),
        );
        let shutdown_after = resp.status == 202 && req.path == "/admin/shutdown";
        http::write_response(&mut writer, &resp, keep_alive && !shutdown_after)?;
        if shutdown_after {
            shared.draining.store(true, Ordering::Relaxed);
            return Ok(());
        }
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Stable per-endpoint key, shared by the latency histograms and the SLO
/// trackers (see [`super::slo::ENDPOINTS`]).
fn endpoint_key(req: &Request) -> &'static str {
    let mut segs = req.path.split('/').filter(|s| !s.is_empty());
    match (req.method.as_str(), segs.next(), segs.next(), segs.next()) {
        ("POST", Some("photos"), None, None) => "upload",
        ("GET", Some("photos"), Some(_), None) => "download",
        ("GET", Some("photos"), Some(_), Some("params")) => "params",
        ("POST", Some("photos"), Some(_), Some("transformed")) => "transformed",
        ("POST", Some("photos"), Some(_), Some("transform")) => "transform",
        ("POST", Some("search"), None, None) => "search",
        (_, Some("grants"), ..) => "grants",
        (_, Some("receivers"), ..) => "receivers",
        _ => "other",
    }
}

/// Per-endpoint latency histogram name for an [`endpoint_key`].
fn endpoint_metric(key: &'static str) -> &'static str {
    match key {
        "upload" => "psp.net.upload_us",
        "download" => "psp.net.download_us",
        "params" => "psp.net.params_us",
        "transformed" => "psp.net.transformed_us",
        "transform" => "psp.net.transform_us",
        "search" => "psp.net.search_us",
        "grants" => "psp.net.grants_us",
        "receivers" => "psp.net.receivers_us",
        _ => "psp.net.other_us",
    }
}

/// Feeds one finished request into the SLO window and, subject to
/// sampling and the slow threshold, the structured access log.
fn observe_request(
    shared: &Shared,
    tunables: &Tunables,
    endpoint: &'static str,
    req: &Request,
    resp: &Response,
    dur_us: u64,
    trace: Option<&puppies_obs::TraceContext>,
) {
    let resp_header = |name: &str| {
        resp.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    };
    let cache = resp_header("x-cache");
    let served = resp_header("x-served-path");
    shared.slo.record(
        endpoint,
        Sample {
            ok: resp.status < 500,
            latency_us: dur_us,
            cache_hit: cache.map(|c| c == "hit"),
            coeff_served: match served {
                Some("coeff-domain") => Some(true),
                Some("pixel-fallback") => Some(false),
                _ => None,
            },
            sig_hit: match served {
                Some("sig-cached") => Some(true),
                Some("cached") => Some(false),
                _ => None,
            },
        },
    );
    let slow = dur_us >= tunables.slow_request_us;
    let seq = shared.access_seq.fetch_add(1, Ordering::Relaxed);
    let sampled = tunables.access_log_sample > 0 && seq % tunables.access_log_sample == 0;
    if !sampled && !slow {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format!(
        "{{\"ts_ms\":{ts_ms},\"seq\":{seq},\"method\":\"{}\",\"path\":\"{}\",\"status\":{},\"dur_us\":{dur_us},\"bytes_in\":{},\"bytes_out\":{},\"endpoint\":\"{endpoint}\"",
        puppies_obs::escape_json(&req.method),
        puppies_obs::escape_json(&req.path),
        resp.status,
        req.body.len(),
        resp.body.len(),
    );
    if let Some(c) = cache {
        line.push_str(&format!(",\"cache\":\"{}\"", puppies_obs::escape_json(c)));
    }
    if let Some(s) = served {
        line.push_str(&format!(",\"served\":\"{}\"", puppies_obs::escape_json(s)));
    }
    if let Some(t) = trace {
        line.push_str(&format!(",\"trace\":\"{}\"", t.header_value()));
    }
    if slow {
        line.push_str(",\"slow\":true");
    }
    line.push_str("}\n");
    let mut guard = shared.access_log.lock();
    if let Some(log) = guard.as_mut() {
        let healthy = log.write_all(line.as_bytes()).and_then(|()| log.flush());
        // A dead log must not take requests down with it.
        if healthy.is_err() {
            *guard = None;
        }
    }
}

fn error_response(e: &PspError) -> Response {
    match e {
        PspError::UnknownPhoto(_) => Response::status(404, "unknown photo"),
        PspError::Transform(e) => Response::status(400, &format!("transform: {e}")),
        PspError::Core(e) => Response::status(400, &format!("core: {e}")),
        PspError::IdsExhausted => Response::status(503, "id space exhausted"),
        PspError::Channel(m) => Response::status(500, m),
        PspError::Cluster(m) => Response::status(500, m),
    }
}

fn respond<T>(out: Result<T>, ok: impl FnOnce(T) -> Response) -> Response {
    match out {
        Ok(v) => ok(v),
        Err(e) => error_response(&e),
    }
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        // Liveness, readiness, and metrics answer before the store is
        // recovered; everything below the ready guard needs the store.
        ("GET", ["health" | "healthz"]) => Response::text("ok\n"),
        ("GET", ["readyz"]) => readyz(shared),
        ("GET", ["metrics"]) => metrics(shared),
        _ if !shared.ready() => Response::status(503, "starting: store recovery in progress"),
        ("GET", ["stats"]) => stats(shared),
        ("POST", ["photos"]) => upload(shared, req),
        ("GET", ["photos", id]) => with_id(id, |id| {
            respond(shared.store().server().download(id), |b| {
                Response::ok(b.to_vec())
            })
        }),
        ("GET", ["photos", id, "params"]) => with_id(id, |id| {
            respond(shared.store().server().download_params(id), |p| {
                Response::ok(p.to_vec())
            })
        }),
        ("POST", ["photos", id, "transformed"]) => {
            with_id(id, |id| download_transformed(shared, req, id))
        }
        ("POST", ["photos", id, "transform"]) => with_id(id, |id| transform(shared, req, id)),
        ("POST", ["search"]) => search(shared, req),
        ("POST", ["receivers"]) => register_receiver(shared, req),
        ("POST", ["grants"]) => deposit_grant(shared, req),
        ("GET", ["grants"]) => drain_grants(shared, req),
        ("POST", ["admin", "reload"]) => admin(shared, req, |shared| {
            let t = Tunables::load(&shared.dir);
            *shared.tunables.write() = t;
            puppies_obs::counter_add("psp.net.reloads", 1);
            Response::text(format!(
                "max_body:{}\nkeep_alive:{}\naccess_log_sample:{}\nslow_request_us:{}\n",
                t.max_body, t.keep_alive, t.access_log_sample, t.slow_request_us
            ))
        }),
        ("POST", ["admin", "shutdown"]) => {
            admin(shared, req, |_| Response::status(202, "draining"))
        }
        (
            _,
            ["health" | "healthz" | "readyz" | "metrics" | "stats" | "photos" | "receivers"
            | "grants" | "admin", ..],
        ) => Response::status(405, "method not allowed"),
        _ => Response::status(404, "no such endpoint"),
    }
}

/// Readiness: 200 only when the store is recovered, its IO is healthy,
/// and (when a probe is attached) the cluster has write quorum. The 503
/// body lists every failing condition, one per line.
fn readyz(shared: &Shared) -> Response {
    let mut reasons: Vec<String> = Vec::new();
    if !shared.ready() {
        reasons.push("store: wal replay in progress".to_string());
    } else if !shared.store().io_healthy() {
        reasons.push(format!(
            "store: {} io failures recorded",
            shared.store().io_failures()
        ));
    }
    if let Some(probe) = shared.quorum.read().as_ref() {
        let (healthy, total, k) = probe();
        if healthy < k {
            reasons.push(format!(
                "cluster: {healthy}/{total} backends healthy, quorum needs {k}"
            ));
        }
    }
    if reasons.is_empty() {
        Response::text("ready\n")
    } else {
        Response::status(503, &reasons.join("\n"))
    }
}

/// The Prometheus text exposition: the process-wide [`puppies_obs`]
/// registry, the per-endpoint SLO families, and the server's own
/// readiness/quorum gauges. 503 when no subscriber is installed, so a
/// scrape of a metrics-less process is an explicit failure rather than
/// an empty success.
fn metrics(shared: &Shared) -> Response {
    let Some(mut out) = puppies_obs::with(|obs| puppies_obs::prometheus_text(obs.metrics())) else {
        return Response::status(503, "no metrics subscriber installed");
    };
    out.push_str(&shared.slo.render_prometheus());
    out.push_str("# HELP psp_ready whether the store is recovered and serving\n");
    out.push_str("# TYPE psp_ready gauge\n");
    out.push_str(if shared.ready() {
        "psp_ready 1\n"
    } else {
        "psp_ready 0\n"
    });
    if let Some(probe) = shared.quorum.read().as_ref() {
        let (healthy, total, k) = probe();
        out.push_str("# TYPE psp_cluster_backends_healthy gauge\n");
        out.push_str(&format!("psp_cluster_backends_healthy {healthy}\n"));
        out.push_str("# TYPE psp_cluster_backends_total gauge\n");
        out.push_str(&format!("psp_cluster_backends_total {total}\n"));
        out.push_str("# TYPE psp_cluster_quorum_k gauge\n");
        out.push_str(&format!("psp_cluster_quorum_k {k}\n"));
    }
    Response::ok(out.into_bytes()).with_header("content-type", "text/plain; version=0.0.4")
}

fn with_id(raw: &str, f: impl FnOnce(PhotoId) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(PhotoId(id)),
        Err(_) => Response::status(400, "bad photo id"),
    }
}

fn admin(shared: &Shared, req: &Request, f: impl FnOnce(&Shared) -> Response) -> Response {
    match req.bearer() {
        Some(token) if ct_eq(token.as_bytes(), shared.admin_token.as_bytes()) => f(shared),
        Some(_) => Response::status(403, "bad admin token"),
        None => Response::status(401, "admin token required"),
    }
}

fn stats(shared: &Shared) -> Response {
    let server = shared.store().server();
    let cache = server.cache_stats();
    Response::text(format!(
        "photos:{}\ncache_hits:{}\ncache_misses:{}\ncache_entries:{}\ncache_bytes:{}\nsig_index:{}\n",
        server.len(),
        cache.hits,
        cache.misses,
        cache.entries,
        cache.bytes,
        server.sig_index_len(),
    ))
}

fn upload(shared: &Shared, req: &Request) -> Response {
    let Some((bytes, params)) = proto::decode_pair(&req.body) else {
        return Response::status(400, "bad upload body");
    };
    respond(shared.store().upload(bytes, params), |id| {
        Response::text(format!("id:{}\ntoken:{}\n", id.0, shared.owner_token(id)))
    })
}

/// `POST /search` — near-duplicate lookup over the whole store. The body
/// is an [`proto::encode_pair`] of (probe image bytes, public-parameter
/// blob; empty for none). The probe is hashed exactly like an upload —
/// public data only — and matched against the sublinear signature index.
/// Response: `sig:<hex>` then one `<photo id> <hamming distance>` line
/// per match, nearest first.
fn search(shared: &Shared, req: &Request) -> Response {
    let Some((bytes, params)) = proto::decode_pair(&req.body) else {
        return Response::status(400, "bad search body");
    };
    let params = (!params.is_empty()).then_some(params);
    let Some(sig) = crate::store::PspServer::probe_signature(&bytes, params.as_deref()) else {
        return Response::status(400, "probe image did not decode");
    };
    let matches = shared
        .store()
        .server()
        .search_similar(sig, crate::sig::NEAR_DUP_DISTANCE, 256);
    let mut body = format!("sig:{sig:016x}\n");
    for (id, distance) in matches {
        body.push_str(&format!("{} {distance}\n", id.0));
    }
    Response::text(body)
}

fn download_transformed(shared: &Shared, req: &Request, id: PhotoId) -> Response {
    let Some(t) = proto::decode_transformation(&req.body) else {
        return Response::status(400, "bad transformation encoding");
    };
    respond(
        shared.store().server().download_transformed_traced(id, &t),
        |((bytes, params), outcome, served)| {
            let cache = match outcome {
                crate::store::CacheOutcome::Hit => "hit",
                _ => "miss",
            };
            Response::ok(proto::encode_pair(&bytes, &params))
                .with_header("x-cache", cache)
                .with_header("x-served-path", served.as_str())
        },
    )
}

fn transform(shared: &Shared, req: &Request, id: PhotoId) -> Response {
    match req.bearer() {
        Some(token) if ct_eq(token.as_bytes(), shared.owner_token(id).as_bytes()) => {}
        Some(_) => return Response::status(403, "bad owner token"),
        None => return Response::status(401, "owner token required"),
    }
    let Some(t) = proto::decode_transformation(&req.body) else {
        return Response::status(400, "bad transformation encoding");
    };
    respond(shared.store().transform(id, &t), |()| {
        Response::status(204, "transformed")
    })
}

fn register_receiver(shared: &Shared, req: &Request) -> Response {
    let Ok(public): std::result::Result<[u8; 16], _> = req.body.as_slice().try_into() else {
        return Response::status(400, "body must be a 16-byte DH public value");
    };
    let token = random_token();
    respond(
        shared
            .store()
            .register_receiver(u128::from_le_bytes(public), token),
        |()| Response::text(format!("token:{}\n", proto::hex(&token))),
    )
}

fn deposit_grant(shared: &Shared, req: &Request) -> Response {
    let body = &req.body;
    if body.len() < 32 {
        return Response::status(400, "bad grant body");
    }
    let receiver = u128::from_le_bytes(body[..16].try_into().unwrap());
    let sender = u128::from_le_bytes(body[16..32].try_into().unwrap());
    let mut pos = 32;
    let Some(ciphertext) = proto::take_frame(body, &mut pos) else {
        return Response::status(400, "bad grant ciphertext frame");
    };
    if pos != body.len() {
        return Response::status(400, "trailing bytes after grant");
    }
    respond(
        shared
            .store()
            .deposit_grant(receiver, sender, ciphertext.to_vec()),
        |()| Response::status(204, "deposited"),
    )
}

fn drain_grants(shared: &Shared, req: &Request) -> Response {
    let Some(token) = req.bearer() else {
        return Response::status(401, "receiver token required");
    };
    let Some(receiver) = proto::unhex(token)
        .filter(|t| t.len() == 32)
        .and_then(|t| shared.store().receiver_for_token(&t))
    else {
        return Response::status(403, "unknown receiver token");
    };
    respond(shared.store().drain_grants(receiver), |deposits| {
        let mut out = Vec::new();
        for (sender, ciphertext) in deposits {
            out.extend_from_slice(&sender.to_le_bytes());
            proto::put_frame(&mut out, &ciphertext);
        }
        Response::ok(out)
    })
}

/// Convenience: bind and run in one call (the CLI entry point).
///
/// Installs a [`puppies_obs`] subscriber when none is active (so
/// `/metrics` always has something to serve), announces the bound address
/// immediately, and replays the WAL on a side thread while the listener
/// already answers `/healthz` — the `ready` line prints when recovery
/// lands.
///
/// # Errors
/// As [`Server::bind`] and [`Server::run`]; a recovery failure surfaces
/// after the accept loop drains.
pub fn serve(config: &ServeConfig) -> Result<()> {
    if !puppies_obs::enabled() {
        // Deliberately leaked: metrics stay live for the process lifetime.
        std::mem::forget(puppies_obs::Obs::install());
    }
    let (server, recovery) = Server::bind_unready(config)?;
    let addr = server
        .local_addr()
        .map_err(|e| PspError::Channel(format!("local addr: {e}")))?;
    let mut stdout = io::stdout();
    let _ = writeln!(stdout, "psp-serve listening on {addr}");
    let _ = stdout.flush();
    let replay = std::thread::spawn(move || {
        let result = recovery.run();
        if let Ok(rec) = &result {
            let mut stdout = io::stdout();
            let _ = writeln!(
                stdout,
                "psp-serve ready (recovered {} records, {} photos, truncated {} bytes)",
                rec.records, rec.photos, rec.truncated_bytes
            );
            let _ = stdout.flush();
        }
        result
    });
    let ran = server.run();
    let recovered = replay
        .join()
        .map_err(|_| PspError::Channel("recovery thread panicked".into()))?;
    recovered?;
    ran
}
