//! Minimal HTTP/1.1 over a `TcpStream`: just enough protocol for the PSP
//! service and its blocking client — request-line + headers,
//! `Content-Length` framing both ways, keep-alive. Deliberately not a
//! general server: no chunked encoding, no `Expect: continue`, no TLS.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on header count, to bound the parse loop.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, percent-free path, lowercased headers, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as received).
    pub method: String,
    /// Request target, e.g. `/photos/3/transformed` (query ignored).
    pub path: String,
    /// `(lowercased name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The bearer token from `Authorization`, if present.
    pub fn bearer(&self) -> Option<&str> {
        self.header("authorization")?.strip_prefix("Bearer ")
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of one bounded line read.
enum Line {
    /// Clean EOF before any byte of the line.
    Eof,
    /// The line exceeded its byte cap; the connection should be dropped.
    TooLong,
    /// A complete line, without its terminator (`\n`, `\r\n` stripped).
    /// EOF mid-line yields the partial bytes, like `read_line` would.
    Bytes(Vec<u8>),
}

/// Reads one `\n`-terminated line, never buffering more than `cap`
/// bytes. `BufRead::read_line` has no cap — it would buffer an endless
/// newline-free stream whole, an unbounded-memory DoS — so the head
/// must be read through this instead.
fn read_line_capped(reader: &mut impl BufRead, cap: usize) -> io::Result<Line> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(if line.is_empty() {
                    Line::Eof
                } else {
                    Line::Bytes(line)
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if line.len() + i > cap {
                        return Ok(Line::TooLong);
                    }
                    line.extend_from_slice(&available[..i]);
                    (i + 1, true)
                }
                None => {
                    if line.len() + available.len() > cap {
                        return Ok(Line::TooLong);
                    }
                    line.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Line::Bytes(line));
        }
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire were not a request we accept; the given
    /// status/reason should be written back before closing.
    Malformed(u16, &'static str),
}

/// Reads one request. `max_body` caps `Content-Length`; io timeouts and
/// errors surface as `Err` so the caller can decide whether the deadline
/// was a graceful-shutdown poll or a real failure.
///
/// # Errors
/// Propagates socket errors, including read timeouts (`WouldBlock` /
/// `TimedOut`).
pub fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> io::Result<ReadOutcome> {
    let line = match read_line_capped(reader, MAX_HEAD)? {
        Line::Eof => return Ok(ReadOutcome::Closed),
        Line::TooLong => return Ok(ReadOutcome::Malformed(414, "URI Too Long")),
        Line::Bytes(bytes) => match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
        },
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(505, "HTTP Version Not Supported"));
    }
    let mut headers = Vec::new();
    let mut head_budget = MAX_HEAD - line.len().min(MAX_HEAD);
    loop {
        let h = match read_line_capped(reader, head_budget)? {
            Line::Eof => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
            Line::TooLong => {
                return Ok(ReadOutcome::Malformed(
                    431,
                    "Request Header Fields Too Large",
                ))
            }
            Line::Bytes(bytes) => match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(_) => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
            },
        };
        head_budget -= (h.len() + 1).min(head_budget);
        if headers.len() > MAX_HEADERS {
            return Ok(ReadOutcome::Malformed(
                431,
                "Request Header Fields Too Large",
            ));
        }
        if h.is_empty() {
            break;
        }
        match h.split_once(':') {
            Some((k, v)) => headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string())),
            None => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
        }
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    let body = match content_length {
        None => Vec::new(),
        Some(Err(_)) => return Ok(ReadOutcome::Malformed(400, "Bad Request")),
        Some(Ok(n)) if n > max_body => return Ok(ReadOutcome::Malformed(413, "Payload Too Large")),
        Some(Ok(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
    };
    // Query strings are not part of the API; strip them so routing is exact.
    let path = path.split('?').next().unwrap_or("").to_string();
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// A response ready to serialize: status, extra headers, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra `(name, value)` headers beyond `Content-Length`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a binary body.
    pub fn ok(body: Vec<u8>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body,
        }
    }

    /// 200 with a text body.
    pub fn text(body: impl Into<String>) -> Response {
        Response::ok(body.into().into_bytes())
    }

    /// Status + reason as a one-line text body.
    pub fn status(status: u16, reason: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: format!("{reason}\n").into_bytes(),
        }
    }

    /// Adds a header, builder-style.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes a response. `keep_alive` selects the `Connection` header.
///
/// # Errors
/// Propagates socket errors.
pub fn write_response(stream: &mut TcpStream, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in &resp.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Client side: writes a request with a binary body and optional extra
/// headers (e.g. `x-puppies-trace`). Header names and values must be
/// CR/LF-free; this is a programming contract, not validated.
///
/// # Errors
/// Propagates socket errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    bearer: Option<&str>,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: psp\r\ncontent-length: {}\r\n",
        body.len()
    );
    if let Some(token) = bearer {
        head.push_str("authorization: Bearer ");
        head.push_str(token);
        head.push_str("\r\n");
    }
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed response triple: status, headers (lowercased names), body.
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Client side: reads a status line + headers + `Content-Length` body.
/// Returns `(status, headers, body)`.
///
/// # Errors
/// Fails on socket errors or a response that is not minimal HTTP/1.1.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<RawResponse> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let line = match read_line_capped(reader, MAX_HEAD)? {
        Line::Eof => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ))
        }
        Line::TooLong => return Err(bad("status line too long")),
        Line::Bytes(bytes) => String::from_utf8(bytes).map_err(|_| bad("non-utf8 status line"))?,
    };
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let trimmed = match read_line_capped(reader, MAX_HEAD)? {
            Line::Eof => return Err(bad("truncated response head")),
            Line::TooLong => return Err(bad("response header too long")),
            Line::Bytes(bytes) => String::from_utf8(bytes).map_err(|_| bad("non-utf8 header"))?,
        };
        if trimmed.is_empty() {
            break;
        }
        let (k, v) = trimmed.split_once(':').ok_or_else(|| bad("bad header"))?;
        let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
        if k == "content-length" {
            content_length = v.parse().map_err(|_| bad("bad content-length"))?;
        }
        headers.push((k, v));
        if headers.len() > MAX_HEADERS {
            return Err(bad("too many response headers"));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (join.join().unwrap(), server)
    }

    #[test]
    fn request_roundtrip_with_body_and_bearer() {
        let (mut client, server) = pipe();
        write_request(
            &mut client,
            "POST",
            "/photos/7/transform",
            Some("tok"),
            &[("x-puppies-trace", "1-2a")],
            b"abc",
        )
        .unwrap();
        let mut reader = BufReader::new(server);
        match read_request(&mut reader, 1024).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/photos/7/transform");
                assert_eq!(req.bearer(), Some("tok"));
                assert_eq!(req.header("x-puppies-trace"), Some("1-2a"));
                assert_eq!(req.body, b"abc");
                assert!(req.keep_alive());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip() {
        let (client, mut server) = pipe();
        let resp = Response::ok(vec![1, 2, 3]).with_header("x-cache", "hit");
        write_response(&mut server, &resp, true).unwrap();
        let mut reader = BufReader::new(client);
        let (status, headers, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, vec![1, 2, 3]);
        assert!(headers.iter().any(|(k, v)| k == "x-cache" && v == "hit"));
    }

    #[test]
    fn oversized_body_is_rejected_as_413() {
        let (mut client, server) = pipe();
        write_request(&mut client, "POST", "/photos", None, &[], &[0u8; 64]).unwrap();
        let mut reader = BufReader::new(server);
        match read_request(&mut reader, 16).unwrap() {
            ReadOutcome::Malformed(413, _) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn newline_free_stream_is_bounded_not_buffered() {
        let (mut client, server) = pipe();
        // A head with no newline must be rejected once it exceeds
        // MAX_HEAD, not buffered without bound while the peer streams.
        let junk = vec![b'A'; MAX_HEAD + 1024];
        client.write_all(&junk).unwrap();
        client.flush().unwrap();
        let mut reader = BufReader::new(server);
        match read_request(&mut reader, 1024).unwrap() {
            ReadOutcome::Malformed(414, _) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn oversized_header_line_is_rejected_as_431() {
        let (mut client, server) = pipe();
        let mut req = b"GET /health HTTP/1.1\r\nx-junk: ".to_vec();
        req.resize(req.len() + MAX_HEAD, b'j');
        let writer = thread::spawn(move || {
            let _ = client.write_all(&req);
            client
        });
        let mut reader = BufReader::new(server);
        match read_request(&mut reader, 1024).unwrap() {
            ReadOutcome::Malformed(431, _) => {}
            other => panic!("unexpected: {other:?}"),
        }
        drop(writer.join().unwrap());
    }

    #[test]
    fn clean_close_between_requests_is_detected() {
        let (client, server) = pipe();
        drop(client);
        let mut reader = BufReader::new(server);
        assert!(matches!(
            read_request(&mut reader, 16).unwrap(),
            ReadOutcome::Closed
        ));
    }
}
