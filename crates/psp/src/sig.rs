//! Perceptual identity for perturbed JPEGs: the public-data signature
//! extractor and the sublinear near-duplicate index.
//!
//! ROADMAP Open item 4 (after Iida–Kiya's identification of encrypted /
//! double-compressed JPEGs): the PSP should recognize a recompressed copy
//! of a photo it already stores *without decrypting anything*. PuPPIeS
//! leaves two things in the clear that survive recompression:
//!
//! - the DC envelope — per-block average brightness (perturbation keys
//!   touch AC structure; the DC of every block is public), and
//! - every coefficient of blocks outside the private ROIs.
//!
//! [`coeff_signature`] builds a per-block DC brightness grid from the
//! luma component, **replaces every block that intersects a private ROI
//! with the mean of the public blocks**, and feeds the grid to
//! [`puppies_vision::signature::phash64`]. The mask is what makes the
//! privacy argument airtight: two images that differ only inside a
//! private ROI produce bit-identical signatures (the conformance
//! `identity` suite and the attacks-side leakage oracle both pin this),
//! so the signature carries zero information about protected content.
//! Dequantized DC values (`coefficient × quant step`) are what make it
//! survive recompression: requantizing moves each by at most half a step.
//!
//! [`SigIndex`] is the search side: a multi-index Hamming table over the
//! four 16-bit signature bands. A candidate within Hamming distance 3 is
//! *guaranteed* to collide on at least one band (pigeonhole over 4 bands
//! × 64 bits); larger thresholds still find virtually all neighbours
//! because flipped bits rarely spread across all four bands. Each probe
//! touches 4 buckets of expected size `n / 65536`, so lookups stay
//! sublinear in the store size — the property `bench psp --dup` measures
//! at 1k/10k/100k entries.

use crate::store::PhotoId;
use puppies_image::Rect;
use puppies_jpeg::CoeffImage;
pub use puppies_vision::signature::hamming;
use puppies_vision::signature::{bands, phash64};
use std::collections::HashMap;

/// Hamming threshold under which two signatures are treated as the same
/// photo (recompressed / re-encoded copies land well under this; distinct
/// photos land far above — see the conformance `identity` suite).
pub const NEAR_DUP_DISTANCE: u32 = 6;

/// Computes the 64-bit perceptual signature of a coefficient image from
/// public data only: the luma DC envelope with every block intersecting a
/// rect in `masked` (the private ROIs) replaced by the mean public
/// brightness. Works on perturbed and plain images alike.
pub fn coeff_signature(coeff: &CoeffImage, masked: &[Rect]) -> u64 {
    let luma = &coeff.components()[0];
    let (bw, bh) = (luma.blocks_w() as usize, luma.blocks_h() as usize);
    if bw == 0 || bh == 0 {
        return 0;
    }
    let dc_step = f32::from(luma.quant().steps()[0]);
    let mut grid: Vec<f32> = luma
        .blocks()
        .iter()
        .map(|b| b[0] as f32 * dc_step)
        .collect();
    let mut mask = vec![false; grid.len()];
    for r in masked {
        for (bx, by) in luma.blocks_in_region(*r) {
            mask[by as usize * bw + bx as usize] = true;
        }
    }
    let (mut sum, mut n) = (0.0f64, 0u32);
    for (v, m) in grid.iter().zip(&mask) {
        if !m {
            sum += f64::from(*v);
            n += 1;
        }
    }
    let fill = if n > 0 {
        (sum / f64::from(n)) as f32
    } else {
        0.0
    };
    for (v, m) in grid.iter_mut().zip(&mask) {
        if *m {
            *v = fill;
        }
    }
    phash64(&grid, bw, bh)
}

/// One indexed photo: its signature plus the identity facts a match must
/// agree on before the index calls it a near-duplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigEntry {
    /// The perceptual signature.
    pub sig: u64,
    /// The photo this entry describes.
    pub id: PhotoId,
    /// FNV-1a content key of the photo (bytes chained with params) — the
    /// transform-cache keyspace this entry lives in.
    pub content_fnv: u64,
    /// Content key of the *family root*: the first photo this signature
    /// family resolved to. Duplicates share the root's cached transform
    /// results (see `PspServer::serve_transform`).
    pub family_fnv: u64,
    /// FNV-1a of the raw params bytes; near-duplicate matching requires
    /// equal params so the served params are interchangeable.
    pub params_fnv: u64,
    /// Pixel dimensions; matching requires equality.
    pub width: u32,
    pub height: u32,
}

/// A near-duplicate match and how far it sits from the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigMatch {
    /// The matched entry.
    pub entry: SigEntry,
    /// Hamming distance from the probe signature.
    pub distance: u32,
}

/// Multi-index Hamming hash table over the 4×16-bit signature bands.
///
/// Insertions are O(1) (one bucket push per band); lookups probe four
/// buckets and verify true Hamming distance on each distinct candidate.
#[derive(Debug, Default)]
pub struct SigIndex {
    entries: Vec<SigEntry>,
    /// Slots of `entries` freed by [`SigIndex::remove`], reused first.
    free: Vec<u32>,
    /// band value → entry slots, one map per band position.
    buckets: [HashMap<u16, Vec<u32>>; 4],
    /// Candidate slots scanned by lookups since construction (the
    /// sublinearity observable `bench psp --dup` reports).
    scanned: u64,
}

impl SigIndex {
    /// An empty index.
    pub fn new() -> SigIndex {
        SigIndex::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Whether the index holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate entries scanned by all lookups so far.
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Inserts an entry (duplicated `(sig, id)` pairs are the caller's
    /// bug; the index does not check).
    pub fn insert(&mut self, entry: SigEntry) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                (self.entries.len() - 1) as u32
            }
        };
        for (map, band) in self.buckets.iter_mut().zip(bands(entry.sig)) {
            map.entry(band).or_default().push(slot);
        }
    }

    /// Removes the entry for `(sig, id)`; returns whether it existed.
    /// Used when an in-place transform or WAL replay replaces a photo's
    /// content (its signature changes with it).
    pub fn remove(&mut self, sig: u64, id: PhotoId) -> bool {
        let mut slot_found = None;
        for (map, band) in self.buckets.iter_mut().zip(bands(sig)) {
            if let Some(bucket) = map.get_mut(&band) {
                if let Some(pos) = bucket.iter().position(|&s| {
                    let e = &self.entries[s as usize];
                    e.sig == sig && e.id == id
                }) {
                    slot_found = Some(bucket.swap_remove(pos));
                }
                if bucket.is_empty() {
                    map.remove(&band);
                }
            }
        }
        match slot_found {
            Some(slot) => {
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// All live entries within `max_dist` of `sig`, sorted by
    /// `(distance, photo id)`. Probes one bucket per band and verifies
    /// the real Hamming distance on every distinct candidate.
    pub fn lookup(&mut self, sig: u64, max_dist: u32) -> Vec<SigMatch> {
        let mut candidates: Vec<u32> = Vec::new();
        for (map, band) in self.buckets.iter().zip(bands(sig)) {
            if let Some(bucket) = map.get(&band) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        self.scanned += candidates.len() as u64;
        let mut out: Vec<SigMatch> = candidates
            .into_iter()
            .filter_map(|slot| {
                let entry = self.entries[slot as usize];
                let distance = hamming(entry.sig, sig);
                (distance <= max_dist).then_some(SigMatch { entry, distance })
            })
            .collect();
        out.sort_by_key(|m| (m.distance, m.entry.id.0));
        out
    }

    /// The family a new photo with `(sig, params_fnv, width, height)`
    /// belongs to: the best-matching compatible entry within
    /// [`NEAR_DUP_DISTANCE`], or `None` when the photo starts a new
    /// family. Compatibility (equal params and dimensions) is what lets
    /// the transform cache serve the family root's results verbatim.
    pub fn family_of(
        &mut self,
        sig: u64,
        params_fnv: u64,
        width: u32,
        height: u32,
    ) -> Option<SigEntry> {
        self.lookup(sig, NEAR_DUP_DISTANCE)
            .into_iter()
            .map(|m| m.entry)
            .find(|e| e.params_fnv == params_fnv && e.width == width && e.height == height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_image::{Rgb, RgbImage};

    fn entry(sig: u64, id: u64) -> SigEntry {
        SigEntry {
            sig,
            id: PhotoId(id),
            content_fnv: id.wrapping_mul(0x9E37_79B9),
            family_fnv: id.wrapping_mul(0x9E37_79B9),
            params_fnv: 7,
            width: 96,
            height: 72,
        }
    }

    fn textured(seed: u8) -> RgbImage {
        RgbImage::from_fn(96, 72, |x, y| {
            Rgb::new(
                seed.wrapping_add((x * 5 + y * 3) as u8),
                ((x + 2 * y) % 240) as u8,
                seed ^ (y as u8).wrapping_mul(7),
            )
        })
    }

    #[test]
    fn signature_survives_requantization() {
        let img = textured(1);
        let coeff = CoeffImage::from_rgb(&img, 75);
        let sig = coeff_signature(&coeff, &[]);
        for q in [25u8, 50, 90] {
            let mut re = coeff.clone();
            re.requantize(q);
            let d = hamming(sig, coeff_signature(&re, &[]));
            assert!(d <= NEAR_DUP_DISTANCE, "q{q} moved the signature {d} bits");
        }
    }

    #[test]
    fn masked_blocks_do_not_reach_the_signature() {
        let roi = Rect::new(24, 16, 32, 32);
        let a = CoeffImage::from_rgb(&textured(1), 75);
        // Same picture with the ROI interior scribbled over.
        let scribbled = RgbImage::from_fn(96, 72, |x, y| {
            if roi.contains(x, y) {
                Rgb::new((x * 31) as u8, 0, (y * 17) as u8)
            } else {
                textured(1).get(x, y)
            }
        });
        let b = CoeffImage::from_rgb(&scribbled, 75);
        assert_eq!(
            coeff_signature(&a, &[roi]),
            coeff_signature(&b, &[roi]),
            "ROI content leaked into the signature"
        );
        // Without the mask the scribble is visible.
        assert_ne!(coeff_signature(&a, &[]), coeff_signature(&b, &[]));
    }

    #[test]
    fn distinct_images_are_far_apart() {
        let a = coeff_signature(&CoeffImage::from_rgb(&textured(1), 75), &[]);
        let b = coeff_signature(&CoeffImage::from_rgb(&textured(200), 75), &[]);
        assert!(hamming(a, b) > NEAR_DUP_DISTANCE);
    }

    #[test]
    fn index_finds_near_matches_and_misses_far_ones() {
        let mut idx = SigIndex::new();
        let base = 0xDEAD_BEEF_CAFE_F00Du64;
        idx.insert(entry(base, 1));
        idx.insert(entry(base ^ 0b1011, 2)); // distance 3
        idx.insert(entry(!base, 3)); // distance 64
        let hits = idx.lookup(base, NEAR_DUP_DISTANCE);
        let ids: Vec<u64> = hits.iter().map(|m| m.entry.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(hits[0].distance, 0);
        assert_eq!(hits[1].distance, 3);
    }

    #[test]
    fn distance_three_always_collides_on_a_band() {
        // Pigeonhole guarantee: ≤3 flipped bits cannot touch all 4 bands.
        let mut idx = SigIndex::new();
        let base = 0x0123_4567_89AB_CDEFu64;
        idx.insert(entry(base, 1));
        for bits in [0u64, 1 << 0, 1 << 0 | 1 << 17, 1 << 0 | 1 << 17 | 1 << 34] {
            assert_eq!(idx.lookup(base ^ bits, 3).len(), 1, "bits {bits:#x}");
        }
    }

    #[test]
    fn remove_frees_and_reuses_slots() {
        let mut idx = SigIndex::new();
        idx.insert(entry(10, 1));
        idx.insert(entry(20, 2));
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(10, PhotoId(1)));
        assert!(!idx.remove(10, PhotoId(1)));
        assert_eq!(idx.len(), 1);
        assert!(idx.lookup(10, 0).is_empty());
        idx.insert(entry(30, 3));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.lookup(30, 0).len(), 1);
    }

    #[test]
    fn family_requires_compatible_identity() {
        let mut idx = SigIndex::new();
        idx.insert(entry(100, 1));
        assert!(idx.family_of(100, 7, 96, 72).is_some());
        assert!(idx.family_of(100, 8, 96, 72).is_none(), "params differ");
        assert!(idx.family_of(100, 7, 96, 80).is_none(), "size differs");
        assert!(idx.family_of(!100, 7, 96, 72).is_none(), "signature far");
    }

    #[test]
    fn lookups_scan_sublinearly() {
        let mut idx = SigIndex::new();
        // Pseudo-random signatures: xorshift64*.
        let mut s = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 0..20_000u64 {
            idx.insert(entry(next(), i));
        }
        let before = idx.scanned();
        for _ in 0..100 {
            let _ = idx.lookup(next(), NEAR_DUP_DISTANCE);
        }
        let per_query = (idx.scanned() - before) as f64 / 100.0;
        // Expected bucket size is 20000/65536 < 1 per band; allow slack.
        assert!(per_query < 40.0, "scanned {per_query} candidates/query");
    }
}
