//! Serving-side caches for the PSP fast path.
//!
//! Two layers sit in front of the decode→transform→re-encode pipeline:
//!
//! - [`TransformCache`] — a byte-budgeted, content-addressed LRU of
//!   finished transform results. The key is an FNV-1a chain over the
//!   source bitstream, the source parameter blob, and the
//!   [`puppies_transform::Transformation::canonical_bytes`] encoding, so a
//!   hit can *never* serve stale bytes: rewriting a photo changes its
//!   content hash, which changes every key derived from it, and the
//!   orphaned entries simply age out of the LRU. Content addressing *is*
//!   the invalidation story.
//! - [`DecodeMemo`] — a small entry-bounded LRU of decoded
//!   [`CoeffImage`]s keyed by the same content hash, so several distinct
//!   transformations of one hot photo pay for its entropy decode once.
//!
//! Both are internally locked ([`parking_lot::Mutex`], held only for map
//! bookkeeping — never across codec work) and safe to share across server
//! shards. Hit/miss/eviction counts feed `puppies-obs` counters
//! (`psp.cache.hit`, `psp.cache.miss`, `psp.cache.eviction`,
//! `psp.memo.hit`, `psp.memo.miss`) and the `psp.cache.bytes` gauge.

use parking_lot::Mutex;
use puppies_jpeg::CoeffImage;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A served `(JPEG bytes, public-params blob)` pair behind shared
/// allocations — what `download_transformed` returns and what the
/// transform cache stores.
pub type ServedPair = (Arc<[u8]>, Arc<[u8]>);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice (same function the conformance manifest
/// uses — small enough to keep a private copy rather than a dependency).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_chain(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a 64 hash over more bytes, so multi-part keys
/// (content hash ⨁ transformation encoding) mix rather than concatenate.
pub(crate) fn fnv64_chain(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Word-at-a-time content hash for bulk payloads (stored bitstreams):
/// FNV-style multiply/xor over 8-byte little-endian chunks plus a
/// length-mixed tail. Byte-at-a-time FNV tops out around 1 GB/s — a real
/// tax on the upload door, which hashes every incoming image — while the
/// chunked walk keeps the same distribution quality for the runtime-only
/// keys it feeds (byte interner, decode memo, transform-cache content
/// addresses; every consumer verifies candidates by byte comparison, so
/// a collision costs a compare, never a wrong answer). Not FNV-1a
/// compatible, and never persisted: WAL checksums and conformance
/// manifests keep their own byte-exact hashes.
pub(crate) fn content_hash64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ (bytes.len() as u64).wrapping_mul(FNV_PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(FNV_PRIME);
        // A second mix step: one multiply leaves the low bytes of `word`
        // underdiffused into the high bits the shard/bucket maps use.
        h ^= h >> 29;
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(FNV_PRIME);
    h ^ (h >> 31)
}

/// A point-in-time snapshot of a [`TransformCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Payload bytes currently resident (image + params per entry).
    pub bytes: usize,
    /// The configured byte budget (0 = cache disabled).
    pub capacity_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached transform result: the re-encoded bitstream plus the updated
/// public-parameter blob (with the transformation recorded), both shared.
#[derive(Clone)]
struct CacheEntry {
    bytes: Arc<[u8]>,
    params: Arc<[u8]>,
    stamp: u64,
}

impl CacheEntry {
    fn charge(&self) -> usize {
        self.bytes.len() + self.params.len()
    }
}

/// Recency bookkeeping shared by both caches: a stamp queue with lazy
/// cleanup. Every touch pushes a fresh `(key, stamp)` pair; eviction pops
/// from the front and skips pairs whose stamp no longer matches the live
/// entry (they were superseded by a later touch). Amortized O(1) per
/// operation, no intrusive list.
struct LruInner {
    map: HashMap<u64, CacheEntry>,
    order: VecDeque<(u64, u64)>,
    next_stamp: u64,
    bytes: usize,
}

impl LruInner {
    fn touch(&mut self, key: u64) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.order.push_back((key, stamp));
        stamp
    }

    /// Compacts the stamp queue if superseded pairs dominate it, keeping
    /// its length proportional to the live entry count.
    fn maybe_compact(&mut self) {
        if self.order.len() > 32 && self.order.len() > self.map.len() * 4 {
            let LruInner { map, order, .. } = self;
            order.retain(|&(k, stamp)| map.get(&k).is_some_and(|e| e.stamp == stamp));
        }
    }
}

/// Content-addressed, byte-budgeted LRU for finished transform results.
pub struct TransformCache {
    budget: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for TransformCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("TransformCache")
            .field("budget", &self.budget)
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl TransformCache {
    /// Creates a cache with the given byte budget; 0 disables it (every
    /// lookup misses, inserts are dropped).
    pub fn new(budget_bytes: usize) -> Self {
        TransformCache {
            budget: budget_bytes,
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                next_stamp: 0,
                bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a transform result, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<ServedPair> {
        if self.budget == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            puppies_obs::counted!("psp.cache.miss");
            return None;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.touch(key);
        let hit = match inner.map.get_mut(&key) {
            Some(e) => {
                e.stamp = stamp;
                Some((e.bytes.clone(), e.params.clone()))
            }
            None => None,
        };
        inner.maybe_compact();
        drop(inner);
        match hit {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                puppies_obs::counted!("psp.cache.hit");
                Some(found)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                puppies_obs::counted!("psp.cache.miss");
                None
            }
        }
    }

    /// Two-level lookup for the perceptual-identity layer: the exact
    /// content key is checked first; only on a miss, and only when the
    /// photo belongs to a signature family rooted at a *different*
    /// content key, is the family key consulted. Returns the pair plus
    /// whether the family key (level 2) served it — the caller owns the
    /// `psp.sig.hit` / `psp.sig.miss` accounting, since only it knows
    /// whether a family existed to consult.
    pub fn get_two_level(&self, exact: u64, family: Option<u64>) -> Option<(ServedPair, bool)> {
        if let Some(pair) = self.get(exact) {
            return Some((pair, false));
        }
        match family {
            Some(f) if f != exact => self.get(f).map(|pair| (pair, true)),
            _ => None,
        }
    }

    /// Inserts a transform result, evicting least-recently-used entries to
    /// stay within the byte budget. Oversized values (larger than the whole
    /// budget) are dropped rather than wiping the cache for one entry.
    pub fn insert(&self, key: u64, bytes: Arc<[u8]>, params: Arc<[u8]>) {
        let charge = bytes.len() + params.len();
        if self.budget == 0 || charge > self.budget {
            return;
        }
        let mut evicted = 0u64;
        let mut inner = self.inner.lock();
        let stamp = inner.touch(key);
        if let Some(old) = inner.map.insert(
            key,
            CacheEntry {
                bytes,
                params,
                stamp,
            },
        ) {
            inner.bytes -= old.charge();
        }
        inner.bytes += charge;
        while inner.bytes > self.budget {
            let Some((victim, vstamp)) = inner.order.pop_front() else {
                break;
            };
            // Skip stale queue pairs: the entry was touched again later (or
            // is the one just inserted) and a fresher pair covers it.
            if inner.map.get(&victim).is_some_and(|e| e.stamp == vstamp) {
                let old = inner.map.remove(&victim).expect("checked above");
                inner.bytes -= old.charge();
                evicted += 1;
            }
        }
        inner.maybe_compact();
        let resident = inner.bytes;
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if puppies_obs::enabled() {
                puppies_obs::counter_add("psp.cache.eviction", evicted);
            }
        }
        if puppies_obs::enabled() {
            puppies_obs::gauge_set("psp.cache.bytes", resident as i64);
        }
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.budget,
        }
    }
}

/// Entry-bounded LRU of decoded coefficient images, keyed by the photo's
/// content hash. Bounded by count rather than bytes: decoded images are a
/// small fixed population of hot photos, and an `Arc` clone out of the memo
/// is what the transform pipeline works from.
pub struct DecodeMemo {
    capacity: usize,
    inner: Mutex<MemoInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct MemoInner {
    map: HashMap<u64, (Arc<CoeffImage>, u64)>,
    order: VecDeque<(u64, u64)>,
    next_stamp: u64,
}

impl std::fmt::Debug for DecodeMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeMemo")
            .field("capacity", &self.capacity)
            .field("entries", &self.inner.lock().map.len())
            .finish()
    }
}

impl DecodeMemo {
    /// Creates a memo holding at most `capacity` decoded images; 0
    /// disables it.
    pub fn new(capacity: usize) -> Self {
        DecodeMemo {
            capacity,
            inner: Mutex::new(MemoInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                next_stamp: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a decoded image by content hash.
    pub fn get(&self, key: u64) -> Option<Arc<CoeffImage>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.order.push_back((key, stamp));
        let hit = inner.map.get_mut(&key).map(|(img, s)| {
            *s = stamp;
            img.clone()
        });
        drop(inner);
        match &hit {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                puppies_obs::counted!("psp.memo.hit");
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                puppies_obs::counted!("psp.memo.miss");
            }
        }
        hit
    }

    /// Inserts a decoded image, evicting the least-recently-used one past
    /// capacity.
    pub fn insert(&self, key: u64, img: Arc<CoeffImage>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.order.push_back((key, stamp));
        inner.map.insert(key, (img, stamp));
        while inner.map.len() > self.capacity {
            let Some((victim, vstamp)) = inner.order.pop_front() else {
                break;
            };
            if inner.map.get(&victim).is_some_and(|(_, s)| *s == vstamp) {
                inner.map.remove(&victim);
            }
        }
        if inner.order.len() > 32 && inner.order.len() > inner.map.len() * 4 {
            let MemoInner { map, order, .. } = &mut *inner;
            order.retain(|&(k, stamp)| map.get(&k).is_some_and(|(_, s)| *s == stamp));
        }
    }

    /// Drops the entry for a content hash (used when a photo is rewritten
    /// in place, so the superseded decode does not linger until eviction).
    pub fn invalidate(&self, key: u64) {
        if self.capacity == 0 {
            return;
        }
        self.inner.lock().map.remove(&key);
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Arc<[u8]> {
        vec![fill; n].into()
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hit_returns_inserted_payload() {
        let cache = TransformCache::new(1024);
        cache.insert(7, blob(10, 1), blob(4, 2));
        let (b, p) = cache.get(7).expect("hit");
        assert_eq!(b.as_ref(), &[1u8; 10][..]);
        assert_eq!(p.as_ref(), &[2u8; 4][..]);
        assert!(cache.get(8).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 14));
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let cache = TransformCache::new(30);
        cache.insert(1, blob(10, 1), blob(0, 0));
        cache.insert(2, blob(10, 2), blob(0, 0));
        cache.insert(3, blob(10, 3), blob(0, 0));
        // Touch 1 so 2 becomes the LRU, then overflow.
        assert!(cache.get(1).is_some());
        cache.insert(4, blob(10, 4), blob(0, 0));
        assert!(cache.get(2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= 30);
    }

    #[test]
    fn oversized_value_is_dropped_not_cached() {
        let cache = TransformCache::new(16);
        cache.insert(1, blob(8, 1), blob(0, 0));
        cache.insert(2, blob(100, 2), blob(0, 0));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some(), "resident entries survive");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_same_key_updates_accounting() {
        let cache = TransformCache::new(100);
        cache.insert(1, blob(40, 1), blob(0, 0));
        cache.insert(1, blob(20, 2), blob(0, 0));
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (1, 20));
        assert_eq!(cache.get(1).unwrap().0.as_ref(), &[2u8; 20][..]);
    }

    #[test]
    fn two_level_prefers_exact_then_falls_back_to_family() {
        let cache = TransformCache::new(1024);
        cache.insert(100, blob(4, 1), blob(0, 0));
        // Exact hit never consults the family key.
        let (pair, via_family) = cache.get_two_level(100, Some(200)).unwrap();
        assert_eq!(pair.0.as_ref(), &[1u8; 4][..]);
        assert!(!via_family);
        // Exact miss + family resident: level-2 hit.
        let (pair, via_family) = cache.get_two_level(999, Some(100)).unwrap();
        assert_eq!(pair.0.as_ref(), &[1u8; 4][..]);
        assert!(via_family);
        // Family equal to the exact key is not re-probed.
        assert!(cache.get_two_level(999, Some(999)).is_none());
        // No family: plain miss.
        assert!(cache.get_two_level(999, None).is_none());
    }

    #[test]
    fn zero_budget_disables() {
        let cache = TransformCache::new(0);
        cache.insert(1, blob(4, 1), blob(0, 0));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn stamp_queue_stays_bounded_under_rehits() {
        let cache = TransformCache::new(1024);
        cache.insert(1, blob(8, 1), blob(0, 0));
        for _ in 0..10_000 {
            assert!(cache.get(1).is_some());
        }
        let order_len = cache.inner.lock().order.len();
        assert!(order_len <= 64, "stamp queue grew to {order_len}");
    }

    #[test]
    fn memo_lru_and_invalidate() {
        let img = Arc::new(CoeffImage::from_rgb(
            &puppies_image::RgbImage::filled(8, 8, puppies_image::Rgb::new(1, 2, 3)),
            75,
        ));
        let memo = DecodeMemo::new(2);
        memo.insert(1, img.clone());
        memo.insert(2, img.clone());
        assert!(memo.get(1).is_some());
        memo.insert(3, img.clone());
        assert!(memo.get(2).is_none(), "LRU evicted");
        assert!(memo.get(1).is_some());
        assert!(memo.get(3).is_some());
        memo.invalidate(1);
        assert!(memo.get(1).is_none());
        let (h, m) = memo.counters();
        assert!(h >= 3 && m >= 2);
    }
}
