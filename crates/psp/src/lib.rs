//! End-to-end simulation of the PuPPIeS deployment (Fig. 5): a sender, a
//! semi-honest photo-sharing platform, receivers, and the private-matrix
//! sharing channel.
//!
//! - [`store`] — the PSP: stores perturbed images plus public parameters,
//!   serves them to anyone, and applies standard transformations on
//!   request (it is *semi-honest*: it follows the protocol but may run
//!   arbitrary analysis on what it stores — the attacks crate plays that
//!   role)
//! - [`channel`] — the secure key channel: a toy Diffie–Hellman key
//!   agreement plus stream encryption for transporting [`KeyGrant`]s.
//!   Key distribution is explicitly out of the paper's scope ("standard
//!   crypto method is used to distribute the keys"); this module exists so
//!   the end-to-end examples exercise a complete flow, and its security
//!   level is simulation-grade only (61-bit group!)
//! - [`client`] — [`client::Sender`] / [`client::Receiver`] wrapping the
//!   `puppies-core` protect/recover pipeline against the store

pub mod cache;
pub mod channel;
pub mod client;
pub mod cluster;
pub mod net;
pub mod sha256;
pub mod sig;
pub mod store;
pub mod store_disk;
pub mod wal;

pub use cache::{CacheStats, ServedPair};
pub use channel::{KeyAgreement, SecureChannel};
pub use client::{Receiver, Sender};
pub use cluster::fault::{Fault, FaultPlan};
pub use cluster::{ClusterConfig, ClusterPhotoId, ShardedPspCluster};
use puppies_core::KeyGrant;
pub use sig::{coeff_signature, hamming, SigEntry, SigIndex, SigMatch, NEAR_DUP_DISTANCE};
pub use store::{CacheOutcome, PhotoId, PspConfig, PspServer, ServedPath};
pub use store_disk::{DiskStore, RecoveryStats};
pub use wal::{Wal, WalRecord};

use std::fmt;

/// Errors produced by the PSP simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum PspError {
    /// The requested photo does not exist.
    UnknownPhoto(PhotoId),
    /// A transformation could not be applied.
    Transform(puppies_transform::TransformError),
    /// A PuPPIeS-level failure (bad keys, undecodable image...).
    Core(puppies_core::PuppiesError),
    /// Channel decryption failed (wrong key or corrupted payload).
    Channel(String),
    /// The server's photo-id space is exhausted (u64 wrapped); no further
    /// uploads can be accepted without risking silent id reuse.
    IdsExhausted,
    /// A multi-backend cluster failure (quorum loss, bad share, bad
    /// shape...).
    Cluster(String),
}

impl fmt::Display for PspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PspError::UnknownPhoto(id) => write!(f, "unknown photo {id:?}"),
            PspError::Transform(e) => write!(f, "transform error: {e}"),
            PspError::Core(e) => write!(f, "core error: {e}"),
            PspError::Channel(m) => write!(f, "channel error: {m}"),
            PspError::IdsExhausted => write!(f, "photo id space exhausted"),
            PspError::Cluster(m) => write!(f, "cluster error: {m}"),
        }
    }
}

impl std::error::Error for PspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PspError::Transform(e) => Some(e),
            PspError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<puppies_transform::TransformError> for PspError {
    fn from(e: puppies_transform::TransformError) -> Self {
        PspError::Transform(e)
    }
}

impl From<puppies_core::PuppiesError> for PspError {
    fn from(e: puppies_core::PuppiesError) -> Self {
        PspError::Core(e)
    }
}

/// Convenient result alias for PSP operations.
pub type Result<T> = std::result::Result<T, PspError>;

/// Transports a grant from a sender to a receiver over an established
/// secure channel (serialize → encrypt → decrypt → rebuild).
///
/// # Errors
/// Fails if decryption fails.
pub fn transport_grant(
    sender_channel: &SecureChannel,
    receiver_channel: &SecureChannel,
    grant: &KeyGrant,
) -> Result<KeyGrant> {
    let plain = channel::encode_grant(grant);
    let cipher = sender_channel.encrypt(&plain);
    let back = receiver_channel.decrypt(&cipher)?;
    channel::decode_grant(&back)
}
