//! Persistent PSP store: a content-addressed segment directory plus a
//! write-ahead log wrapped around the in-memory [`PspServer`].
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   wal.log                    append-only record log (see [`crate::wal`])
//!   segments/<sha256 hex>.seg  content-addressed blobs (bitstreams, params)
//! ```
//!
//! Blobs are named by the SHA-256 of their content, so a segment write
//! is idempotent: re-uploading identical bytes re-references the existing
//! file, and a crashed write can never damage a referenced segment (new
//! content lands under a temp name and is atomically renamed into place).
//! The hash must be collision-resistant — dedup trusts the file name, so
//! with a craftable hash (FNV, CRC) one uploader could pre-plant a
//! colliding blob and alias a later upload's content.
//!
//! # Durability protocol
//!
//! 1. write + fsync the referenced segment files (rename into place);
//! 2. apply the change to the in-memory [`PspServer`];
//! 3. append + fsync the WAL record;
//! 4. acknowledge the client.
//!
//! A crash before (3) loses only unacknowledged work; a crash during (3)
//! tears at most the final record, which replay truncates. Recovery
//! ([`DiskStore::open`]) replays the log in order, rebuilding the server
//! with [`PspServer::restore_photo`] and the grant mailbox verbatim.
//! Serving reads (`download`, `download_transformed`, …) never touch the
//! disk — they hit the in-memory sharded store and transform cache, so
//! persistence costs writes only.

use crate::sha256::sha256;
use crate::store::{PhotoId, PspConfig, PspServer};
use crate::wal::{Wal, WalRecord};
use crate::{PspError, Result};
use parking_lot::Mutex;
use puppies_transform::Transformation;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// What [`DiskStore::open`] found while recovering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Intact WAL records replayed.
    pub records: u64,
    /// Photos live after replay.
    pub photos: u64,
    /// Bytes of torn WAL tail truncated away.
    pub truncated_bytes: u64,
}

/// A mailbox of encrypted grants addressed to one receiver public value.
#[derive(Debug, Default, Clone)]
pub struct Mailbox {
    /// `(sender DH public, ciphertext)` deposits, oldest first.
    pub deposits: Vec<(u128, Vec<u8>)>,
}

#[derive(Debug, Default)]
struct GrantState {
    /// token bytes → receiver DH public value.
    tokens: std::collections::HashMap<[u8; 32], u128>,
    /// receiver DH public value → pending deposits.
    mailboxes: std::collections::HashMap<u128, Mailbox>,
}

/// The persistent server: [`PspServer`] semantics, plus every
/// acknowledged mutation is durable and recoverable.
#[derive(Debug)]
pub struct DiskStore {
    server: PspServer,
    wal: Mutex<Wal>,
    grants: Mutex<GrantState>,
    segments: PathBuf,
    recovery: RecoveryStats,
    /// Whether segment writes sync (mirrors the WAL's setting from
    /// [`DiskStore::open`]).
    fsync: bool,
    /// Durability-path failures (segment write or WAL append/sync) since
    /// open. Nonzero means acknowledged-durability can no longer be
    /// promised, so `/readyz` reports the store degraded.
    io_failures: AtomicU64,
}

fn io_err(e: io::Error, what: &str) -> PspError {
    PspError::Channel(format!("{what}: {e}"))
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir`, replaying the
    /// WAL: every acknowledged upload/transform/grant is reinstated, a
    /// torn tail is truncated. `fsync` should be `true` everywhere except
    /// tests/benches that measure something other than disk latency.
    ///
    /// # Errors
    /// Fails on filesystem errors or a WAL record referencing a missing
    /// segment (which the durability protocol makes impossible short of
    /// external tampering).
    pub fn open(dir: &Path, config: PspConfig, fsync: bool) -> Result<DiskStore> {
        let segments = dir.join("segments");
        fs::create_dir_all(&segments).map_err(|e| io_err(e, "creating segment dir"))?;
        let wal_path = dir.join("wal.log");
        let replay = Wal::replay(&wal_path).map_err(|e| io_err(e, "replaying wal"))?;
        let server = PspServer::with_config(config);
        let mut grants = GrantState::default();
        let records = replay.records.len() as u64;
        for record in &replay.records {
            match record {
                WalRecord::Upload {
                    id,
                    bytes_sha,
                    params_sha,
                }
                | WalRecord::Transform {
                    id,
                    bytes_sha,
                    params_sha,
                } => {
                    let bytes = read_segment(&segments, bytes_sha)?;
                    let params = read_segment(&segments, params_sha)?;
                    server.restore_photo(PhotoId(*id), bytes, params);
                }
                WalRecord::Receiver { dh_public, token } => {
                    grants.tokens.insert(*token, *dh_public);
                }
                WalRecord::GrantDeposit {
                    receiver,
                    sender,
                    ciphertext,
                } => {
                    grants
                        .mailboxes
                        .entry(*receiver)
                        .or_default()
                        .deposits
                        .push((*sender, ciphertext.clone()));
                }
                WalRecord::GrantDrain { receiver } => {
                    grants.mailboxes.remove(receiver);
                }
            }
        }
        let recovery = RecoveryStats {
            records,
            photos: server.len() as u64,
            truncated_bytes: replay.truncated_bytes,
        };
        let wal = Wal::open(&wal_path, fsync).map_err(|e| io_err(e, "opening wal"))?;
        Ok(DiskStore {
            server,
            wal: Mutex::new(wal),
            grants: Mutex::new(grants),
            segments,
            recovery,
            fsync,
            io_failures: AtomicU64::new(0),
        })
    }

    /// Durability-path failures (segment writes, WAL appends/syncs)
    /// since open. See [`DiskStore::io_healthy`].
    pub fn io_failures(&self) -> u64 {
        self.io_failures.load(Ordering::Relaxed)
    }

    /// `true` while every durability-path write has succeeded. Once a
    /// segment or WAL write fails the store keeps serving reads but stops
    /// claiming readiness — acknowledged writes may no longer be durable.
    pub fn io_healthy(&self) -> bool {
        self.io_failures() == 0
    }

    /// Whether per-append fsync is on (the durable configuration).
    pub fn fsync_enabled(&self) -> bool {
        self.fsync
    }

    /// Counts durability-path failures as they propagate.
    fn note_io<T>(&self, r: Result<T>) -> Result<T> {
        if r.is_err() {
            self.io_failures.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// The in-memory server behind this store — read-only doors
    /// (`download`, `download_params`, `download_transformed`, batch APIs,
    /// stats) are safe to call directly; mutations must go through
    /// [`DiskStore::upload`] / [`DiskStore::transform`] to stay durable.
    pub fn server(&self) -> &PspServer {
        &self.server
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Durable upload: segments + WAL are synced before the id is
    /// returned, so an acknowledged upload survives `kill -9`.
    ///
    /// # Errors
    /// Fails on id exhaustion or filesystem errors.
    pub fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> Result<PhotoId> {
        let bytes_sha = sha256(&bytes);
        let params_sha = sha256(&params);
        self.note_io(write_segment(
            &self.segments,
            &bytes_sha,
            &bytes,
            self.fsync,
        ))?;
        self.note_io(write_segment(
            &self.segments,
            &params_sha,
            &params,
            self.fsync,
        ))?;
        let id = self.server.upload(bytes, params)?;
        self.append(&WalRecord::Upload {
            id: id.0,
            bytes_sha,
            params_sha,
        })?;
        Ok(id)
    }

    /// Durable in-place transform: runs [`PspServer::transform`], then
    /// persists the rewritten blobs and the WAL record before returning.
    ///
    /// # Errors
    /// Fails like the in-memory transform (unknown photo, chain attempt,
    /// codec errors) or on filesystem errors.
    pub fn transform(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        self.server.transform(id, t)?;
        // Chains are rejected and concurrent double transforms refused, so
        // the bytes now stored are exactly this transform's output.
        let bytes = self.server.download(id)?;
        let params = self.server.download_params(id)?;
        let bytes_sha = sha256(&bytes);
        let params_sha = sha256(&params);
        self.note_io(write_segment(
            &self.segments,
            &bytes_sha,
            &bytes,
            self.fsync,
        ))?;
        self.note_io(write_segment(
            &self.segments,
            &params_sha,
            &params,
            self.fsync,
        ))?;
        self.append(&WalRecord::Transform {
            id: id.0,
            bytes_sha,
            params_sha,
        })?;
        Ok(())
    }

    /// Registers a receiver token for a DH public value (durable).
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn register_receiver(&self, dh_public: u128, token: [u8; 32]) -> Result<()> {
        // Like every grant-state mutation: WAL append under the grants
        // lock, so log order always matches in-memory order.
        let mut grants = self.grants.lock();
        self.append(&WalRecord::Receiver { dh_public, token })?;
        grants.tokens.insert(token, dh_public);
        Ok(())
    }

    /// The DH public value a token authenticates, if the token is known.
    pub fn receiver_for_token(&self, token: &[u8]) -> Option<u128> {
        let token: [u8; 32] = token.try_into().ok()?;
        self.grants.lock().tokens.get(&token).copied()
    }

    /// Deposits an end-to-end-encrypted grant in a receiver's mailbox
    /// (durable). The PSP never sees the plaintext.
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn deposit_grant(&self, receiver: u128, sender: u128, ciphertext: Vec<u8>) -> Result<()> {
        // The grants lock is held across the WAL append: if a deposit
        // could slip its record in between a concurrent drain's mailbox
        // removal and that drain's GrantDrain append, replay would order
        // the deposit *before* the drain and silently drop acknowledged
        // mail on recovery.
        let mut grants = self.grants.lock();
        self.append(&WalRecord::GrantDeposit {
            receiver,
            sender,
            ciphertext: ciphertext.clone(),
        })?;
        grants
            .mailboxes
            .entry(receiver)
            .or_default()
            .deposits
            .push((sender, ciphertext));
        Ok(())
    }

    /// Drains a receiver's mailbox: returns and removes every pending
    /// deposit (durable — the drain is logged so a restart does not
    /// resurrect fetched grants).
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn drain_grants(&self, receiver: u128) -> Result<Vec<(u128, Vec<u8>)>> {
        // Remove-and-log under one critical section (see deposit_grant
        // for why the lock must span the append).
        let mut grants = self.grants.lock();
        let pending = match grants.mailboxes.remove(&receiver) {
            Some(mb) if !mb.deposits.is_empty() => mb.deposits,
            _ => return Ok(Vec::new()),
        };
        if let Err(e) = self.append(&WalRecord::GrantDrain { receiver }) {
            // Logging failed: put the mail back so nothing is lost.
            grants.mailboxes.entry(receiver).or_default().deposits = pending;
            return Err(e);
        }
        Ok(pending)
    }

    /// Pending deposits for a receiver without draining (diagnostics).
    pub fn peek_grants(&self, receiver: u128) -> usize {
        self.grants
            .lock()
            .mailboxes
            .get(&receiver)
            .map_or(0, |m| m.deposits.len())
    }

    /// Forces the WAL to disk (graceful-shutdown path when per-append
    /// fsync is off).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn sync(&self) -> Result<()> {
        let r = self.wal.lock().sync().map_err(|e| io_err(e, "syncing wal"));
        self.note_io(r)
    }

    fn append(&self, record: &WalRecord) -> Result<()> {
        let r = self
            .wal
            .lock()
            .append(record)
            .map_err(|e| io_err(e, "appending wal"));
        self.note_io(r)
    }
}

/// Segment file path for a content hash.
fn segment_path(dir: &Path, hash: &[u8; 32]) -> PathBuf {
    use std::fmt::Write as _;
    let mut name = String::with_capacity(68);
    for b in hash {
        let _ = write!(name, "{b:02x}");
    }
    name.push_str(".seg");
    dir.join(name)
}

fn read_segment(dir: &Path, hash: &[u8; 32]) -> Result<Vec<u8>> {
    let path = segment_path(dir, hash);
    let bytes =
        fs::read(&path).map_err(|e| io_err(e, &format!("reading segment {}", path.display())))?;
    if sha256(&bytes) != *hash {
        return Err(PspError::Channel(format!(
            "segment {} fails its content hash",
            path.display()
        )));
    }
    Ok(bytes)
}

/// Writes a blob content-addressed: skip if present (identical content —
/// the address is SHA-256, so a differing file at the same name would be
/// a collision), else write to a temp name, fsync, rename into place.
/// Idempotent and crash-safe — a torn temp file is never referenced.
fn write_segment(dir: &Path, hash: &[u8; 32], bytes: &[u8], fsync: bool) -> Result<()> {
    let path = segment_path(dir, hash);
    if path.exists() {
        // Exact duplicate of a stored blob: the SHA-addressed segment is
        // shared, no new disk bytes. Counted so the dedup layer's savings
        // show up on /metrics alongside the in-memory interner's.
        puppies_obs::counted!("psp.sig.segment_shared");
        return Ok(());
    }
    let tmp = path.with_extension(format!(
        "tmp.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let write = || -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        if fsync {
            f.sync_data()?;
        }
        drop(f);
        fs::rename(&tmp, &path)?;
        Ok(())
    };
    write().map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(e, &format!("writing segment {}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write as _;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "puppies_disk_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path) -> DiskStore {
        DiskStore::open(dir, PspConfig::default(), false).unwrap()
    }

    #[test]
    fn upload_survives_reopen() {
        let dir = tmp("reopen");
        let (a, b);
        {
            let store = open(&dir);
            a = store.upload(vec![1, 2, 3, 4], vec![9, 9]).unwrap();
            b = store.upload(vec![5; 100], vec![]).unwrap();
        }
        let store = open(&dir);
        assert_eq!(store.recovery().records, 2);
        assert_eq!(store.recovery().photos, 2);
        assert_eq!(store.recovery().truncated_bytes, 0);
        assert_eq!(store.server().download(a).unwrap().as_ref(), &[1, 2, 3, 4]);
        assert_eq!(store.server().download(b).unwrap().as_ref(), &[5u8; 100]);
        assert_eq!(
            store.server().download_params(a).unwrap().as_ref(),
            &[9u8, 9]
        );
        // Ids keep allocating past the recovered range.
        let c = store.upload(vec![7], vec![]).unwrap();
        assert!(c > b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_loses_only_the_torn_record() {
        let dir = tmp("torn");
        {
            let store = open(&dir);
            store.upload(vec![1, 1, 1], vec![]).unwrap();
            store.upload(vec![2, 2, 2], vec![]).unwrap();
        }
        // Crash mid-append: garbage tail on the log.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&[0x77, 0x88]).unwrap();
        }
        let store = open(&dir);
        assert_eq!(store.recovery().truncated_bytes, 2);
        assert_eq!(store.recovery().photos, 2);
        assert_eq!(
            store.server().download(PhotoId(0)).unwrap().as_ref(),
            &[1, 1, 1]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transform_is_durable_and_replays_as_overwrite() {
        use puppies_core::{protect, OwnerKey, ProtectOptions};
        use puppies_image::{Rect, Rgb, RgbImage};
        let dir = tmp("transform");
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 2, y as u8, 3));
        let protected = protect(
            &img,
            &[Rect::new(8, 8, 16, 16)],
            &OwnerKey::from_seed([5u8; 32]),
            &ProtectOptions::default(),
        )
        .unwrap();
        let id;
        let after: Vec<u8>;
        {
            let store = open(&dir);
            id = store
                .upload(protected.bytes.clone(), protected.params.to_bytes())
                .unwrap();
            store.transform(id, &Transformation::Rotate180).unwrap();
            after = store.server().download(id).unwrap().to_vec();
            assert_ne!(after, protected.bytes);
        }
        let store = open(&dir);
        assert_eq!(store.recovery().records, 2);
        assert_eq!(store.recovery().photos, 1);
        assert_eq!(store.server().download(id).unwrap().as_ref(), &after[..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_content_shares_one_segment() {
        let dir = tmp("dedup");
        let store = open(&dir);
        store.upload(vec![42; 500], vec![7]).unwrap();
        store.upload(vec![42; 500], vec![7]).unwrap();
        let segs = fs::read_dir(dir.join("segments")).unwrap().count();
        assert_eq!(segs, 2, "bytes + params, each stored once");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn grant_mailbox_is_durable_and_drains_once() {
        let dir = tmp("grants");
        let token = *b"aaaabbbbccccddddeeeeffff00001111";
        {
            let store = open(&dir);
            store.register_receiver(1234, token).unwrap();
            store.deposit_grant(1234, 99, vec![1, 2, 3]).unwrap();
            store.deposit_grant(1234, 98, vec![4, 5]).unwrap();
            store.deposit_grant(5678, 99, vec![6]).unwrap();
        }
        {
            let store = open(&dir);
            assert_eq!(store.receiver_for_token(&token), Some(1234));
            assert_eq!(store.peek_grants(1234), 2);
            let got = store.drain_grants(1234).unwrap();
            assert_eq!(got, vec![(99, vec![1, 2, 3]), (98, vec![4, 5])]);
            assert!(store.drain_grants(1234).unwrap().is_empty());
        }
        // The drain was logged: a restart does not resurrect the mail.
        let store = open(&dir);
        assert_eq!(store.peek_grants(1234), 0);
        assert_eq!(store.peek_grants(5678), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_deposits_and_drains_replay_to_the_acknowledged_state() {
        // Regression probe for the deposit/drain WAL-ordering race: a
        // deposit acknowledged between a drain's mailbox removal and the
        // drain's WAL append would replay as deposit-then-drain and
        // vanish on recovery. With the append under the grants lock,
        // replay must land exactly on the pre-shutdown in-memory state.
        let dir = tmp("grant_race");
        let (drained, live) = {
            let store = std::sync::Arc::new(open(&dir));
            let mut writers = Vec::new();
            for t in 0..4u8 {
                let store = std::sync::Arc::clone(&store);
                writers.push(std::thread::spawn(move || {
                    for i in 0..50u8 {
                        store.deposit_grant(7, u128::from(t), vec![t, i]).unwrap();
                    }
                }));
            }
            let drainer = {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut drained = 0usize;
                    for _ in 0..200 {
                        drained += store.drain_grants(7).unwrap().len();
                        std::thread::yield_now();
                    }
                    drained
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            let drained = drainer.join().unwrap();
            (drained, store.peek_grants(7))
        };
        assert_eq!(drained + live, 200, "every deposit was acknowledged");
        let store = open(&dir);
        assert_eq!(store.peek_grants(7), live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_segment_detected_at_recovery() {
        let dir = tmp("tamper");
        {
            let store = open(&dir);
            store.upload(vec![9; 64], vec![]).unwrap();
        }
        // Corrupt the bitstream segment.
        let seg = fs::read_dir(dir.join("segments"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| fs::metadata(p).unwrap().len() == 64)
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&seg, bytes).unwrap();
        assert!(DiskStore::open(&dir, PspConfig::default(), false).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
