//! GF(2⁸) arithmetic for the Shamir layer: the AES field
//! (x⁸ + x⁴ + x³ + x + 1, reduction polynomial `0x11B`) with log/exp
//! tables built at compile time, so a multiply is two table loads and a
//! modular add — the per-byte cost the split/reconstruct throughput gate
//! in `bench psp --cluster` watches.
//!
//! [`mul_naive`] keeps the bitwise Russian-peasant product as the
//! reference implementation: the proptests pin `mul == mul_naive` over
//! the whole field, and the bench embeds a naive-splitter replica so the
//! table speedup is a machine-independent ratio.

/// The field's reduction polynomial, x⁸ + x⁴ + x³ + x + 1.
pub const POLY: u16 = 0x11B;

/// Generator used to build the tables (0x03 generates the full
/// multiplicative group of this field).
pub const GENERATOR: u8 = 0x03;

const fn build_tables() -> ([u8; 256], [u8; 256]) {
    let mut exp = [0u8; 256];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        // x *= GENERATOR (0x03), i.e. x ^ (x << 1), reduced mod POLY.
        let mut nx = x ^ (x << 1);
        if nx & 0x100 != 0 {
            nx ^= POLY;
        }
        x = nx;
        i += 1;
    }
    // exp[255] aliases exp[0] so `inv` can use `exp[255 - log]` without a
    // branch for log == 0.
    exp[255] = exp[0];
    (exp, log)
}

const TABLES: ([u8; 256], [u8; 256]) = build_tables();
/// `EXP[i]` = GENERATOR^i (with `EXP[255] == EXP[0] == 1`).
pub const EXP: [u8; 256] = TABLES.0;
/// `LOG[x]` = discrete log of `x` base GENERATOR (`LOG[0]` is unused).
pub const LOG: [u8; 256] = TABLES.1;

/// Field addition (== subtraction): XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Table-driven field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let s = LOG[a as usize] as usize + LOG[b as usize] as usize;
    EXP[if s >= 255 { s - 255 } else { s }]
}

/// Multiplicative inverse. `inv(0)` is undefined; this returns 0 so a
/// corrupted-input path cannot panic (callers validate first).
#[inline]
pub fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    EXP[255 - LOG[a as usize] as usize]
}

/// Field division `a / b` (returns 0 for `b == 0`; callers validate).
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation by squaring over the table logs.
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as u64 * e as u64) % 255;
    EXP[l as usize]
}

/// Bitwise reference multiplication (Russian peasant with modular
/// reduction) — the straw-man the table implementation is benchmarked
/// and differential-tested against.
pub fn mul_naive(a: u8, b: u8) -> u8 {
    let mut a = a as u16;
    let mut b = b as u16;
    let mut acc: u16 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= POLY;
        }
        b >>= 1;
    }
    acc as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_match_naive_over_whole_field() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_naive(a, b), "mul({a}, {b})");
            }
        }
    }

    #[test]
    fn multiplicative_inverses() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
        assert_eq!(inv(0), 0);
    }

    #[test]
    fn identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 0x53, 0xCA, 255] {
            let mut acc = 1u8;
            for e in 0..20u32 {
                assert_eq!(pow(a, e), acc, "a = {a}, e = {e}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn division_undoes_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // EXP must enumerate all 255 nonzero elements before wrapping.
        let mut seen = [false; 256];
        for &e in EXP[..255].iter() {
            assert!(!seen[e as usize], "generator order < 255");
            seen[e as usize] = true;
        }
        assert!(!seen[0], "0 is not in the multiplicative group");
    }
}
