//! Multi-backend PSP: k-of-n Shamir-shared storage (PuPPIeS-SIS).
//!
//! PUPPIES assumes one semi-honest PSP; if that party is compromised the
//! privacy argument collapses. [`ShardedPspCluster`] removes the single
//! point of trust the way P3 splits secret content away from the
//! provider, but thresholded: the *secret* material of each upload — the
//! serialized [`KeyGrant`] (private perturbation matrices) together with
//! the protected JPEG payload — is framed, Shamir-split over GF(2⁸)
//! ([`shamir`]), and one share is stored on each of `n` independent
//! simulated backends (each a full [`PspServer`]). Public parameters stay
//! public and are replicated. Any `k` backends reconstruct the upload
//! byte-exactly; any `k−1` learn nothing (information-theoretically — the
//! `puppies-attacks` leakage oracles measure this rather than assume it).
//!
//! Because the perturbed image itself is inside the split secret, a
//! cluster backend never sees even the perturbed pixels — strictly less
//! than the single-PSP threat model. The price, as with P3, is that
//! backends cannot apply server-side transformations; receivers
//! reconstruct and recover locally. DESIGN.md lays out the trade.
//!
//! Failure injection ([`fault`]) arms per-backend Kill/Corrupt/Delay
//! faults consulted on every share store/fetch, and
//! [`ShardedPspCluster::replace_backend`] + `rebalance` re-share with
//! fresh randomness under a bumped generation so replaced capacity heals
//! and stale shares can never be mixed into a fresh quorum.

pub mod fault;
pub mod gf256;
pub mod shamir;

use crate::sha256::sha256_concat;
use crate::store::{PhotoId, PspConfig, PspServer};
use crate::{PspError, Result};
use fault::{Fault, FaultOutcome, FaultPlan};
use parking_lot::RwLock;
use puppies_core::parallel;
use puppies_core::{KeyGrant, PublicParams};
use puppies_image::RgbImage;
use shamir::Share;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of an upload in the cluster (distinct from the per-backend
/// [`PhotoId`]s its shares map to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterPhotoId(pub u64);

/// Cluster shape and per-backend tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of backends (shares issued per upload), 1 ..= 255.
    pub n: usize,
    /// Reconstruction threshold, 1 ..= n.
    pub k: usize,
    /// Configuration applied to every simulated backend server.
    pub backend: PspConfig,
    /// Root seed for split randomness (per-upload seeds are derived by
    /// hashing this with the upload id, generation, and a nonce).
    pub seed: [u8; 32],
}

impl ClusterConfig {
    /// A (n, k) cluster with default backend tuning and a fixed seed.
    pub fn new(n: usize, k: usize) -> Self {
        ClusterConfig {
            n,
            k,
            backend: PspConfig::default(),
            seed: [0x5C; 32],
        }
    }

    /// Replaces the split-randomness seed.
    pub fn with_seed(mut self, seed: [u8; 32]) -> Self {
        self.seed = seed;
        self
    }
}

/// Book-keeping for one cluster upload.
#[derive(Debug)]
struct UploadMeta {
    /// Replicated public parameters (public by construction).
    params: std::sync::Arc<[u8]>,
    /// Current share generation; bumped by every rebalance.
    generation: u16,
    /// Per-backend photo id of the stored share (`None` = missing).
    slots: Vec<Option<PhotoId>>,
    /// SHA-256 of the framed secret, checked after reconstruction.
    secret_sha: [u8; 32],
}

/// A k-of-n cluster of simulated PSP backends with failure injection.
///
/// All methods take `&self`; internal state is lock-protected so tests
/// can drive uploads, faults, and rebalances from many threads.
pub struct ShardedPspCluster {
    config: ClusterConfig,
    backends: Vec<RwLock<PspServer>>,
    faults: FaultPlan,
    uploads: RwLock<HashMap<u64, UploadMeta>>,
    next_id: AtomicU64,
    split_nonce: AtomicU64,
}

impl std::fmt::Debug for ShardedPspCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPspCluster")
            .field("n", &self.config.n)
            .field("k", &self.config.k)
            .field("uploads", &self.uploads.read().len())
            .finish()
    }
}

fn cluster_err(msg: impl Into<String>) -> PspError {
    PspError::Cluster(msg.into())
}

/// Frames (grant, image bytes) into the secret buffer that gets split:
/// `len(grant) be32 ‖ grant ‖ len(bytes) be32 ‖ bytes`.
fn frame_secret(grant: &KeyGrant, bytes: &[u8]) -> Vec<u8> {
    let grant_bytes = crate::channel::encode_grant(grant);
    let mut out = Vec::with_capacity(8 + grant_bytes.len() + bytes.len());
    out.extend_from_slice(&(grant_bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(&grant_bytes);
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Inverse of [`frame_secret`].
fn unframe_secret(secret: &[u8]) -> Result<(KeyGrant, Vec<u8>)> {
    let take = |buf: &[u8]| -> Result<(Vec<u8>, usize)> {
        if buf.len() < 4 {
            return Err(cluster_err("reconstructed secret truncated"));
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return Err(cluster_err("reconstructed secret truncated"));
        }
        Ok((buf[4..4 + len].to_vec(), 4 + len))
    };
    let (grant_bytes, used) = take(secret)?;
    let (image_bytes, used2) = take(&secret[used..])?;
    if used + used2 != secret.len() {
        return Err(cluster_err("reconstructed secret has trailing bytes"));
    }
    let grant = crate::channel::decode_grant(&grant_bytes)?;
    Ok((grant, image_bytes))
}

impl ShardedPspCluster {
    /// Builds an (n, k) cluster of fresh backends.
    ///
    /// # Errors
    /// Fails on (n, k) outside 1 ≤ k ≤ n ≤ 255.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        if config.k == 0 || config.n == 0 || config.k > config.n || config.n > 255 {
            return Err(cluster_err(format!(
                "bad cluster shape (n = {}, k = {}): need 1 <= k <= n <= 255",
                config.n, config.k
            )));
        }
        let backends = (0..config.n)
            .map(|_| RwLock::new(PspServer::with_config(config.backend.clone())))
            .collect();
        Ok(ShardedPspCluster {
            faults: FaultPlan::healthy(config.n),
            backends,
            config,
            uploads: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            split_nonce: AtomicU64::new(0),
        })
    }

    /// Number of backends (n).
    pub fn backend_count(&self) -> usize {
        self.config.n
    }

    /// Reconstruction threshold (k).
    pub fn threshold(&self) -> usize {
        self.config.k
    }

    /// Number of uploads currently tracked.
    pub fn upload_count(&self) -> usize {
        self.uploads.read().len()
    }

    /// Arms a fault on one backend (test/chaos harness).
    pub fn fault(&self, backend: usize, fault: Fault) {
        self.faults.set(backend, fault);
    }

    /// Heals one backend's fault slot.
    pub fn clear_fault(&self, backend: usize) {
        self.faults.clear(backend);
    }

    /// Heals every backend.
    pub fn clear_faults(&self) {
        self.faults.clear_all();
    }

    /// Indices of backends currently armed with [`Fault::Kill`].
    pub fn dead_backends(&self) -> Vec<usize> {
        self.faults.dead_backends()
    }

    /// `(healthy, total, k)` — the readiness quorum summary the serving
    /// layer's `/readyz` probe wants (see `net::server::QuorumProbe`).
    pub fn quorum_status(&self) -> (usize, usize, usize) {
        let n = self.config.n;
        (n - self.faults.dead_backends().len(), n, self.config.k)
    }

    fn derive_split_seed(&self, id: u64, generation: u16) -> [u8; 32] {
        let nonce = self.split_nonce.fetch_add(1, Ordering::Relaxed);
        sha256_concat(&[
            b"puppies-sis-split-v1",
            &self.config.seed,
            &id.to_be_bytes(),
            &generation.to_be_bytes(),
            &nonce.to_be_bytes(),
        ])
    }

    /// Splits `secret` at `generation` and stores one share per backend,
    /// honoring armed faults. Returns the slot vector and how many
    /// shares were stored *healthily* (corrupting backends store mangled
    /// bytes, which cannot count toward a reconstruction quorum).
    fn store_shares(
        &self,
        id: u64,
        secret: &[u8],
        generation: u16,
        params: &[u8],
    ) -> Result<(Vec<Option<PhotoId>>, usize)> {
        let seed = self.derive_split_seed(id, generation);
        let shares = shamir::split(secret, self.config.n, self.config.k, generation, seed)
            .map_err(|e| cluster_err(e.to_string()))?;
        // Worker threads have their own span stacks, so each backend call
        // parents itself explicitly to keep the trace tree connected.
        let parent = puppies_obs::current_span_id();
        let stored = parallel::current().map_indexed(self.config.n, |i| {
            let _span = puppies_obs::span_with_parent("cluster.backend.store", "cluster", parent);
            let outcome = self.faults.apply(i);
            if outcome == FaultOutcome::Dead {
                return (None, false);
            }
            let mut wire = shares[i].to_bytes();
            let healthy = outcome == FaultOutcome::Healthy;
            if !healthy {
                // A corrupting backend mangles the share in flight; the
                // integrity tag turns this into a loud fetch-time reject.
                let mid = wire.len() / 2;
                wire[mid] ^= 0x01;
            }
            match self.backends[i].read().upload(wire, params.to_vec()) {
                Ok(pid) => (Some(pid), healthy),
                Err(_) => (None, false),
            }
        });
        let healthy_stores = stored.iter().filter(|(_, h)| *h).count();
        let slots = stored.into_iter().map(|(pid, _)| pid).collect();
        Ok((slots, healthy_stores))
    }

    /// Uploads a protected photo: frames (grant ‖ bytes) as the secret,
    /// splits it k-of-n, and stores one share per live backend. Public
    /// `params` are replicated. The upload is acknowledged only when at
    /// least k shares were stored on healthy backends — an ack therefore
    /// guarantees reconstructability.
    ///
    /// # Errors
    /// Fails when fewer than k backends accepted a clean share.
    pub fn upload(
        &self,
        bytes: Vec<u8>,
        params: Vec<u8>,
        grant: &KeyGrant,
    ) -> Result<ClusterPhotoId> {
        let _span = puppies_obs::span("cluster.upload", "psp");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let secret = frame_secret(grant, &bytes);
        let secret_sha = crate::sha256::sha256(&secret);
        let (slots, healthy) = self.store_shares(id, &secret, 0, &params)?;
        if healthy < self.config.k {
            puppies_obs::counted!("cluster.upload_rejected");
            return Err(cluster_err(format!(
                "quorum failed: {healthy} healthy share stores < k = {}",
                self.config.k
            )));
        }
        self.uploads.write().insert(
            id,
            UploadMeta {
                params: params.into(),
                generation: 0,
                slots,
                secret_sha,
            },
        );
        puppies_obs::counted!("cluster.uploads");
        Ok(ClusterPhotoId(id))
    }

    /// Replicated public parameters for an upload (no backend round-trip
    /// — params are public and cluster-held).
    ///
    /// # Errors
    /// Fails on unknown ids.
    pub fn download_params(&self, id: ClusterPhotoId) -> Result<std::sync::Arc<[u8]>> {
        self.uploads
            .read()
            .get(&id.0)
            .map(|m| m.params.clone())
            .ok_or_else(|| cluster_err(format!("unknown cluster photo {}", id.0)))
    }

    /// Fetches the current-generation share held by `backend` for `id`,
    /// honoring armed faults. `Ok(None)` means the backend has no usable
    /// share (dead, empty slot, corrupted, or stale generation).
    fn fetch_share(&self, id: u64, backend: usize, generation: u16) -> Option<Share> {
        let meta_slot = {
            let uploads = self.uploads.read();
            uploads.get(&id)?.slots.get(backend).copied().flatten()
        };
        let pid = meta_slot?;
        let outcome = self.faults.apply(backend);
        if outcome == FaultOutcome::Dead {
            return None;
        }
        let wire = self.backends[backend].read().download(pid).ok()?;
        let mut wire = wire.to_vec();
        if outcome == FaultOutcome::Corrupting {
            let mid = wire.len() / 2;
            wire[mid] ^= 0x01;
        }
        let share = Share::from_bytes(&wire).ok()?;
        // Tag verification rejects corrupted shares; the generation check
        // rejects stale shares surviving on a backend that missed a
        // rebalance. Both look like "no share" to the quorum count.
        if !share.verify() || share.generation != generation {
            puppies_obs::counted!("cluster.share_rejected");
            return None;
        }
        Some(share)
    }

    /// Reconstructs the framed secret from the given backend subset,
    /// verifying the stored SHA-256 before returning.
    fn reconstruct_secret(&self, id: ClusterPhotoId, subset: &[usize]) -> Result<Vec<u8>> {
        let (generation, secret_sha) = {
            let uploads = self.uploads.read();
            let meta = uploads
                .get(&id.0)
                .ok_or_else(|| cluster_err(format!("unknown cluster photo {}", id.0)))?;
            (meta.generation, meta.secret_sha)
        };
        let parent = puppies_obs::current_span_id();
        let shares: Vec<Share> = parallel::current()
            .map_indexed(subset.len(), |j| {
                let _span =
                    puppies_obs::span_with_parent("cluster.backend.fetch", "cluster", parent);
                let b = subset[j];
                if b >= self.config.n {
                    return None;
                }
                self.fetch_share(id.0, b, generation)
            })
            .into_iter()
            .flatten()
            .collect();
        if shares.len() < self.config.k {
            return Err(cluster_err(format!(
                "only {} usable shares from {} backends, need k = {}",
                shares.len(),
                subset.len(),
                self.config.k
            )));
        }
        let secret = shamir::reconstruct(&shares).map_err(|e| cluster_err(e.to_string()))?;
        if crate::sha256::sha256(&secret) != secret_sha {
            return Err(cluster_err("reconstructed secret failed its digest"));
        }
        Ok(secret)
    }

    /// Reconstructs (grant, protected bytes) using every live backend.
    ///
    /// # Errors
    /// Fails when fewer than k usable shares are reachable.
    pub fn reconstruct(&self, id: ClusterPhotoId) -> Result<(KeyGrant, Vec<u8>)> {
        let all: Vec<usize> = (0..self.config.n).collect();
        self.reconstruct_from(id, &all)
    }

    /// Reconstructs (grant, protected bytes) from an explicit backend
    /// subset — the conformance oracle drives every k-subset through
    /// this.
    ///
    /// # Errors
    /// Fails when the subset yields fewer than k usable shares.
    pub fn reconstruct_from(
        &self,
        id: ClusterPhotoId,
        subset: &[usize],
    ) -> Result<(KeyGrant, Vec<u8>)> {
        let _span = puppies_obs::span("cluster.reconstruct", "psp");
        let secret = self.reconstruct_secret(id, subset)?;
        unframe_secret(&secret)
    }

    /// Full receiver path: reconstruct from any k live backends, then
    /// recover locally through the reconstructed matrices (cluster
    /// backends cannot transform — see the module docs).
    ///
    /// # Errors
    /// Fails on quorum loss or undecodable reconstruction.
    pub fn fetch(&self, id: ClusterPhotoId) -> Result<RgbImage> {
        let (grant, bytes) = self.reconstruct(id)?;
        let params = PublicParams::from_bytes(&self.download_params(id)?)?;
        Ok(puppies_core::shadow::recover_transformed(
            &bytes, &params, &grant,
        )?)
    }

    /// Swaps backend `i` for a fresh, empty server (simulating a node
    /// replacement), clearing its fault slot and voiding its share slot
    /// in every upload. Until [`Self::rebalance_all`] runs, uploads
    /// tolerate one fewer failure.
    pub fn replace_backend(&self, i: usize) -> Result<()> {
        if i >= self.config.n {
            return Err(cluster_err(format!("no backend {i}")));
        }
        *self.backends[i].write() = PspServer::with_config(self.config.backend.clone());
        self.faults.clear(i);
        let mut uploads = self.uploads.write();
        for meta in uploads.values_mut() {
            meta.slots[i] = None;
        }
        puppies_obs::counted!("cluster.backend_replaced");
        Ok(())
    }

    /// Re-shares one upload: reconstructs the secret from the current
    /// quorum, splits it again with fresh randomness under generation+1,
    /// and stores the new shares on every live backend. Stale shares of
    /// the old generation are rejected by the generation check wherever
    /// they survive.
    ///
    /// # Errors
    /// Fails when the current quorum cannot reconstruct, or fewer than k
    /// healthy backends accept the new shares.
    pub fn rebalance(&self, id: ClusterPhotoId) -> Result<()> {
        let _span = puppies_obs::span("cluster.rebalance", "psp");
        let secret = {
            let all: Vec<usize> = (0..self.config.n).collect();
            self.reconstruct_secret(id, &all)?
        };
        let (generation, params) = {
            let uploads = self.uploads.read();
            let meta = uploads
                .get(&id.0)
                .ok_or_else(|| cluster_err(format!("unknown cluster photo {}", id.0)))?;
            let next = meta
                .generation
                .checked_add(1)
                .ok_or_else(|| cluster_err("re-share generation exhausted (u16 wrapped)"))?;
            (next, meta.params.clone())
        };
        let (slots, healthy) = self.store_shares(id.0, &secret, generation, &params)?;
        if healthy < self.config.k {
            return Err(cluster_err(format!(
                "rebalance quorum failed: {healthy} healthy share stores < k = {}",
                self.config.k
            )));
        }
        let mut uploads = self.uploads.write();
        let meta = uploads
            .get_mut(&id.0)
            .ok_or_else(|| cluster_err(format!("unknown cluster photo {}", id.0)))?;
        meta.generation = generation;
        meta.slots = slots;
        puppies_obs::counted!("cluster.rebalances");
        Ok(())
    }

    /// Rebalances every tracked upload; returns how many succeeded.
    ///
    /// # Errors
    /// Fails on the first upload whose quorum cannot reconstruct.
    pub fn rebalance_all(&self) -> Result<usize> {
        let ids: Vec<u64> = {
            let mut v: Vec<u64> = self.uploads.read().keys().copied().collect();
            v.sort_unstable();
            v
        };
        for id in &ids {
            self.rebalance(ClusterPhotoId(*id))?;
        }
        Ok(ids.len())
    }

    /// Raw current-generation shares reachable for an upload, keyed by
    /// backend index — the attacks crate builds its (k−1)-subset leakage
    /// probes from this view.
    ///
    /// # Errors
    /// Fails on unknown ids.
    pub fn visible_shares(&self, id: ClusterPhotoId) -> Result<Vec<(usize, Share)>> {
        let generation = {
            let uploads = self.uploads.read();
            uploads
                .get(&id.0)
                .ok_or_else(|| cluster_err(format!("unknown cluster photo {}", id.0)))?
                .generation
        };
        Ok((0..self.config.n)
            .filter_map(|b| self.fetch_share(id.0, b, generation).map(|s| (b, s)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::OwnerKey;

    fn grant() -> KeyGrant {
        OwnerKey::from_seed([9u8; 32]).grant_rois(1, &[0])
    }

    fn cluster(n: usize, k: usize) -> ShardedPspCluster {
        let mut cfg = ClusterConfig::new(n, k);
        cfg.backend = PspConfig::uncached();
        ShardedPspCluster::new(cfg).unwrap()
    }

    #[test]
    fn upload_reconstruct_roundtrip() {
        let c = cluster(5, 3);
        let bytes = vec![7u8; 512];
        let id = c.upload(bytes.clone(), vec![1, 2, 3], &grant()).unwrap();
        let (g, back) = c.reconstruct(id).unwrap();
        assert_eq!(back, bytes);
        assert_eq!(g.to_entries(), grant().to_entries());
        assert_eq!(&*c.download_params(id).unwrap(), &[1, 2, 3][..]);
    }

    #[test]
    fn survives_n_minus_k_kills() {
        let c = cluster(5, 3);
        let id = c.upload(vec![42u8; 256], vec![], &grant()).unwrap();
        c.fault(0, Fault::Kill);
        c.fault(3, Fault::Corrupt);
        let (_, back) = c.reconstruct(id).unwrap();
        assert_eq!(back, vec![42u8; 256]);
    }

    #[test]
    fn loses_quorum_below_k() {
        let c = cluster(3, 2);
        let id = c.upload(vec![1u8; 64], vec![], &grant()).unwrap();
        c.fault(0, Fault::Kill);
        c.fault(1, Fault::Kill);
        assert!(c.reconstruct(id).is_err());
        c.clear_fault(1);
        assert!(c.reconstruct(id).is_ok());
    }

    #[test]
    fn upload_not_acknowledged_without_quorum() {
        let c = cluster(3, 2);
        c.fault(0, Fault::Kill);
        c.fault(1, Fault::Kill);
        assert!(c.upload(vec![5u8; 32], vec![], &grant()).is_err());
        assert_eq!(c.upload_count(), 0);
    }

    #[test]
    fn replace_and_rebalance_restores_tolerance() {
        let c = cluster(4, 2);
        let id = c.upload(vec![0xAB; 300], vec![], &grant()).unwrap();
        c.fault(1, Fault::Kill);
        c.replace_backend(2).unwrap();
        // Down to backends {0, 3} holding generation-0 shares: exactly k.
        assert_eq!(c.visible_shares(id).unwrap().len(), 2);
        c.rebalance_all().unwrap();
        // Rebalance restored shares on every live backend (1 is dead).
        assert_eq!(c.visible_shares(id).unwrap().len(), 3);
        // Now a further loss is tolerated again.
        c.fault(3, Fault::Kill);
        let (_, back) = c.reconstruct(id).unwrap();
        assert_eq!(back, vec![0xAB; 300]);
    }

    #[test]
    fn stale_generation_shares_are_rejected() {
        let c = cluster(3, 2);
        let id = c.upload(vec![0x11; 100], vec![], &grant()).unwrap();
        // Backend 0 sleeps through the rebalance (Kill), so it keeps only
        // its stale generation-0 share.
        c.fault(0, Fault::Kill);
        c.rebalance(id).unwrap();
        c.clear_fault(0);
        let shares = c.visible_shares(id).unwrap();
        assert!(
            shares.iter().all(|(b, _)| *b != 0),
            "backend 0's stale share must not be visible"
        );
        let (_, back) = c.reconstruct(id).unwrap();
        assert_eq!(back, vec![0x11; 100]);
    }

    #[test]
    fn delay_fault_slows_but_serves() {
        let c = cluster(3, 2);
        let id = c.upload(vec![0x22; 50], vec![], &grant()).unwrap();
        c.fault(1, Fault::Delay(1));
        let (_, back) = c.reconstruct(id).unwrap();
        assert_eq!(back, vec![0x22; 50]);
    }

    #[test]
    fn bad_shapes_rejected() {
        assert!(ShardedPspCluster::new(ClusterConfig::new(2, 3)).is_err());
        assert!(ShardedPspCluster::new(ClusterConfig::new(0, 0)).is_err());
        assert!(ShardedPspCluster::new(ClusterConfig::new(256, 2)).is_err());
    }
}
