//! Per-backend failure injection for the cluster, mirroring the PR 6
//! service gate's kill -9 discipline in-process: a [`FaultPlan`] holds
//! one optional [`Fault`] slot per backend, consulted on every
//! share-store and share-fetch. Tests arm faults mid-workload and the
//! cluster's oracles assert that acknowledged uploads still reconstruct
//! byte-identically as long as ≤ n−k backends are down.

use parking_lot::Mutex;
use std::time::Duration;

/// What a faulty backend does on its next operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The backend is dead: every store/fetch against it errors.
    Kill,
    /// The backend serves its share with bytes flipped (caught by the
    /// share integrity tag — a corrupting backend must look like a dead
    /// one to the reconstructor, never like a healthy one).
    Corrupt,
    /// The backend answers after sleeping this many milliseconds
    /// (exercises the fetch path's tolerance of slow quorum members).
    Delay(u64),
}

/// One fault slot per backend; `None` means healthy.
#[derive(Debug)]
pub struct FaultPlan {
    slots: Vec<Mutex<Option<Fault>>>,
}

impl FaultPlan {
    /// A plan with `n` healthy backends.
    pub fn healthy(n: usize) -> Self {
        FaultPlan {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of backend slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the plan has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Arms `fault` on `backend` (replacing any existing fault).
    ///
    /// # Panics
    /// Panics if `backend` is out of range — faults are a test-harness
    /// construct and a bad index is harness misuse.
    pub fn set(&self, backend: usize, fault: Fault) {
        *self.slots[backend].lock() = Some(fault);
    }

    /// Heals `backend`.
    pub fn clear(&self, backend: usize) {
        *self.slots[backend].lock() = None;
    }

    /// Heals every backend.
    pub fn clear_all(&self) {
        for slot in &self.slots {
            *slot.lock() = None;
        }
    }

    /// The currently armed fault for `backend`, if any.
    pub fn get(&self, backend: usize) -> Option<Fault> {
        *self.slots[backend].lock()
    }

    /// Applies the armed fault to an operation against `backend`:
    /// sleeps through `Delay` then reports the backend usable, reports
    /// `Kill` as unusable, and hands `Corrupt` back for the caller to
    /// mangle the share bytes (stores ignore it; fetches flip bits so
    /// the tag check fires).
    pub fn apply(&self, backend: usize) -> FaultOutcome {
        match self.get(backend) {
            None => FaultOutcome::Healthy,
            Some(Fault::Kill) => FaultOutcome::Dead,
            Some(Fault::Corrupt) => FaultOutcome::Corrupting,
            Some(Fault::Delay(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                FaultOutcome::Healthy
            }
        }
    }

    /// Indices of backends currently armed with `Kill`.
    pub fn dead_backends(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.get(i) == Some(Fault::Kill))
            .collect()
    }
}

/// Result of consulting the plan for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Proceed normally (any delay already served).
    Healthy,
    /// The backend must error.
    Dead,
    /// The backend serves, but the caller corrupts the bytes in flight.
    Corrupting,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_clear_cycle() {
        let plan = FaultPlan::healthy(3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.apply(1), FaultOutcome::Healthy);
        plan.set(1, Fault::Kill);
        assert_eq!(plan.apply(1), FaultOutcome::Dead);
        assert_eq!(plan.dead_backends(), vec![1]);
        plan.set(2, Fault::Corrupt);
        assert_eq!(plan.apply(2), FaultOutcome::Corrupting);
        plan.clear(1);
        assert_eq!(plan.apply(1), FaultOutcome::Healthy);
        plan.clear_all();
        assert_eq!(plan.apply(2), FaultOutcome::Healthy);
        assert!(plan.dead_backends().is_empty());
    }

    #[test]
    fn delay_serves_after_sleeping() {
        let plan = FaultPlan::healthy(1);
        plan.set(0, Fault::Delay(1));
        let t0 = std::time::Instant::now();
        assert_eq!(plan.apply(0), FaultOutcome::Healthy);
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }
}
