//! Byte-wise Shamir secret sharing over GF(2⁸).
//!
//! Each secret byte `s` becomes the constant term of an independent
//! random polynomial `p(x) = s + c₁x + … + c_{k−1}x^{k−1}` with
//! coefficients drawn from a ChaCha20 stream; share `i` (x-coordinate
//! `i`, 1-based so x = 0 never leaks the secret) stores `p(i)` for every
//! byte position. Any `k` distinct shares reconstruct `s` by Lagrange
//! interpolation at x = 0; any `k−1` shares are jointly uniform over the
//! payload space — the property the `puppies-attacks` leakage oracles
//! measure instead of assuming.
//!
//! Shares carry a self-describing header (index, threshold, total,
//! generation) plus a SHA-256 integrity tag over a domain string, the
//! header, and the payload, so a corrupted or spliced share is rejected
//! before it can poison interpolation. `generation` is bumped by the
//! cluster's re-share protocol so a stale share from a replaced backend
//! cannot be mixed with fresh ones (fresh randomness ⇒ mixing epochs
//! reconstructs garbage; the tag makes that failure loud instead).

use super::gf256;
use crate::sha256::{ct_eq, sha256_concat};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::fmt;

/// Domain-separation prefix for share integrity tags.
const TAG_DOMAIN: &[u8] = b"puppies-sis-share-v1";
/// Magic prefix for the share wire encoding.
const SHARE_MAGIC: &[u8; 4] = b"PSH1";

/// Errors from the Shamir layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShamirError {
    /// (n, k) outside 1 ≤ k ≤ n ≤ 255.
    BadParameters { n: usize, k: usize },
    /// Fewer valid, distinct shares than the threshold requires.
    NotEnoughShares { have: usize, need: usize },
    /// A share failed its integrity tag (index recorded).
    BadTag { index: u8 },
    /// Shares disagree on header fields (length, threshold, generation).
    Inconsistent(String),
    /// A serialized share could not be decoded.
    Malformed(String),
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::BadParameters { n, k } => {
                write!(f, "bad (n, k) = ({n}, {k}): need 1 <= k <= n <= 255")
            }
            ShamirError::NotEnoughShares { have, need } => {
                write!(f, "not enough valid shares: have {have}, need {need}")
            }
            ShamirError::BadTag { index } => {
                write!(f, "share {index} failed its integrity tag")
            }
            ShamirError::Inconsistent(m) => write!(f, "inconsistent share set: {m}"),
            ShamirError::Malformed(m) => write!(f, "malformed share: {m}"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// One share of a split secret. `index` is the GF(256) x-coordinate
/// (1-based); `payload[j]` is the polynomial for secret byte `j`
/// evaluated at `index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// x-coordinate, in `1..=total`.
    pub index: u8,
    /// Reconstruction threshold k.
    pub threshold: u8,
    /// Total shares n issued in this generation.
    pub total: u8,
    /// Re-share epoch; mixing generations is rejected.
    pub generation: u16,
    /// Per-byte polynomial evaluations.
    pub payload: Vec<u8>,
    /// SHA-256 over domain ‖ header ‖ payload.
    pub tag: [u8; 32],
}

fn share_tag(index: u8, threshold: u8, total: u8, generation: u16, payload: &[u8]) -> [u8; 32] {
    let header = [
        index,
        threshold,
        total,
        (generation >> 8) as u8,
        generation as u8,
    ];
    sha256_concat(&[TAG_DOMAIN, &header, payload])
}

impl Share {
    /// Builds a share with a freshly computed integrity tag. The tag is
    /// a public function of the header and payload (it authenticates
    /// *integrity*, not origin), so anyone — including an adversary
    /// hypothesizing a missing share — can construct a verifying share;
    /// what they cannot do is make k−1 real shares constrain the secret.
    pub fn new(index: u8, threshold: u8, total: u8, generation: u16, payload: Vec<u8>) -> Share {
        let tag = share_tag(index, threshold, total, generation, &payload);
        Share {
            index,
            threshold,
            total,
            generation,
            payload,
            tag,
        }
    }

    /// True when the integrity tag matches the header + payload
    /// (constant-time compare).
    pub fn verify(&self) -> bool {
        let want = share_tag(
            self.index,
            self.threshold,
            self.total,
            self.generation,
            &self.payload,
        );
        ct_eq(&want, &self.tag)
    }

    /// Serializes to the `PSH1` wire form:
    /// magic ‖ index ‖ k ‖ n ‖ generation(be16) ‖ len(be32) ‖ payload ‖ tag.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 5 + 4 + self.payload.len() + 32);
        out.extend_from_slice(SHARE_MAGIC);
        out.push(self.index);
        out.push(self.threshold);
        out.push(self.total);
        out.extend_from_slice(&self.generation.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses the `PSH1` wire form. Does not verify the tag — callers
    /// decide whether to [`Share::verify`] (reconstruct always does).
    pub fn from_bytes(bytes: &[u8]) -> Result<Share, ShamirError> {
        let err = |m: &str| ShamirError::Malformed(m.to_string());
        if bytes.len() < 4 + 5 + 4 + 32 {
            return Err(err("truncated header"));
        }
        if &bytes[..4] != SHARE_MAGIC {
            return Err(err("bad magic"));
        }
        let index = bytes[4];
        let threshold = bytes[5];
        let total = bytes[6];
        let generation = u16::from_be_bytes([bytes[7], bytes[8]]);
        let len = u32::from_be_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]) as usize;
        let body = &bytes[13..];
        if body.len() != len + 32 {
            return Err(err("length field does not match body"));
        }
        let payload = body[..len].to_vec();
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&body[len..]);
        Ok(Share {
            index,
            threshold,
            total,
            generation,
            payload,
            tag,
        })
    }
}

/// Splits `secret` into `n` shares with threshold `k` at `generation`,
/// drawing polynomial coefficients from ChaCha20 seeded with `seed`.
///
/// # Errors
/// Fails on (n, k) outside 1 ≤ k ≤ n ≤ 255.
pub fn split(
    secret: &[u8],
    n: usize,
    k: usize,
    generation: u16,
    seed: [u8; 32],
) -> Result<Vec<Share>, ShamirError> {
    split_with(secret, n, k, generation, seed, gf256::mul)
}

/// [`split`] parameterised over the field multiplier so the bench can
/// run the identical algorithm over [`gf256::mul_naive`] and report a
/// machine-independent table-vs-naive ratio.
pub fn split_with(
    secret: &[u8],
    n: usize,
    k: usize,
    generation: u16,
    seed: [u8; 32],
    mul: fn(u8, u8) -> u8,
) -> Result<Vec<Share>, ShamirError> {
    if k == 0 || n == 0 || k > n || n > 255 {
        return Err(ShamirError::BadParameters { n, k });
    }
    let mut rng = ChaCha20Rng::from_seed(seed);
    // coeffs[d] holds the degree-(d+1) coefficient for every byte
    // position; the constant term is the secret itself.
    let mut coeffs: Vec<Vec<u8>> = Vec::with_capacity(k - 1);
    for _ in 1..k {
        let mut row = vec![0u8; secret.len()];
        rng.fill_bytes(&mut row);
        coeffs.push(row);
    }
    let mut shares = Vec::with_capacity(n);
    for i in 1..=n {
        let x = i as u8;
        // Horner over the degree axis: p(x) = s + x(c₁ + x(c₂ + …)).
        let mut payload = coeffs.last().cloned().unwrap_or_else(|| secret.to_vec());
        if !coeffs.is_empty() {
            for row in coeffs.iter().rev().skip(1) {
                for (acc, &c) in payload.iter_mut().zip(row.iter()) {
                    *acc = mul(*acc, x) ^ c;
                }
            }
            for (acc, &s) in payload.iter_mut().zip(secret.iter()) {
                *acc = mul(*acc, x) ^ s;
            }
        }
        let tag = share_tag(x, k as u8, n as u8, generation, &payload);
        shares.push(Share {
            index: x,
            threshold: k as u8,
            total: n as u8,
            generation,
            payload,
            tag,
        });
    }
    Ok(shares)
}

/// Reconstructs the secret from any ≥ k shares of one generation.
///
/// Every share is tag-verified first; duplicates (same index) beyond the
/// first are ignored; mixed generations or mismatched headers are
/// rejected rather than silently interpolated.
///
/// # Errors
/// Fails on a bad tag, inconsistent headers, or fewer than k distinct
/// valid shares.
pub fn reconstruct(shares: &[Share]) -> Result<Vec<u8>, ShamirError> {
    reconstruct_with(shares, gf256::mul)
}

/// [`reconstruct`] parameterised over the field multiplier (see
/// [`split_with`]).
pub fn reconstruct_with(shares: &[Share], mul: fn(u8, u8) -> u8) -> Result<Vec<u8>, ShamirError> {
    let first = shares
        .first()
        .ok_or(ShamirError::NotEnoughShares { have: 0, need: 1 })?;
    let k = first.threshold as usize;
    // Strict pass over EVERY supplied share first: a corrupt or
    // inconsistent share anywhere in the set is rejected even when a
    // clean quorum exists — silently dropping it would let a corrupting
    // backend hide inside an otherwise-healthy fetch.
    for share in shares {
        if !share.verify() {
            return Err(ShamirError::BadTag { index: share.index });
        }
        if share.threshold != first.threshold
            || share.total != first.total
            || share.generation != first.generation
            || share.payload.len() != first.payload.len()
        {
            return Err(ShamirError::Inconsistent(format!(
                "share {} disagrees with share {} on header/length",
                share.index, first.index
            )));
        }
        if share.index == 0 || share.index > first.total {
            return Err(ShamirError::Inconsistent(format!(
                "share index {} outside 1..={}",
                share.index, first.total
            )));
        }
    }
    let mut picked: Vec<&Share> = Vec::with_capacity(k);
    for share in shares {
        if picked.iter().all(|p| p.index != share.index) {
            picked.push(share);
        }
        if picked.len() == k {
            break;
        }
    }
    if picked.len() < k {
        return Err(ShamirError::NotEnoughShares {
            have: picked.len(),
            need: k,
        });
    }

    // Lagrange basis at x = 0: wᵢ = Π_{j≠i} xⱼ / (xⱼ − xᵢ). In GF(2⁸)
    // subtraction is XOR, so the denominator is xⱼ ^ xᵢ (nonzero because
    // indices are distinct). Weights are computed once, then applied
    // per byte.
    let mut weights = Vec::with_capacity(k);
    for (i, si) in picked.iter().enumerate() {
        let mut num = 1u8;
        let mut den = 1u8;
        for (j, sj) in picked.iter().enumerate() {
            if i == j {
                continue;
            }
            num = mul(num, sj.index);
            den = mul(den, sj.index ^ si.index);
        }
        weights.push(mul(num, gf256::inv(den)));
    }

    let len = first.payload.len();
    let mut secret = vec![0u8; len];
    for (w, share) in weights.iter().zip(picked.iter()) {
        for (out, &b) in secret.iter_mut().zip(share.payload.iter()) {
            *out ^= mul(*w, b);
        }
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(tag: u8) -> [u8; 32] {
        let mut s = [0u8; 32];
        s[0] = tag;
        s[31] = 0xA5;
        s
    }

    #[test]
    fn roundtrip_all_k_subsets_3_of_5() {
        let secret = b"private perturbation matrices".to_vec();
        let shares = split(&secret, 5, 3, 0, seed(1)).unwrap();
        assert_eq!(shares.len(), 5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a].clone(), shares[b].clone(), shares[c].clone()];
                    assert_eq!(reconstruct(&subset).unwrap(), secret, "{a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn k_minus_one_shares_fail_loudly() {
        let shares = split(b"secret", 4, 3, 0, seed(2)).unwrap();
        let err = reconstruct(&shares[..2]).unwrap_err();
        assert_eq!(err, ShamirError::NotEnoughShares { have: 2, need: 3 });
    }

    #[test]
    fn duplicate_indices_do_not_satisfy_threshold() {
        let shares = split(b"secret", 4, 3, 0, seed(3)).unwrap();
        let dupes = [shares[0].clone(), shares[0].clone(), shares[1].clone()];
        let err = reconstruct(&dupes).unwrap_err();
        assert_eq!(err, ShamirError::NotEnoughShares { have: 2, need: 3 });
    }

    #[test]
    fn corrupted_payload_is_rejected_by_tag() {
        let mut shares = split(b"integrity matters", 3, 2, 0, seed(4)).unwrap();
        shares[1].payload[0] ^= 0x40;
        let err = reconstruct(&shares).unwrap_err();
        assert_eq!(err, ShamirError::BadTag { index: 2 });
    }

    #[test]
    fn mixed_generations_are_rejected() {
        let g0 = split(b"epoch secret", 3, 2, 0, seed(5)).unwrap();
        let g1 = split(b"epoch secret", 3, 2, 1, seed(6)).unwrap();
        let mixed = [g0[0].clone(), g1[1].clone()];
        assert!(matches!(
            reconstruct(&mixed).unwrap_err(),
            ShamirError::Inconsistent(_)
        ));
    }

    #[test]
    fn k_equals_one_replicates() {
        let shares = split(b"public", 3, 1, 0, seed(7)).unwrap();
        for s in &shares {
            assert_eq!(s.payload, b"public");
            assert_eq!(reconstruct(std::slice::from_ref(s)).unwrap(), b"public");
        }
    }

    #[test]
    fn empty_secret_roundtrips() {
        let shares = split(&[], 3, 2, 0, seed(8)).unwrap();
        assert_eq!(reconstruct(&shares[1..]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wire_roundtrip() {
        let shares = split(b"wire form", 3, 2, 7, seed(9)).unwrap();
        for s in &shares {
            let back = Share::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(&back, s);
            assert!(back.verify());
        }
    }

    #[test]
    fn wire_rejects_truncation_and_bad_magic() {
        let bytes = split(b"x", 2, 2, 0, seed(10)).unwrap()[0].to_bytes();
        assert!(Share::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'Q';
        assert!(Share::from_bytes(&bad).is_err());
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(split(b"s", 0, 0, 0, seed(11)).is_err());
        assert!(split(b"s", 2, 3, 0, seed(11)).is_err());
        assert!(split(b"s", 256, 2, 0, seed(11)).is_err());
    }

    #[test]
    fn naive_field_reconstructs_table_split() {
        let secret = b"cross-implementation".to_vec();
        let shares = split_with(&secret, 5, 3, 0, seed(12), gf256::mul_naive).unwrap();
        assert_eq!(reconstruct_with(&shares[2..], gf256::mul).unwrap(), secret);
        assert_eq!(reconstruct(&shares[..3]).unwrap(), secret);
    }
}
