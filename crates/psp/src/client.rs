//! Sender and receiver clients wrapping the `puppies-core` pipeline
//! against a [`PspServer`].

use crate::store::{PhotoId, PspServer};
use crate::Result;
use puppies_core::{protect, KeyGrant, OwnerKey, ProtectOptions, PublicParams};
use puppies_image::{Rect, RgbImage};
use puppies_vision::detect::{recommend_rois, RecommendParams};

/// An image owner: holds the root key, picks ROIs (manually or via the
/// recommender), perturbs and uploads.
#[derive(Debug)]
pub struct Sender {
    key: OwnerKey,
    next_image_id: u64,
}

impl Sender {
    /// Creates a sender from its root key.
    pub fn new(key: OwnerKey) -> Sender {
        Sender {
            key,
            next_image_id: 1,
        }
    }

    /// Runs the §IV-A recommendation pipeline (face + text + objectness,
    /// merged and split into disjoint rectangles) to propose ROIs.
    pub fn recommend_rois(&self, img: &RgbImage) -> Vec<Rect> {
        recommend_rois(img, &RecommendParams::default()).regions
    }

    /// Personalized variant: filters the recommendation through the
    /// owner's learned preference model (§IV-A's logging extension).
    pub fn recommend_rois_personalized(
        &self,
        img: &RgbImage,
        model: &puppies_vision::PreferenceModel,
    ) -> Vec<Rect> {
        let rec = recommend_rois(img, &RecommendParams::default());
        model.personalize(&rec, 0.5).regions
    }

    /// Protects `rois` of `img` and uploads to the server; returns the
    /// photo id and the image id the keys are scoped to.
    ///
    /// # Errors
    /// Fails on invalid ROIs or encoding failure.
    pub fn share(
        &mut self,
        server: &PspServer,
        img: &RgbImage,
        rois: &[Rect],
        opts: &ProtectOptions,
    ) -> Result<(PhotoId, u64)> {
        let image_id = self.next_image_id;
        self.next_image_id += 1;
        let opts = opts.clone().with_image_id(image_id);
        let protected = protect(img, rois, &self.key, &opts)?;
        let photo = server.upload(protected.bytes, protected.params.to_bytes())?;
        Ok((photo, image_id))
    }

    /// Grants a receiver the matrices for specific regions of an image
    /// (to be transported over a secure channel).
    pub fn grant(&self, image_id: u64, rois: &[u16]) -> KeyGrant {
        self.key.grant_rois(image_id, rois)
    }

    /// The owner's all-region grant (for the owner's own devices).
    pub fn owner_grant(&self) -> KeyGrant {
        self.key.grant_all()
    }
}

/// A receiver: downloads a photo and recovers whatever regions its grant
/// covers.
#[derive(Debug)]
pub struct Receiver {
    grant: KeyGrant,
}

impl Default for Receiver {
    fn default() -> Self {
        Receiver::new()
    }
}

impl Receiver {
    /// Creates a receiver with no keys (sees only perturbed regions).
    pub fn new() -> Receiver {
        Receiver {
            grant: KeyGrant::empty(),
        }
    }

    /// Creates a receiver holding a grant.
    pub fn with_grant(grant: KeyGrant) -> Receiver {
        Receiver { grant }
    }

    /// Adds more keys (e.g. received over the channel).
    pub fn add_grant(&mut self, grant: KeyGrant) {
        self.grant.merge(grant);
    }

    /// Downloads and recovers a photo: exact scenario-1 recovery when the
    /// PSP did not transform it, shadow/coefficient-domain recovery when
    /// it did. Regions without keys stay perturbed.
    ///
    /// # Errors
    /// Fails on unknown photos or undecodable data.
    pub fn fetch(&self, server: &PspServer, id: PhotoId) -> Result<RgbImage> {
        let bytes = server.download(id)?;
        let params = PublicParams::from_bytes(&server.download_params(id)?)?;
        Ok(puppies_core::shadow::recover_transformed(
            &bytes,
            &params,
            &self.grant,
        )?)
    }

    /// Downloads the raw (perturbed, possibly transformed) image as any
    /// unauthorized user would see it.
    ///
    /// # Errors
    /// Fails on unknown photos or undecodable data.
    pub fn fetch_public_view(&self, server: &PspServer, id: PhotoId) -> Result<RgbImage> {
        let bytes = server.download(id)?;
        Ok(puppies_jpeg::decode_rgb(&bytes).map_err(puppies_core::PuppiesError::from)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{PerturbProfile, Scheme};
    use puppies_image::metrics::psnr_rgb;
    use puppies_image::Rgb;
    use puppies_jpeg::CoeffImage;
    use puppies_transform::Transformation;

    fn photo() -> RgbImage {
        RgbImage::from_fn(96, 64, |x, y| {
            Rgb::new(
                (60 + (x * 2 + y) % 120) as u8,
                (70 + (x + y * 2) % 110) as u8,
                (80 + (x + y) % 100) as u8,
            )
        })
    }

    #[test]
    fn alice_bob_flow() {
        // Alice shares a photo with her face region protected; Bob holds
        // the key, Carol does not.
        let server = PspServer::new();
        let mut alice = Sender::new(OwnerKey::from_seed([1u8; 32]));
        let img = photo();
        let face = Rect::new(24, 16, 24, 32);
        let (photo_id, image_id) = alice
            .share(&server, &img, &[face], &ProtectOptions::default())
            .unwrap();

        let bob = Receiver::with_grant(alice.grant(image_id, &[0]));
        let carol = Receiver::new();

        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();
        let bob_view = bob.fetch(&server, photo_id).unwrap();
        let carol_view = carol.fetch(&server, photo_id).unwrap();

        assert_eq!(bob_view, reference, "Bob sees the original");
        assert_ne!(carol_view, reference, "Carol sees a perturbed face");
        // Outside the ROI Carol's view matches.
        let outside = Rect::new(64, 0, 32, 16);
        assert_eq!(
            carol_view.crop(outside).unwrap(),
            reference.crop(outside).unwrap()
        );
    }

    #[test]
    fn psp_transformation_still_recoverable() {
        let server = PspServer::new();
        let mut alice = Sender::new(OwnerKey::from_seed([2u8; 32]));
        let img = photo();
        let (photo_id, image_id) = alice
            .share(
                &server,
                &img,
                &[Rect::new(16, 16, 32, 32)],
                &ProtectOptions::default(),
            )
            .unwrap();
        server
            .transform(photo_id, &Transformation::Rotate90)
            .unwrap();

        let bob = Receiver::with_grant(alice.grant(image_id, &[0]));
        let view = bob.fetch(&server, photo_id).unwrap();
        let reference = Transformation::Rotate90
            .apply_to_coeff(&CoeffImage::from_rgb(&img, 75))
            .unwrap()
            .to_rgb();
        assert_eq!(view, reference, "rotation recovery must be exact");
    }

    #[test]
    fn psp_scaling_recoverable_with_transform_friendly_profile() {
        let server = PspServer::new();
        let mut alice = Sender::new(OwnerKey::from_seed([3u8; 32]));
        let img = photo();
        let opts = ProtectOptions::from_profile(PerturbProfile::transform_friendly());
        let (photo_id, image_id) = alice
            .share(&server, &img, &[Rect::new(16, 16, 32, 32)], &opts)
            .unwrap();
        server
            .transform(
                photo_id,
                &Transformation::Scale {
                    width: 48,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let bob = Receiver::with_grant(alice.grant(image_id, &[0]));
        let recovered = bob.fetch(&server, photo_id).unwrap();
        let nokey = Receiver::new().fetch(&server, photo_id).unwrap();
        let reference = Transformation::Scale {
            width: 48,
            height: 32,
            filter: puppies_transform::ScaleFilter::Bilinear,
        }
        .apply_to_rgb(&CoeffImage::from_rgb(&img, 75).to_rgb())
        .unwrap();
        let rec_psnr = psnr_rgb(&recovered, &reference);
        let nokey_psnr = psnr_rgb(&nokey, &reference);
        // The PSP re-encodes after scaling, so both views carry q75
        // requantization noise; the recovery margin is what matters.
        assert!(
            rec_psnr > nokey_psnr + 4.0,
            "recovered {rec_psnr} dB vs perturbed {nokey_psnr} dB"
        );
    }

    #[test]
    fn multi_roi_personalized_sharing() {
        // The Einstein/Chaplin story (Fig. 3): two regions, two receivers.
        let server = PspServer::new();
        let mut owner = Sender::new(OwnerKey::from_seed([4u8; 32]));
        let img = photo();
        let left = Rect::new(0, 16, 24, 24);
        let right = Rect::new(64, 16, 24, 24);
        let (photo_id, image_id) = owner
            .share(
                &server,
                &img,
                &[left, right],
                &ProtectOptions::new(Scheme::Zero, puppies_core::PrivacyLevel::Medium),
            )
            .unwrap();

        let einstein_friend = Receiver::with_grant(owner.grant(image_id, &[0]));
        let chaplin_friend = Receiver::with_grant(owner.grant(image_id, &[1]));
        let reference = CoeffImage::from_rgb(&img, 75).to_rgb();

        let ev = einstein_friend.fetch(&server, photo_id).unwrap();
        let cv = chaplin_friend.fetch(&server, photo_id).unwrap();
        let params = PublicParams::from_bytes(&server.download_params(photo_id).unwrap()).unwrap();
        let r0 = params.rois[0].rect;
        let r1 = params.rois[1].rect;
        assert_eq!(ev.crop(r0).unwrap(), reference.crop(r0).unwrap());
        assert_ne!(ev.crop(r1).unwrap(), reference.crop(r1).unwrap());
        assert_eq!(cv.crop(r1).unwrap(), reference.crop(r1).unwrap());
        assert_ne!(cv.crop(r0).unwrap(), reference.crop(r0).unwrap());
    }

    #[test]
    fn recommender_can_drive_sharing() {
        // End-to-end with automatically recommended ROIs on a face scene.
        use puppies_vision::face::{render_face, FaceGeometry};
        let server = PspServer::new();
        let mut alice = Sender::new(OwnerKey::from_seed([5u8; 32]));
        let mut img = RgbImage::filled(160, 120, Rgb::new(90, 110, 140));
        render_face(
            &mut img,
            Rect::new(40, 20, 48, 60),
            Rgb::new(225, 188, 152),
            &FaceGeometry::default(),
        );
        let rois = alice.recommend_rois(&img);
        assert!(!rois.is_empty(), "recommender found nothing");
        let (photo_id, _) = alice
            .share(&server, &img, &rois, &ProtectOptions::default())
            .unwrap();
        // The perturbed upload hides the face from the face detector: no
        // detection localizes the true face (IoU ≥ 0.5, the usual PASCAL
        // criterion). Random perturbation noise may still fire spurious
        // windows — the paper's own Caltech numbers (53/596) show the same.
        let public = Receiver::new()
            .fetch_public_view(&server, photo_id)
            .unwrap();
        let dets = puppies_vision::detect_faces(
            &public.to_gray(),
            &puppies_vision::FaceDetectorParams::default(),
        );
        let face_truth = Rect::new(40, 20, 48, 60);
        assert!(
            dets.iter().all(|d| d.rect.iou(face_truth) < 0.5),
            "face still localized after perturbation"
        );
        // On the original, the detector does localize it.
        let dets_orig = puppies_vision::detect_faces(
            &img.to_gray(),
            &puppies_vision::FaceDetectorParams::default(),
        );
        assert!(
            dets_orig.iter().any(|d| d.rect.iou(face_truth) >= 0.3),
            "sanity: face must be detectable pre-perturbation"
        );
    }
}
