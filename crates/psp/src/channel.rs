//! The private-matrix sharing channel (Fig. 5's "Private Matrix Sharing
//! Channel").
//!
//! The paper assumes "the key distribution and management process is
//! secure using standard crypto method" and cites Diffie–Hellman (the
//! paper's reference 32).
//! This module provides exactly that shape — a DH key agreement followed
//! by symmetric stream encryption — at *simulation grade*: the group is a
//! 61-bit Mersenne prime, fine for demonstrating the protocol flow and
//! utterly inadequate against a real adversary. Swap in an audited
//! library before any production use.

use crate::{PspError, Result};
use puppies_core::keys::MatrixKind;
use puppies_core::{KeyGrant, MatrixId, PrivateMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

/// The Mersenne prime 2⁶¹ − 1.
const P: u128 = (1u128 << 61) - 1;
/// A generator of a large subgroup mod `P`.
const G: u128 = 3;

fn mod_pow(mut base: u128, mut exp: u128, modulus: u128) -> u128 {
    let mut acc: u128 = 1;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % modulus;
        }
        base = base * base % modulus;
        exp >>= 1;
    }
    acc
}

/// One party's ephemeral key pair for Diffie–Hellman agreement.
#[derive(Debug)]
pub struct KeyAgreement {
    secret: u128,
    public: u128,
}

impl KeyAgreement {
    /// Draws an ephemeral key pair.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> KeyAgreement {
        let secret = rng.gen_range(2u64..(1 << 60)) as u128;
        KeyAgreement {
            secret,
            public: mod_pow(G, secret, P),
        }
    }

    /// The public value to send to the peer.
    pub fn public_value(&self) -> u128 {
        self.public
    }

    /// Completes the agreement with the peer's public value, producing a
    /// symmetric channel.
    pub fn agree(&self, peer_public: u128) -> SecureChannel {
        let shared = mod_pow(peer_public, self.secret, P);
        SecureChannel::from_shared_secret(shared)
    }
}

/// A symmetric stream-cipher channel derived from a DH shared secret.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    key: [u8; 32],
}

impl SecureChannel {
    fn from_shared_secret(shared: u128) -> SecureChannel {
        // Expand the 61-bit secret into a 256-bit key (SplitMix-style).
        let mut key = [0u8; 32];
        let mut z = shared as u64 ^ 0x9E37_79B9_7F4A_7C15;
        for chunk in key.chunks_mut(8) {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        SecureChannel { key }
    }

    /// Encrypts a payload (ChaCha keystream XOR, with a checksum for
    /// tamper/mismatch detection).
    pub fn encrypt(&self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plain.len() + 8);
        out.extend_from_slice(&checksum(plain).to_le_bytes());
        out.extend_from_slice(plain);
        let mut rng = ChaCha20Rng::from_seed(self.key);
        for b in &mut out {
            *b ^= rng.gen::<u8>();
        }
        out
    }

    /// Decrypts a payload.
    ///
    /// # Errors
    /// Fails if the checksum does not match (wrong key or corruption).
    pub fn decrypt(&self, cipher: &[u8]) -> Result<Vec<u8>> {
        if cipher.len() < 8 {
            return Err(PspError::Channel("ciphertext too short".into()));
        }
        let mut buf = cipher.to_vec();
        let mut rng = ChaCha20Rng::from_seed(self.key);
        for b in &mut buf {
            *b ^= rng.gen::<u8>();
        }
        let want = u64::from_le_bytes(buf[..8].try_into().expect("length checked"));
        let plain = buf[8..].to_vec();
        if checksum(&plain) != want {
            return Err(PspError::Channel("checksum mismatch".into()));
        }
        Ok(plain)
    }
}

fn checksum(data: &[u8]) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Serializes a grant's explicit matrices (11-bit entries packed as u16
/// for simplicity).
pub fn encode_grant(grant: &KeyGrant) -> Vec<u8> {
    let entries = grant.to_entries();
    let mut out = Vec::with_capacity(4 + entries.len() * (16 + 128));
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (id, m) in entries {
        out.extend_from_slice(&id.image.to_le_bytes());
        out.extend_from_slice(&id.roi.to_le_bytes());
        out.push(match id.kind {
            MatrixKind::Dc => 0,
            MatrixKind::Ac => 1,
        });
        out.push(id.component);
        for &e in m.entries() {
            out.extend_from_slice(&(e as u16).to_le_bytes());
        }
    }
    out
}

/// Parses [`encode_grant`]'s output.
///
/// # Errors
/// Fails on truncation or invalid fields.
pub fn decode_grant(data: &[u8]) -> Result<KeyGrant> {
    let fail = |m: &str| PspError::Channel(m.into());
    if data.len() < 4 {
        return Err(fail("grant payload too short"));
    }
    let n = u32::from_le_bytes(data[..4].try_into().expect("length checked")) as usize;
    let mut pos = 4;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        if pos + 12 + 128 > data.len() {
            return Err(fail("grant payload truncated"));
        }
        let image = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("len"));
        let roi = u16::from_le_bytes(data[pos + 8..pos + 10].try_into().expect("len"));
        let kind = match data[pos + 10] {
            0 => MatrixKind::Dc,
            1 => MatrixKind::Ac,
            other => return Err(fail(&format!("bad matrix kind {other}"))),
        };
        let component = data[pos + 11];
        pos += 12;
        let mut values = Vec::with_capacity(64);
        for i in 0..64 {
            let v = u16::from_le_bytes(data[pos + i * 2..pos + i * 2 + 2].try_into().expect("len"));
            if v >= 2048 {
                return Err(fail(&format!("matrix entry {v} out of range")));
            }
            values.push(v as i32);
        }
        pos += 128;
        entries.push((
            MatrixId {
                image,
                roi,
                kind,
                component,
            },
            PrivateMatrix::new(values),
        ));
    }
    Ok(KeyGrant::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::OwnerKey;
    use rand::rngs::StdRng;

    #[test]
    fn dh_agreement_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let alice = KeyAgreement::new(&mut rng);
        let bob = KeyAgreement::new(&mut rng);
        let ca = alice.agree(bob.public_value());
        let cb = bob.agree(alice.public_value());
        let msg = b"private matrix payload";
        let cipher = ca.encrypt(msg);
        assert_eq!(cb.decrypt(&cipher).unwrap(), msg);
    }

    #[test]
    fn wrong_key_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let alice = KeyAgreement::new(&mut rng);
        let bob = KeyAgreement::new(&mut rng);
        let eve = KeyAgreement::new(&mut rng);
        let ca = alice.agree(bob.public_value());
        let ce = eve.agree(alice.public_value());
        let cipher = ca.encrypt(b"secret");
        assert!(ce.decrypt(&cipher).is_err());
    }

    #[test]
    fn tampering_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = KeyAgreement::new(&mut rng);
        let b = KeyAgreement::new(&mut rng);
        let ch = a.agree(b.public_value());
        let mut cipher = ch.encrypt(b"data");
        let last = cipher.len() - 1;
        cipher[last] ^= 0x01;
        assert!(a.agree(b.public_value()).decrypt(&cipher).is_err());
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = KeyAgreement::new(&mut rng);
        let b = KeyAgreement::new(&mut rng);
        let ch = a.agree(b.public_value());
        let plain = vec![0u8; 64];
        let cipher = ch.encrypt(&plain);
        assert_ne!(&cipher[8..], &plain[..]);
    }

    #[test]
    fn grant_roundtrip() {
        let key = OwnerKey::from_seed([9u8; 32]);
        let grant = key.grant_rois(77, &[0, 2]);
        let encoded = encode_grant(&grant);
        let back = decode_grant(&encoded).unwrap();
        assert!(back.covers(77, 0));
        assert!(back.covers(77, 2));
        assert!(!back.covers(77, 1));
        assert_eq!(back.explicit_matrix_count(), grant.explicit_matrix_count());
        // Matrices agree entry-wise.
        for (id, m) in grant.to_entries() {
            assert_eq!(back.matrix(id).unwrap(), m);
        }
    }

    #[test]
    fn grant_transport_end_to_end() {
        let mut rng = StdRng::seed_from_u64(5);
        let alice = KeyAgreement::new(&mut rng);
        let bob = KeyAgreement::new(&mut rng);
        let key = OwnerKey::from_seed([1u8; 32]);
        let grant = key.grant_rois(1, &[0]);
        let received = crate::transport_grant(
            &alice.agree(bob.public_value()),
            &bob.agree(alice.public_value()),
            &grant,
        )
        .unwrap();
        assert!(received.covers(1, 0));
    }

    #[test]
    fn truncated_grant_rejected() {
        let key = OwnerKey::from_seed([9u8; 32]);
        let encoded = encode_grant(&key.grant_rois(1, &[0]));
        assert!(decode_grant(&encoded[..encoded.len() / 2]).is_err());
        assert!(decode_grant(&[]).is_err());
    }

    #[test]
    fn mod_pow_sanity() {
        assert_eq!(mod_pow(2, 10, 1_000_000), 1024);
        assert_eq!(mod_pow(G, 0, P), 1);
        // Fermat: g^(p-1) = 1 mod p for prime p.
        assert_eq!(mod_pow(G, P - 1, P), 1);
    }
}
