//! Write-ahead log for the persistent PSP store.
//!
//! Every state change the server acknowledges is appended here *before*
//! the acknowledgement goes out: a record is length-framed, checksummed,
//! and fsync'd, so an upload the client saw succeed is recoverable after
//! any crash — including `kill -9` mid-write.
//!
//! # Record framing
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────────┐
//! │ len: u32 LE│ crc: u64 LE │ payload (len bytes)  │
//! └────────────┴─────────────┴──────────────────────┘
//! ```
//!
//! `crc` is FNV-1a 64 over the payload. The payload starts with a one-byte
//! record tag; integers are little-endian throughout. Large blobs (photo
//! bitstreams, parameter blobs) do **not** live in the log — they are
//! content-addressed segment files written and fsync'd before the WAL
//! record that references them (see [`crate::store_disk`]); the log
//! carries only their SHA-256 content hashes. Grant-mailbox payloads are
//! small and inlined. (`crc` stays FNV: it detects torn frames from a
//! crash, an accident, not an adversary — the segment hashes are the
//! collision-resistant ones.)
//!
//! # Recovery invariants
//!
//! Replay ([`Wal::replay`]) reads records front to back and stops at the
//! first frame that is short, overlong, or fails its checksum — by the
//! append protocol that can only be a torn tail from a crash mid-write.
//! The torn suffix is truncated (so the next append extends a clean log)
//! and everything before it is returned in order. Because a record is
//! only written after its referenced segments are durable, every replayed
//! record's blobs are present on disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// FNV-1a 64 over a byte slice (frame checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Upper bound on one record's payload. The largest legitimate record is
/// a grant deposit (a few tens of KB of ciphertext); anything bigger in
/// the length field is torn/corrupt framing, not data.
pub const MAX_RECORD_LEN: usize = 1 << 22;

/// One durable state change. Photo payloads are referenced by content
/// hash (the segment file name); mailbox payloads are inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A photo was uploaded: `id` now maps to the blobs with these
    /// content hashes.
    Upload {
        /// Photo id the server assigned.
        id: u64,
        /// SHA-256 of the image bitstream segment.
        bytes_sha: [u8; 32],
        /// SHA-256 of the public-parameter segment.
        params_sha: [u8; 32],
    },
    /// A photo was transformed in place: `id` now maps to the new blobs.
    Transform {
        /// Photo id that was rewritten.
        id: u64,
        /// SHA-256 of the replacement bitstream segment.
        bytes_sha: [u8; 32],
        /// SHA-256 of the replacement parameter segment.
        params_sha: [u8; 32],
    },
    /// A receiver registered: `token` authenticates fetches of the
    /// mailbox addressed to `dh_public`.
    Receiver {
        /// The receiver's Diffie–Hellman public value.
        dh_public: u128,
        /// The bearer token the server issued (32 ASCII hex chars).
        token: [u8; 32],
    },
    /// A sender deposited an encrypted grant for a receiver.
    GrantDeposit {
        /// Mailbox address (the receiver's DH public value).
        receiver: u128,
        /// The sender's DH public value (the receiver needs it to agree).
        sender: u128,
        /// The end-to-end-encrypted grant — opaque to the PSP.
        ciphertext: Vec<u8>,
    },
    /// A receiver drained its mailbox (fetched-and-removed semantics).
    GrantDrain {
        /// Mailbox address that was emptied.
        receiver: u128,
    },
}

impl WalRecord {
    /// Serializes the payload (tag + fields, no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Upload {
                id,
                bytes_sha,
                params_sha,
            } => {
                out.push(0x01);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(bytes_sha);
                out.extend_from_slice(params_sha);
            }
            WalRecord::Transform {
                id,
                bytes_sha,
                params_sha,
            } => {
                out.push(0x02);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(bytes_sha);
                out.extend_from_slice(params_sha);
            }
            WalRecord::Receiver { dh_public, token } => {
                out.push(0x03);
                out.extend_from_slice(&dh_public.to_le_bytes());
                out.extend_from_slice(token);
            }
            WalRecord::GrantDeposit {
                receiver,
                sender,
                ciphertext,
            } => {
                out.push(0x04);
                out.extend_from_slice(&receiver.to_le_bytes());
                out.extend_from_slice(&sender.to_le_bytes());
                out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
                out.extend_from_slice(ciphertext);
            }
            WalRecord::GrantDrain { receiver } => {
                out.push(0x05);
                out.extend_from_slice(&receiver.to_le_bytes());
            }
        }
        out
    }

    /// Parses a payload produced by [`WalRecord::encode`]. Returns `None`
    /// on any structural mismatch (unknown tag, wrong length) — replay
    /// treats that exactly like a checksum failure.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let u64_at = |b: &[u8], at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
        };
        let u128_at = |b: &[u8], at: usize| -> Option<u128> {
            Some(u128::from_le_bytes(b.get(at..at + 16)?.try_into().ok()?))
        };
        match tag {
            0x01 | 0x02 => {
                if rest.len() != 72 {
                    return None;
                }
                let id = u64_at(rest, 0)?;
                let bytes_sha: [u8; 32] = rest[8..40].try_into().ok()?;
                let params_sha: [u8; 32] = rest[40..72].try_into().ok()?;
                Some(if tag == 0x01 {
                    WalRecord::Upload {
                        id,
                        bytes_sha,
                        params_sha,
                    }
                } else {
                    WalRecord::Transform {
                        id,
                        bytes_sha,
                        params_sha,
                    }
                })
            }
            0x03 => {
                if rest.len() != 48 {
                    return None;
                }
                let dh_public = u128_at(rest, 0)?;
                let token: [u8; 32] = rest[16..48].try_into().ok()?;
                Some(WalRecord::Receiver { dh_public, token })
            }
            0x04 => {
                if rest.len() < 36 {
                    return None;
                }
                let receiver = u128_at(rest, 0)?;
                let sender = u128_at(rest, 16)?;
                let len = u32::from_le_bytes(rest[32..36].try_into().ok()?) as usize;
                if rest.len() != 36 + len {
                    return None;
                }
                Some(WalRecord::GrantDeposit {
                    receiver,
                    sender,
                    ciphertext: rest[36..].to_vec(),
                })
            }
            0x05 => {
                if rest.len() != 16 {
                    return None;
                }
                Some(WalRecord::GrantDrain {
                    receiver: u128_at(rest, 0)?,
                })
            }
            _ => None,
        }
    }

    /// Frames the record for appending: `len ‖ crc ‖ payload`.
    pub fn to_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// What [`Wal::replay`] found.
#[derive(Debug)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail that were truncated away (0 on a clean
    /// shutdown).
    pub truncated_bytes: u64,
}

/// An append-only write-ahead log over one file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// `false` trades durability for speed (tests and in-process benches);
    /// the serve binary always runs with fsync on.
    fsync: bool,
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending. Call
    /// [`Wal::replay`] first — it truncates any torn tail, which keeps
    /// appends off a corrupt suffix.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(path: &Path, fsync: bool) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal { file, fsync })
    }

    /// Appends one record; returns once it is durable (written + fsync'd
    /// when fsync is on). The caller must hold whatever lock serializes
    /// appends — the frame is written with a single `write_all` so a crash
    /// can tear at most the final record.
    ///
    /// # Errors
    /// Propagates filesystem errors; the record must be considered *not*
    /// acknowledged if this fails.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.file.write_all(&record.to_frame())?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Forces any buffered state to disk (used at graceful shutdown even
    /// when per-append fsync is off).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Reads every intact record from `path`, truncating a torn tail in
    /// place. Missing file ⇒ empty replay.
    ///
    /// # Errors
    /// Propagates filesystem errors (not corruption — corruption is
    /// truncation, never an error).
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay {
                    records: Vec::new(),
                    truncated_bytes: 0,
                })
            }
            Err(e) => return Err(e),
        }
        let (records, good) = scan(&data);
        let truncated = data.len() as u64 - good;
        if truncated > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good)?;
            f.sync_data()?;
        }
        Ok(Replay {
            records,
            truncated_bytes: truncated,
        })
    }
}

/// Scans a raw log image, returning the intact records and the byte
/// offset where the clean prefix ends. Pure so the proptest suite can
/// drive it on arbitrary prefixes without touching the filesystem.
pub fn scan(data: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = data.get(pos..pos + 12) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("sliced")) as usize;
        let want_crc = u64::from_le_bytes(header[4..12].try_into().expect("sliced"));
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(payload) = data.get(pos + 12..pos + 12 + len) else {
            break;
        };
        if fnv64(payload) != want_crc {
            break;
        }
        let Some(record) = WalRecord::decode(payload) else {
            break;
        };
        records.push(record);
        pos += 12 + len;
    }
    (records, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Upload {
                id: 0,
                bytes_sha: [0xAD; 32],
                params_sha: [0xEF; 32],
            },
            WalRecord::Receiver {
                dh_public: 42,
                token: *b"0123456789abcdef0123456789abcdef",
            },
            WalRecord::GrantDeposit {
                receiver: 42,
                sender: 77,
                ciphertext: vec![9u8; 300],
            },
            WalRecord::Transform {
                id: 0,
                bytes_sha: [0xCA; 32],
                params_sha: [0x0D; 32],
            },
            WalRecord::GrantDrain { receiver: 42 },
        ]
    }

    #[test]
    fn record_roundtrip() {
        for r in sample_records() {
            assert_eq!(WalRecord::decode(&r.encode()).as_ref(), Some(&r));
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(WalRecord::decode(&[]).is_none());
        assert!(WalRecord::decode(&[0xFF, 1, 2]).is_none(), "unknown tag");
        let mut enc = sample_records()[0].encode();
        enc.pop();
        assert!(WalRecord::decode(&enc).is_none(), "short upload");
        let mut enc = sample_records()[2].encode();
        enc.push(0);
        assert!(WalRecord::decode(&enc).is_none(), "overlong deposit");
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let recs = sample_records();
        let mut image = Vec::new();
        for r in &recs {
            image.extend_from_slice(&r.to_frame());
        }
        let clean_len = image.len() as u64;
        // Clean image: all records, no truncation.
        let (got, good) = scan(&image);
        assert_eq!(got, recs);
        assert_eq!(good, clean_len);
        // Append half a frame: the tail is ignored, prefix intact.
        let extra = recs[0].to_frame();
        image.extend_from_slice(&extra[..extra.len() / 2]);
        let (got, good) = scan(&image);
        assert_eq!(got, recs);
        assert_eq!(good, clean_len);
    }

    #[test]
    fn scan_stops_at_corrupt_checksum() {
        let recs = sample_records();
        let mut image = Vec::new();
        for r in &recs {
            image.extend_from_slice(&r.to_frame());
        }
        // Flip one payload byte in the middle record.
        let second_start = recs[0].to_frame().len() + recs[1].to_frame().len();
        image[second_start + 12] ^= 0x40;
        let (got, good) = scan(&image);
        assert_eq!(got, recs[..2]);
        assert_eq!(good, second_start as u64);
    }

    #[test]
    fn scan_rejects_absurd_length_field() {
        let mut image = sample_records()[0].to_frame();
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0u8; 8]);
        let (got, good) = scan(&image);
        assert_eq!(got.len(), 1);
        assert_eq!(good, sample_records()[0].to_frame().len() as u64);
    }

    #[test]
    fn file_replay_truncates_torn_tail_in_place() {
        let dir = std::env::temp_dir().join(format!("puppies_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, false).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x11, 0x22, 0x33]).unwrap();
        }
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, sample_records());
        assert_eq!(replay.truncated_bytes, 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // A further append then replays cleanly.
        {
            let mut wal = Wal::open(&path, false).unwrap();
            wal.append(&WalRecord::GrantDrain { receiver: 1 }).unwrap();
        }
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), sample_records().len() + 1);
        assert_eq!(replay.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = std::env::temp_dir().join("puppies_wal_never_exists.wal");
        let _ = std::fs::remove_file(&path);
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.truncated_bytes, 0);
    }
}
