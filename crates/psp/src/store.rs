//! The photo-sharing platform: stores perturbed images and public
//! parameters, serves them to any user, and applies standard image
//! transformations on request — all via "general file store and retrieval
//! APIs" (§III-C.3), with zero PuPPIeS-specific logic.

use crate::{PspError, Result};
use parking_lot::RwLock;
use puppies_core::PublicParams;
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::Transformation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a stored photo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhotoId(pub u64);

#[derive(Debug, Clone)]
struct StoredPhoto {
    bytes: Vec<u8>,
    /// Opaque public-parameter blob (the PSP never parses it — it lives in
    /// the image "description").
    params: Vec<u8>,
}

/// The PSP server. Thread-safe: uploads, downloads and transformations can
/// run concurrently (the experiment sweeps exploit this).
#[derive(Debug, Default)]
pub struct PspServer {
    photos: RwLock<HashMap<PhotoId, StoredPhoto>>,
    next_id: AtomicU64,
}

impl PspServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uploads a photo with its public-parameter blob; returns its id.
    pub fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> PhotoId {
        let id = PhotoId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.photos
            .write()
            .insert(id, StoredPhoto { bytes, params });
        id
    }

    /// Downloads the image bytes (any user may call this — the threat
    /// model's "unauthorized access at PSP side" is exactly this door).
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download(&self, id: PhotoId) -> Result<Vec<u8>> {
        self.photos
            .read()
            .get(&id)
            .map(|p| p.bytes.clone())
            .ok_or(PspError::UnknownPhoto(id))
    }

    /// Downloads the public-parameter blob.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download_params(&self, id: PhotoId) -> Result<Vec<u8>> {
        self.photos
            .read()
            .get(&id)
            .map(|p| p.params.clone())
            .ok_or(PspError::UnknownPhoto(id))
    }

    /// Applies a transformation to a stored photo *in place*, recording it
    /// in the public parameters so receivers can mirror it (§III-C
    /// scenario 2). Uses the lossless coefficient path when possible and
    /// the ordinary decode–transform–re-encode pipeline otherwise, exactly
    /// like a jpegtran-aware production service.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, or invalid
    /// transformations.
    pub fn transform(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        let stored = self
            .photos
            .read()
            .get(&id)
            .cloned()
            .ok_or(PspError::UnknownPhoto(id))?;
        let coeff = CoeffImage::decode(&stored.bytes).map_err(puppies_core::PuppiesError::from)?;
        let new_bytes = if t.is_coeff_domain(coeff.width(), coeff.height()) {
            t.apply_to_coeff(&coeff)?
                .encode(&EncodeOptions::default())
                .map_err(puppies_core::PuppiesError::from)?
        } else {
            let rgb = coeff.to_rgb();
            let transformed = t.apply_to_rgb(&rgb)?;
            puppies_jpeg::encode_rgb(&transformed, 75).map_err(puppies_core::PuppiesError::from)?
        };
        // Record the transformation in the public parameters. The PSP
        // treats the blob as opaque except for this append-only note; in
        // our wire format that means re-encoding via PublicParams.
        let mut params = PublicParams::from_bytes(&stored.params)?;
        if params.transformation.is_some() {
            return Err(PspError::Transform(
                puppies_transform::TransformError::InvalidParameter(
                    "photo already transformed once; chain not supported".into(),
                ),
            ));
        }
        params.transformation = Some(t.clone());
        self.photos.write().insert(
            id,
            StoredPhoto {
                bytes: new_bytes,
                params: params.to_bytes(),
            },
        );
        Ok(())
    }

    /// Number of stored photos.
    pub fn len(&self) -> usize {
        self.photos.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.photos.read().is_empty()
    }

    /// Total bytes stored for a photo (image + parameter blob) — the
    /// cloud-storage usage the paper's overhead experiments track.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn storage_footprint(&self, id: PhotoId) -> Result<usize> {
        self.photos
            .read()
            .get(&id)
            .map(|p| p.bytes.len() + p.params.len())
            .ok_or(PspError::UnknownPhoto(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, ProtectOptions};
    use puppies_image::{Rect, Rgb, RgbImage};

    fn upload_test_photo(server: &PspServer) -> (PhotoId, OwnerKey) {
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 2, y as u8 * 2, 77));
        let key = OwnerKey::from_seed([4u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(16, 16, 24, 24)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let id = server.upload(protected.bytes, protected.params.to_bytes());
        (id, key)
    }

    #[test]
    fn upload_download_roundtrip() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let bytes = server.download(id).unwrap();
        assert!(CoeffImage::decode(&bytes).is_ok());
        assert!(server.download_params(id).is_ok());
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn unknown_photo_errors() {
        let server = PspServer::new();
        assert!(matches!(
            server.download(PhotoId(99)),
            Err(PspError::UnknownPhoto(PhotoId(99)))
        ));
    }

    #[test]
    fn transform_updates_bytes_and_params() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let before = server.download(id).unwrap();
        server.transform(id, &Transformation::Rotate180).unwrap();
        let after = server.download(id).unwrap();
        assert_ne!(before, after);
        let params = PublicParams::from_bytes(&server.download_params(id).unwrap()).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate180));
    }

    #[test]
    fn double_transform_rejected() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server.transform(id, &Transformation::Rotate90).unwrap();
        assert!(server.transform(id, &Transformation::Rotate90).is_err());
    }

    #[test]
    fn pixel_domain_transform_supported() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let bytes = server.download(id).unwrap();
        let coeff = CoeffImage::decode(&bytes).unwrap();
        assert_eq!((coeff.width(), coeff.height()), (32, 32));
    }

    #[test]
    fn concurrent_uploads_get_distinct_ids() {
        let server = PspServer::new();
        let pool = puppies_core::parallel::WorkerPool::new(4);
        let ids: std::collections::HashSet<_> = pool
            .map_indexed(8, |_| server.upload(vec![1, 2, 3], vec![]))
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 8);
        assert_eq!(server.len(), 8);
    }

    #[test]
    fn storage_footprint_counts_both_parts() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let fp = server.storage_footprint(id).unwrap();
        let img = server.download(id).unwrap().len();
        let params = server.download_params(id).unwrap().len();
        assert_eq!(fp, img + params);
    }
}
