//! The photo-sharing platform: stores perturbed images and public
//! parameters, serves them to any user, and applies standard image
//! transformations on request — all via "general file store and retrieval
//! APIs" (§III-C.3), with zero PuPPIeS-specific logic.
//!
//! # Serving fast path
//!
//! The store is built for the ROADMAP's "heavy traffic" PSP rather than a
//! single-threaded simulation:
//!
//! - **Sharding** — photos live in `N` power-of-two shards (keyed by the
//!   low bits of [`PhotoId`]), each behind its own `RwLock`, so concurrent
//!   requests for different photos never serialize on one map lock.
//! - **Zero-copy payloads** — stored bytes and params are `Arc<[u8]>`;
//!   [`PspServer::download`] clones a pointer under a brief read lock
//!   instead of memcpying the bitstream.
//! - **Transform-result cache** — finished transforms are cached
//!   content-addressed (a word-at-a-time hash over source bytes, chained
//!   over params + the canonical transformation encoding, see
//!   [`crate::cache`]), so repeat transform traffic never touches the
//!   codec.
//! - **Decode memo** — transform misses on the same hot photo share one
//!   entropy decode.
//! - **Batch APIs** — [`PspServer::download_batch`] /
//!   [`PspServer::transform_batch`] fan independent requests across the
//!   ambient [`puppies_core::parallel`] worker pool.

use crate::cache::{
    content_hash64, fnv64, fnv64_chain, CacheStats, DecodeMemo, ServedPair, TransformCache,
};
use crate::sig::{coeff_signature, SigEntry, SigIndex, SigMatch};
use crate::{PspError, Result};
use parking_lot::{Mutex, RwLock};
use puppies_core::PublicParams;
use puppies_image::Rect;
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::Transformation;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identifies a stored photo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhotoId(pub u64);

#[derive(Debug)]
struct StoredPhoto {
    bytes: Arc<[u8]>,
    /// Opaque public-parameter blob (the PSP never parses it — it lives in
    /// the image "description").
    params: Arc<[u8]>,
    /// `(content_hash64(bytes), chain(that, params))`, primed at upload
    /// from the single hashing pass the byte interner already pays — the
    /// bitstream is never hashed twice. The first component keys the
    /// decode memo (decode depends only on the bytes), the second is the
    /// photo's content address for transform-cache and signature-memo
    /// keys.
    hashes: OnceLock<(u64, u64)>,
    /// Perceptual identity: `Some((signature, family-root content key))`
    /// once the upload-time indexer has run and the bytes decoded; `None`
    /// inside when the bytes are not a decodable JPEG. Unset while the
    /// signature layer is disabled (see [`PspConfig::signature`]).
    identity: OnceLock<Option<(u64, u64)>>,
}

impl StoredPhoto {
    fn hashes(&self) -> (u64, u64) {
        *self.hashes.get_or_init(|| {
            let bytes_key = content_hash64(&self.bytes);
            (bytes_key, fnv64_chain(bytes_key, &self.params))
        })
    }

    fn size(&self) -> u64 {
        (self.bytes.len() + self.params.len()) as u64
    }
}

/// Whether a request could be served from the transform-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The operation does not consult the cache (upload/download doors).
    #[default]
    NotApplicable,
    /// Served from the transform-result cache.
    Hit,
    /// Fell through to the decode→transform→re-encode pipeline.
    Miss,
}

/// Which pipeline produced a transform response: the quantized-coefficient
/// hot path (no decode to pixels), the pixel-domain fallback (decode →
/// transform → re-encode), or the transform-result cache (no codec work at
/// all). The PSP's decode-free serving claim is measured from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServedPath {
    /// The operation does not serve transforms (upload/download doors).
    #[default]
    NotApplicable,
    /// Served by `apply_to_coeff` on the cached coefficient memo — the
    /// stream was transformed without ever materializing pixels.
    CoeffDomain,
    /// Genuinely pixel-domain geometry (e.g. scaling): decoded to RGB,
    /// transformed, re-encoded.
    PixelFallback,
    /// Served from the transform-result cache; no codec ran.
    Cached,
    /// Served from the transform-result cache via the *perceptual-identity*
    /// key: this photo is a recompressed near-duplicate of another stored
    /// photo whose result was already cached. No codec ran.
    SigCached,
}

impl ServedPath {
    /// Stable wire/log token for the path (`x-served-path` header values).
    pub fn as_str(self) -> &'static str {
        match self {
            ServedPath::NotApplicable => "none",
            ServedPath::CoeffDomain => "coeff-domain",
            ServedPath::PixelFallback => "pixel-fallback",
            ServedPath::Cached => "cached",
            ServedPath::SigCached => "sig-cached",
        }
    }
}

/// One entry of the server's bounded per-request log: which API door was
/// hit, for which photo, how many payload bytes moved, how long it took,
/// whether it succeeded, and whether the transform cache served it. Small
/// and `Copy` so snapshotting the log is a memcpy, not a clone-per-entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEntry {
    /// API name: `"upload"`, `"download"`, `"download_params"`,
    /// `"transform"`, `"download_transformed"`.
    pub op: &'static str,
    /// Photo id the request touched.
    pub id: u64,
    /// Payload bytes moved (image + params for uploads, response size for
    /// downloads and transforms; 0 on failure).
    pub bytes: u64,
    /// Wall-clock service time in nanoseconds.
    pub dur_ns: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Transform-cache outcome for this request.
    pub cache: CacheOutcome,
    /// Which pipeline served this request (transform doors only).
    pub served: ServedPath,
    /// Global admission order (monotonic across all shards) — entries from
    /// different log shards merge into one timeline by sorting on this.
    pub seq: u64,
}

/// Default cap on retained request-log entries (older ones are evicted
/// first — the log is a bounded ring, never a leak). Tunable per server
/// via [`PspConfig::request_log_capacity`].
pub const REQUEST_LOG_CAPACITY: usize = 256;

/// One store shard: a photo map plus the request-log segment for the
/// photos that hash here. Logging an op only contends with ops on the same
/// shard, never globally.
#[derive(Debug, Default)]
struct Shard {
    photos: RwLock<HashMap<PhotoId, Arc<StoredPhoto>>>,
    log: Mutex<VecDeque<RequestEntry>>,
}

/// One interner bucket: candidate allocations sharing a hash, each with
/// its reference count.
type InternBucket = Vec<(Arc<[u8]>, usize)>;

/// What the signature memo remembers per content address:
/// `Some((signature, width, height))` for decodable content, `None` for
/// content whose decode failed.
type SigMemoEntry = Option<(u64, u32, u32)>;

/// Refcounted exact-duplicate byte sharing for the in-memory store:
/// uploads with identical bytes share one `Arc<[u8]>` allocation (the
/// memory-side mirror of the disk store's SHA-addressed segments), and the
/// aggregate footprint counts each distinct allocation once. Buckets are
/// keyed by [`content_hash64`] and verified by byte comparison, so hash
/// collisions cost a compare, never a false share.
#[derive(Debug, Default)]
struct ByteInterner {
    table: Mutex<HashMap<u64, InternBucket>>,
}

impl ByteInterner {
    /// Returns the canonical shared `Arc` for `bytes`, whether this call
    /// added a fresh allocation (the caller accounts footprint only then),
    /// and the content hash it keyed the bucket by — the caller reuses it
    /// so each uploaded bitstream is hashed exactly once.
    fn intern(&self, bytes: Arc<[u8]>) -> (Arc<[u8]>, bool, u64) {
        let key = content_hash64(&bytes);
        let mut table = self.table.lock();
        let bucket = table.entry(key).or_default();
        for (existing, refs) in bucket.iter_mut() {
            if **existing == *bytes {
                *refs += 1;
                return (existing.clone(), false, key);
            }
        }
        bucket.push((bytes.clone(), 1));
        (bytes, true, key)
    }

    /// Drops one reference to `bytes` (bucketed under `key`, the hash
    /// `intern` returned for them); returns whether the allocation left
    /// the interner (the caller subtracts footprint only then).
    fn release(&self, key: u64, bytes: &Arc<[u8]>) -> bool {
        let mut table = self.table.lock();
        if let Some(bucket) = table.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|(e, _)| Arc::ptr_eq(e, bytes)) {
                bucket[pos].1 -= 1;
                if bucket[pos].1 > 0 {
                    return false;
                }
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    table.remove(&key);
                }
            }
        }
        true
    }
}

/// Construction-time tuning for [`PspServer`].
#[derive(Debug, Clone)]
pub struct PspConfig {
    /// Number of store shards; rounded up to a power of two, minimum 1.
    pub shards: usize,
    /// Byte budget for the transform-result cache; 0 disables caching.
    pub cache_budget_bytes: usize,
    /// Max decoded images retained by the transform-miss memo; 0 disables.
    pub decode_memo_entries: usize,
    /// Request-log ring capacity per server (clamped to ≥1); defaults to
    /// [`REQUEST_LOG_CAPACITY`].
    pub request_log_capacity: usize,
    /// Whether the perceptual-identity layer runs: upload-time signature
    /// extraction, near-duplicate indexing, decode-memo pre-warming and
    /// the second-level (signature-family) transform-cache key. On by
    /// default; benches disable it to measure the exact-key-only baseline.
    pub signature: bool,
}

impl Default for PspConfig {
    fn default() -> Self {
        PspConfig {
            shards: 16,
            cache_budget_bytes: 32 << 20,
            decode_memo_entries: 8,
            request_log_capacity: REQUEST_LOG_CAPACITY,
            signature: true,
        }
    }
}

impl PspConfig {
    /// A configuration with the transform cache and decode memo disabled —
    /// every transform runs the full pipeline (used by coherence tests and
    /// as the honest "cold" baseline in benches).
    pub fn uncached() -> Self {
        PspConfig {
            cache_budget_bytes: 0,
            decode_memo_entries: 0,
            ..PspConfig::default()
        }
    }
}

/// The PSP server. Thread-safe: uploads, downloads and transformations can
/// run concurrently (the experiment sweeps exploit this).
#[derive(Debug)]
pub struct PspServer {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: u64,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    /// Total stored bytes (image + params across all photos), maintained
    /// incrementally so reading it never walks the maps.
    footprint: AtomicU64,
    /// Stored photo count, maintained incrementally for O(1) `len()`.
    photo_count: AtomicU64,
    cache: TransformCache,
    memo: DecodeMemo,
    /// Request-log ring capacity ([`PspConfig::request_log_capacity`]).
    log_capacity: usize,
    /// Whether the perceptual-identity layer is on
    /// ([`PspConfig::signature`]).
    signature: bool,
    /// The near-duplicate signature index (see [`crate::sig`]).
    index: Mutex<SigIndex>,
    /// Content-addressed signature memo: `content_fnv → Some((sig, w, h))`
    /// for contents whose upload-time decode succeeded, `None` for
    /// contents that failed to decode. Re-uploads of bytes the server has
    /// already seen (the dominant duplicate workload) skip the JPEG decode
    /// entirely — the signature is a pure function of `(bytes, params)`,
    /// which is exactly what `content_fnv` addresses.
    sig_memo: Mutex<HashMap<u64, SigMemoEntry>>,
    /// Exact-duplicate byte sharing across stored photos.
    interner: ByteInterner,
}

impl Default for PspServer {
    fn default() -> Self {
        Self::new()
    }
}

impl PspServer {
    /// Creates an empty server with the default configuration.
    pub fn new() -> Self {
        Self::with_config(PspConfig::default())
    }

    /// Creates an empty server with explicit shard/cache tuning.
    pub fn with_config(config: PspConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let shards = (0..n).map(|_| Shard::default()).collect::<Vec<_>>();
        PspServer {
            shards: shards.into_boxed_slice(),
            shard_mask: (n - 1) as u64,
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            footprint: AtomicU64::new(0),
            photo_count: AtomicU64::new(0),
            cache: TransformCache::new(config.cache_budget_bytes),
            memo: DecodeMemo::new(config.decode_memo_entries),
            log_capacity: config.request_log_capacity.max(1),
            signature: config.signature,
            index: Mutex::new(SigIndex::new()),
            sig_memo: Mutex::new(HashMap::new()),
            interner: ByteInterner::default(),
        }
    }

    /// The request-log ring capacity this server was built with.
    pub fn request_log_capacity(&self) -> usize {
        self.log_capacity
    }

    fn shard(&self, id: PhotoId) -> &Shard {
        &self.shards[(id.0 & self.shard_mask) as usize]
    }

    fn lookup(&self, id: PhotoId) -> Result<Arc<StoredPhoto>> {
        self.shard(id)
            .photos
            .read()
            .get(&id)
            .cloned()
            .ok_or(PspError::UnknownPhoto(id))
    }

    #[allow(clippy::too_many_arguments)]
    fn log_request(
        &self,
        op: &'static str,
        id: u64,
        bytes: u64,
        start: Instant,
        ok: bool,
        cache: CacheOutcome,
        served: ServedPath,
    ) {
        let entry = RequestEntry {
            op,
            id,
            bytes,
            dur_ns: start.elapsed().as_nanos() as u64,
            ok,
            cache,
            served,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        let mut log = self.shard(PhotoId(id)).log.lock();
        if log.len() == self.log_capacity {
            log.pop_front();
        }
        log.push_back(entry);
    }

    /// Publishes the current aggregate storage footprint and photo count as
    /// gauges, when a subscriber is installed.
    fn publish_gauges(&self) {
        if puppies_obs::enabled() {
            puppies_obs::gauge_set(
                "psp.storage_bytes",
                self.footprint.load(Ordering::Relaxed) as i64,
            );
            puppies_obs::gauge_set("psp.photos", self.len() as i64);
            if self.signature {
                puppies_obs::gauge_set("psp.sig.index_entries", self.index.lock().len() as i64);
            }
        }
    }

    /// Runs the upload-time perceptual-identity pass for a freshly stored
    /// photo: decode, signature extraction over public data, family
    /// resolution against the near-duplicate index, decode-memo pre-warm
    /// for flagged near-duplicates, and index insertion. Records the
    /// photo's `(signature, family root)` on its `identity` slot. A blob
    /// that does not decode simply stays unindexed — the store accepts
    /// arbitrary bytes and the identity layer is best-effort by design.
    fn index_photo(&self, id: PhotoId, stored: &StoredPhoto) {
        if !self.signature {
            return;
        }
        // The signature is a pure function of `(bytes, params)` —
        // precisely what `content_fnv` addresses — so a re-upload of
        // content the server has already hashed never pays the JPEG
        // decode again. Re-uploading identical bytes is the dominant
        // duplicate workload and must stay as cheap as storing them.
        let (bytes_fnv, content_fnv) = stored.hashes();
        let memoized = self.sig_memo.lock().get(&content_fnv).copied();
        let (sig, w, h, coeff) = match memoized {
            Some(None) => {
                // Known-undecodable content: stays unindexed, no retry.
                let _ = stored.identity.set(None);
                return;
            }
            Some(Some((sig, w, h))) => {
                puppies_obs::counted!("psp.sig.memo_hit");
                (sig, w, h, None)
            }
            None => {
                let coeff = match CoeffImage::decode(&stored.bytes) {
                    Ok(c) => c,
                    Err(_) => {
                        self.sig_memo.lock().insert(content_fnv, None);
                        let _ = stored.identity.set(None);
                        return;
                    }
                };
                let rois: Vec<Rect> = PublicParams::from_bytes(&stored.params)
                    .map(|p| p.rois.iter().map(|r| r.rect).collect())
                    .unwrap_or_default();
                let sig = coeff_signature(&coeff, &rois);
                puppies_obs::counted!("psp.sig.computed");
                let (w, h) = (coeff.width(), coeff.height());
                self.sig_memo.lock().insert(content_fnv, Some((sig, w, h)));
                (sig, w, h, Some(coeff))
            }
        };
        let params_fnv = fnv64(&stored.params);
        let family = {
            let mut index = self.index.lock();
            let family = index.family_of(sig, params_fnv, w, h);
            let family_fnv = match &family {
                Some(root) => root.family_fnv,
                None => content_fnv,
            };
            index.insert(SigEntry {
                sig,
                id,
                content_fnv,
                family_fnv,
                params_fnv,
                width: w,
                height: h,
            });
            let _ = stored.identity.set(Some((sig, family_fnv)));
            family
        };
        if let Some(root) = family {
            if root.content_fnv == content_fnv {
                puppies_obs::counted!("psp.sig.dedup_exact");
            } else {
                puppies_obs::counted!("psp.sig.neardup");
                // A recompressed copy of a known photo is about to draw the
                // same transform traffic its family does: pre-warm the
                // decode memo with the decode we already paid for, so a
                // cold family (nothing cached yet) skips the entropy
                // decode on this copy's first transform miss. (A re-upload
                // served from the signature memo has no fresh decode to
                // donate — and its first copy already pre-warmed.)
                if let Some(coeff) = coeff {
                    self.memo.insert(bytes_fnv, Arc::new(coeff));
                    puppies_obs::counted!("psp.sig.prewarm");
                }
            }
        }
    }

    /// Removes a replaced photo's index entry and byte allocation; called
    /// with the `StoredPhoto` that just left the map.
    fn retire_photo(&self, id: PhotoId, old: &StoredPhoto) {
        if let Some(Some((sig, _))) = old.identity.get() {
            self.index.lock().remove(*sig, id);
        }
        let (bytes_key, content_key) = old.hashes();
        if self.interner.release(bytes_key, &old.bytes) {
            self.footprint
                .fetch_sub(old.bytes.len() as u64, Ordering::Relaxed);
            // Last copy of these bytes is gone — drop the signature memo
            // entry with it so churn workloads don't accumulate hashes of
            // content the store no longer holds.
            if self.signature {
                self.sig_memo.lock().remove(&content_key);
            }
        }
        self.footprint
            .fetch_sub(old.params.len() as u64, Ordering::Relaxed);
    }

    /// Uploads a photo with its public-parameter blob; returns its id.
    ///
    /// # Errors
    /// Returns [`PspError::IdsExhausted`] once the 64-bit id space is spent
    /// — the allocator saturates instead of wrapping, so a stored photo can
    /// never be silently overwritten by a recycled id.
    pub fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> Result<PhotoId> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.upload", "psp");
        let mut cur = self.next_id.load(Ordering::Relaxed);
        let id = loop {
            if cur == u64::MAX {
                self.log_request(
                    "upload",
                    u64::MAX,
                    0,
                    start,
                    false,
                    CacheOutcome::NotApplicable,
                    ServedPath::NotApplicable,
                );
                return Err(PspError::IdsExhausted);
            }
            match self.next_id.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break PhotoId(cur),
                Err(seen) => cur = seen,
            }
        };
        // Exact-duplicate sharing: identical bytes resolve to one shared
        // allocation and the aggregate footprint counts it once (the
        // per-photo logical size is unchanged).
        let (shared, fresh, bytes_key) = self.interner.intern(bytes.into());
        let stored = Arc::new(StoredPhoto {
            bytes: shared,
            params: params.into(),
            hashes: OnceLock::new(),
            identity: OnceLock::new(),
        });
        // Prime the content address from the pass the interner already
        // paid — nothing downstream (decode memo, transform cache,
        // signature memo) ever re-hashes the bitstream.
        let _ = stored
            .hashes
            .set((bytes_key, fnv64_chain(bytes_key, &stored.params)));
        let size = stored.size();
        let accounted =
            stored.params.len() as u64 + if fresh { stored.bytes.len() as u64 } else { 0 };
        self.shard(id).photos.write().insert(id, stored.clone());
        self.footprint.fetch_add(accounted, Ordering::Relaxed);
        self.photo_count.fetch_add(1, Ordering::Relaxed);
        self.index_photo(id, &stored);
        puppies_obs::counted!("psp.uploads");
        self.publish_gauges();
        self.log_request(
            "upload",
            id.0,
            size,
            start,
            true,
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        Ok(id)
    }

    /// Reinstates a photo at an explicit id — the persistence layer's
    /// replay door ([`crate::store_disk`] drives it when rebuilding from
    /// the WAL). Overwrites any existing entry (a `Transform` WAL record
    /// replays as an overwrite of the `Upload` before it) and advances the
    /// id allocator past `id`, so post-recovery uploads never collide with
    /// restored photos. Not an API door: it bypasses the request log.
    pub fn restore_photo(&self, id: PhotoId, bytes: Vec<u8>, params: Vec<u8>) {
        let (shared, fresh, bytes_key) = self.interner.intern(bytes.into());
        let stored = Arc::new(StoredPhoto {
            bytes: shared,
            params: params.into(),
            hashes: OnceLock::new(),
            identity: OnceLock::new(),
        });
        let _ = stored
            .hashes
            .set((bytes_key, fnv64_chain(bytes_key, &stored.params)));
        let accounted =
            stored.params.len() as u64 + if fresh { stored.bytes.len() as u64 } else { 0 };
        let replaced = self.shard(id).photos.write().insert(id, stored.clone());
        self.footprint.fetch_add(accounted, Ordering::Relaxed);
        match replaced {
            Some(old) => {
                self.retire_photo(id, &old);
                if let Some(&(bytes_fnv, _)) = old.hashes.get() {
                    self.memo.invalidate(bytes_fnv);
                }
            }
            None => {
                self.photo_count.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.index_photo(id, &stored);
        // Advance the allocator monotonically past the restored id; ids at
        // u64::MAX leave the allocator saturated (exhausted), never wrapped.
        let next = id.0.saturating_add(1);
        let mut cur = self.next_id.load(Ordering::Relaxed);
        while cur < next {
            match self.next_id.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Downloads the image bytes (any user may call this — the threat
    /// model's "unauthorized access at PSP side" is exactly this door).
    /// Zero-copy: the returned `Arc` shares the stored allocation.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download(&self, id: PhotoId) -> Result<Arc<[u8]>> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.download", "psp");
        let out = self.lookup(id).map(|p| p.bytes.clone());
        puppies_obs::counted!("psp.downloads");
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request(
            "download",
            id.0,
            bytes,
            start,
            out.is_ok(),
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        out
    }

    /// Downloads the public-parameter blob. Zero-copy, like
    /// [`PspServer::download`].
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download_params(&self, id: PhotoId) -> Result<Arc<[u8]>> {
        let start = Instant::now();
        let out = self.lookup(id).map(|p| p.params.clone());
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request(
            "download_params",
            id.0,
            bytes,
            start,
            out.is_ok(),
            CacheOutcome::NotApplicable,
            ServedPath::NotApplicable,
        );
        out
    }

    /// Runs (or serves from cache) `t` against the stored photo, returning
    /// `(transformed bytes, updated params)` **without** modifying the
    /// store — the serving door for "give me the thumbnail of photo X",
    /// which is where repeat traffic concentrates. The returned params blob
    /// records the transformation exactly as the in-place
    /// [`PspServer::transform`] would store it.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, invalid
    /// transformations, or photos that were already transformed in place
    /// (chains are not supported).
    pub fn download_transformed(&self, id: PhotoId, t: &Transformation) -> Result<ServedPair> {
        self.download_transformed_traced(id, t)
            .map(|(pair, _, _)| pair)
    }

    /// [`PspServer::download_transformed`], but also reports whether the
    /// result came from the transform cache and which pipeline produced it
    /// — the serving layer surfaces both on the wire (`x-cache: hit|miss`,
    /// `x-served-path: coeff-domain|pixel-fallback|cached`) so load
    /// generators can verify cache behaviour and the decode-free claim end
    /// to end.
    ///
    /// # Errors
    /// As [`PspServer::download_transformed`].
    pub fn download_transformed_traced(
        &self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(ServedPair, CacheOutcome, ServedPath)> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.download_transformed", "psp");
        let out = self
            .lookup(id)
            .and_then(|stored| self.serve_transform(&stored, t));
        puppies_obs::counted!("psp.transform_serves");
        let (bytes, outcome, served) = match &out {
            Ok(((b, p), outcome, served)) => ((b.len() + p.len()) as u64, *outcome, *served),
            Err(_) => (0, CacheOutcome::NotApplicable, ServedPath::NotApplicable),
        };
        self.log_request(
            "download_transformed",
            id.0,
            bytes,
            start,
            out.is_ok(),
            outcome,
            served,
        );
        out
    }

    /// Applies a transformation to a stored photo *in place*, recording it
    /// in the public parameters so receivers can mirror it (§III-C
    /// scenario 2). Uses the lossless coefficient path when possible and
    /// the ordinary decode–transform–re-encode pipeline otherwise, exactly
    /// like a jpegtran-aware production service. The result lands in the
    /// transform cache, so a subsequent identical request on an identical
    /// source is served without touching the codec.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, or invalid
    /// transformations.
    pub fn transform(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.transform", "psp");
        let out = self.transform_inner(id, t);
        puppies_obs::counted!("psp.transforms");
        self.publish_gauges();
        let (bytes, outcome, served) = match &out {
            Ok((b, outcome, served)) => (*b, *outcome, *served),
            Err(_) => (0, CacheOutcome::NotApplicable, ServedPath::NotApplicable),
        };
        self.log_request(
            "transform",
            id.0,
            bytes,
            start,
            out.is_ok(),
            outcome,
            served,
        );
        out.map(|_| ())
    }

    fn transform_inner(
        &self,
        id: PhotoId,
        t: &Transformation,
    ) -> Result<(u64, CacheOutcome, ServedPath)> {
        let stored = self.lookup(id)?;
        let ((new_bytes, new_params), outcome, served) = self.serve_transform(&stored, t)?;
        let (shared, fresh, bytes_key) = self.interner.intern(new_bytes);
        let replacement = Arc::new(StoredPhoto {
            bytes: shared,
            params: new_params,
            hashes: OnceLock::new(),
            identity: OnceLock::new(),
        });
        let _ = replacement
            .hashes
            .set((bytes_key, fnv64_chain(bytes_key, &replacement.params)));
        let new_size = replacement.size();
        let accounted = replacement.params.len() as u64
            + if fresh {
                replacement.bytes.len() as u64
            } else {
                0
            };
        {
            let mut photos = self.shard(id).photos.write();
            match photos.get(&id) {
                // The entry we computed from is still current: swap it.
                Some(cur) if Arc::ptr_eq(cur, &stored) => {
                    photos.insert(id, replacement.clone());
                }
                // Someone else transformed (or re-uploaded) this photo
                // between our read and this write. Applying our result
                // would silently drop theirs, so refuse like any other
                // chain attempt.
                Some(_) => {
                    drop(photos);
                    self.interner.release(bytes_key, &replacement.bytes);
                    return Err(PspError::Transform(
                        puppies_transform::TransformError::InvalidParameter(
                            "photo changed concurrently; transform chain not supported".into(),
                        ),
                    ));
                }
                None => {
                    drop(photos);
                    self.interner.release(bytes_key, &replacement.bytes);
                    return Err(PspError::UnknownPhoto(id));
                }
            }
        }
        // The old bitstream is gone from the store: drop its decode memo
        // entry eagerly instead of waiting for LRU pressure. (Transform
        // *results* keyed by the old content hash stay addressable — they
        // are still byte-correct answers for that content — and simply age
        // out.)
        if let Some(&(bytes_fnv, _)) = stored.hashes.get() {
            self.memo.invalidate(bytes_fnv);
        }
        // Two wrapping steps net out to `footprint + new - old`; the total
        // stays exact even though the two updates are not one atomic op.
        self.footprint.fetch_add(accounted, Ordering::Relaxed);
        self.retire_photo(id, &stored);
        self.index_photo(id, &replacement);
        Ok((new_size, outcome, served))
    }

    /// The shared serving path: transform-cache lookup, then on a miss the
    /// decode(memo)→apply→re-encode pipeline plus cache fill. Never locks a
    /// shard; works entirely from the snapshot `Arc`s.
    fn serve_transform(
        &self,
        stored: &StoredPhoto,
        t: &Transformation,
    ) -> Result<(ServedPair, CacheOutcome, ServedPath)> {
        let (bytes_fnv, content_fnv) = stored.hashes();
        let t_canonical = t.canonical_bytes();
        let key = fnv64_chain(content_fnv, &t_canonical);
        // Second-level key: a recompressed near-duplicate shares its family
        // root's cached results. Results are only ever *inserted* under a
        // photo's own exact key, so the family probe can only surface bytes
        // the root itself produced — the root always serves its own bytes.
        let family_key = match stored.identity.get() {
            Some(Some((_, family_fnv))) if *family_fnv != content_fnv => {
                Some(fnv64_chain(*family_fnv, &t_canonical))
            }
            _ => None,
        };
        match self.cache.get_two_level(key, family_key) {
            Some(((bytes, params), true)) => {
                puppies_obs::counted!("psp.sig.hit");
                return Ok(((bytes, params), CacheOutcome::Hit, ServedPath::SigCached));
            }
            Some(((bytes, params), false)) => {
                return Ok(((bytes, params), CacheOutcome::Hit, ServedPath::Cached));
            }
            None => {
                if family_key.is_some() {
                    puppies_obs::counted!("psp.sig.miss");
                }
            }
        }
        // Record the transformation in the public parameters. The PSP
        // treats the blob as opaque except for this append-only note; in
        // our wire format that means re-encoding via PublicParams.
        let mut params = PublicParams::from_bytes(&stored.params)?;
        if params.transformation.is_some() {
            return Err(PspError::Transform(
                puppies_transform::TransformError::InvalidParameter(
                    "photo already transformed once; chain not supported".into(),
                ),
            ));
        }
        let coeff = match self.memo.get(bytes_fnv) {
            Some(c) => c,
            None => {
                let decoded = Arc::new(
                    CoeffImage::decode(&stored.bytes).map_err(puppies_core::PuppiesError::from)?,
                );
                self.memo.insert(bytes_fnv, decoded.clone());
                decoded
            }
        };
        // Every coefficient-eligible transformation is served from the
        // quantized coefficients — never by decoding to pixels. The pixel
        // pipeline survives only for genuinely pixel-domain geometry.
        let (new_bytes, served) = if t.is_coeff_domain(coeff.width(), coeff.height()) {
            puppies_obs::counted!("psp.serve.coeff_domain");
            let bytes = t
                .apply_to_coeff(&coeff)?
                .encode(&EncodeOptions::default())
                .map_err(puppies_core::PuppiesError::from)?;
            (bytes, ServedPath::CoeffDomain)
        } else {
            puppies_obs::counted!("psp.serve.pixel_fallback");
            let rgb = coeff.to_rgb();
            let transformed = t.apply_to_rgb(&rgb)?;
            // Re-encode at the source's own compression setting (recovered
            // from its quantization tables) — the paper's PSP re-encodes at
            // a *consistent* quality, not a hardcoded default, which keeps
            // receiver-side PSNR floors calibrated.
            let bytes = puppies_jpeg::encode_rgb(&transformed, coeff.quality_estimate())
                .map_err(puppies_core::PuppiesError::from)?;
            (bytes, ServedPath::PixelFallback)
        };
        params.transformation = Some(t.clone());
        let new_bytes: Arc<[u8]> = new_bytes.into();
        let new_params: Arc<[u8]> = params.to_bytes().into();
        self.cache
            .insert(key, new_bytes.clone(), new_params.clone());
        Ok(((new_bytes, new_params), CacheOutcome::Miss, served))
    }

    /// Serves many `(photo, transformation)` requests, fanning across the
    /// ambient worker pool ([`puppies_core::parallel::current`]). Results
    /// come back in request order; each is exactly what
    /// [`PspServer::download_transformed`] would return. The store is not
    /// modified.
    pub fn transform_batch(
        &self,
        requests: &[(PhotoId, Transformation)],
    ) -> Vec<Result<ServedPair>> {
        let _span = puppies_obs::span("psp.transform_batch", "psp");
        puppies_core::parallel::current().map_indexed(requests.len(), |i| {
            let (id, ref t) = requests[i];
            self.download_transformed(id, t)
        })
    }

    /// Downloads many photos, fanning across the ambient worker pool.
    /// Results come back in request order.
    pub fn download_batch(&self, ids: &[PhotoId]) -> Vec<Result<Arc<[u8]>>> {
        let _span = puppies_obs::span("psp.download_batch", "psp");
        puppies_core::parallel::current().map_indexed(ids.len(), |i| self.download(ids[i]))
    }

    /// Number of stored photos (O(1) — maintained incrementally).
    pub fn len(&self) -> usize {
        self.photo_count.load(Ordering::Relaxed) as usize
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes stored for a photo (image + parameter blob) — the
    /// cloud-storage usage the paper's overhead experiments track.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn storage_footprint(&self, id: PhotoId) -> Result<usize> {
        self.lookup(id).map(|p| p.size() as usize)
    }

    /// Aggregate bytes stored across every photo (images + parameter
    /// blobs). Maintained incrementally on upload/transform, so this is an
    /// O(1) read — it backs the `psp.storage_bytes` gauge.
    pub fn storage_footprint_total(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// Transform-result cache counters (hits, misses, evictions, resident
    /// bytes).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The perceptual signature recorded for a stored photo, or `None`
    /// when its bytes did not decode (or the signature layer is off).
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn signature_of(&self, id: PhotoId) -> Result<Option<u64>> {
        self.lookup(id)
            .map(|p| p.identity.get().copied().flatten().map(|(sig, _)| sig))
    }

    /// Computes the perceptual signature of an arbitrary candidate image
    /// the way the store would at upload: decode, then hash the public
    /// data only (private ROIs from `params`, when given, are masked out).
    /// Returns `None` for undecodable bytes. This is the probe side of
    /// [`PspServer::search_similar`] — a client hashes its query image
    /// locally or ships the bytes to the `/search` door.
    pub fn probe_signature(bytes: &[u8], params: Option<&[u8]>) -> Option<u64> {
        let coeff = CoeffImage::decode(bytes).ok()?;
        let rois: Vec<Rect> = params
            .and_then(|p| PublicParams::from_bytes(p).ok())
            .map(|p| p.rois.iter().map(|r| r.rect).collect())
            .unwrap_or_default();
        Some(coeff_signature(&coeff, &rois))
    }

    /// Sublinear near-duplicate search: every stored photo whose signature
    /// sits within `max_dist` of `sig`, nearest first, truncated to
    /// `limit`. Probes the four-band multi-index — per query it scans the
    /// union of four buckets (expected `4·n/65536` candidates), never the
    /// whole store.
    pub fn search_similar(&self, sig: u64, max_dist: u32, limit: usize) -> Vec<(PhotoId, u32)> {
        puppies_obs::counted!("psp.sig.search");
        let matches: Vec<SigMatch> = self.index.lock().lookup(sig, max_dist);
        matches
            .into_iter()
            .take(limit)
            .map(|m| (m.entry.id, m.distance))
            .collect()
    }

    /// Live entries in the near-duplicate signature index.
    pub fn sig_index_len(&self) -> usize {
        self.index.lock().len()
    }

    /// Total candidate entries scanned by index lookups so far — the
    /// observable `bench psp --dup` uses to demonstrate sublinear search.
    pub fn sig_index_scanned(&self) -> u64 {
        self.index.lock().scanned()
    }

    /// The most recent requests served (oldest first), up to the
    /// configured [`PspConfig::request_log_capacity`]. Entries are `Copy`,
    /// the snapshot Vec is preallocated, and each shard's log lock is held
    /// only for the memcpy out — a diagnostic read never stalls the
    /// serving path.
    pub fn recent_requests(&self) -> Vec<RequestEntry> {
        let mut out: Vec<RequestEntry> = Vec::with_capacity(self.shards.len() * self.log_capacity);
        for shard in self.shards.iter() {
            let log = shard.log.lock();
            out.extend(log.iter().copied());
        }
        // Merge shard segments into one timeline. Any globally-recent entry
        // survives per-shard eviction (an entry is only evicted once
        // `log_capacity` newer entries hit the *same* shard), so the newest
        // `log_capacity` overall are always present.
        out.sort_unstable_by_key(|e| e.seq);
        if out.len() > self.log_capacity {
            out.drain(..out.len() - self.log_capacity);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, ProtectOptions};
    use puppies_image::{Rect, Rgb, RgbImage};

    fn upload_test_photo(server: &PspServer) -> (PhotoId, OwnerKey) {
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 2, y as u8 * 2, 77));
        let key = OwnerKey::from_seed([4u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(16, 16, 24, 24)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let id = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        (id, key)
    }

    #[test]
    fn upload_download_roundtrip() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let bytes = server.download(id).unwrap();
        assert!(CoeffImage::decode(&bytes).is_ok());
        assert!(server.download_params(id).is_ok());
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn download_is_zero_copy() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let a = server.download(id).unwrap();
        let b = server.download(id).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "downloads share the stored allocation");
    }

    #[test]
    fn unknown_photo_errors() {
        let server = PspServer::new();
        assert!(matches!(
            server.download(PhotoId(99)),
            Err(PspError::UnknownPhoto(PhotoId(99)))
        ));
    }

    #[test]
    fn transform_updates_bytes_and_params() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let before = server.download(id).unwrap();
        server.transform(id, &Transformation::Rotate180).unwrap();
        let after = server.download(id).unwrap();
        assert_ne!(before, after);
        let params = PublicParams::from_bytes(&server.download_params(id).unwrap()).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate180));
    }

    #[test]
    fn double_transform_rejected() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server.transform(id, &Transformation::Rotate90).unwrap();
        assert!(server.transform(id, &Transformation::Rotate90).is_err());
    }

    #[test]
    fn pixel_domain_transform_supported() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let bytes = server.download(id).unwrap();
        let coeff = CoeffImage::decode(&bytes).unwrap();
        assert_eq!((coeff.width(), coeff.height()), (32, 32));
    }

    #[test]
    fn pixel_fallback_reencodes_at_source_quality() {
        // Protect at a non-default quality: the pixel-domain fallback must
        // re-encode at that quality (recovered from the DQT), not at a
        // hardcoded 75.
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 3, y as u8, 130));
        let key = OwnerKey::from_seed([9u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(8, 8, 16, 16)],
            &key,
            &ProtectOptions::default().with_quality(60),
        )
        .unwrap();
        let server = PspServer::new();
        let id = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let coeff = CoeffImage::decode(&server.download(id).unwrap()).unwrap();
        assert_eq!(coeff.quality_estimate(), 60);
    }

    #[test]
    fn download_transformed_serves_without_mutating() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let original = server.download(id).unwrap();
        let (tb, tp) = server
            .download_transformed(id, &Transformation::Rotate90)
            .unwrap();
        // Store untouched.
        assert!(Arc::ptr_eq(&original, &server.download(id).unwrap()));
        let params = PublicParams::from_bytes(&tp).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate90));
        // The served result equals what an in-place transform would store.
        let server2 = PspServer::new();
        let (id2, _) = upload_test_photo(&server2);
        server2.transform(id2, &Transformation::Rotate90).unwrap();
        assert_eq!(tb, server2.download(id2).unwrap());
        assert_eq!(tp, server2.download_params(id2).unwrap());
    }

    #[test]
    fn repeat_download_transformed_hits_cache() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let t = Transformation::Rotate180;
        let first = server.download_transformed(id, &t).unwrap();
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let second = server.download_transformed(id, &t).unwrap();
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(
            Arc::ptr_eq(&first.0, &second.0),
            "hit shares the cached Arc"
        );
        assert_eq!(first.1, second.1);
    }

    #[test]
    fn cache_content_addressing_spans_identical_photos() {
        // Two uploads with identical bytes+params are the same content:
        // the second photo's first transform is already a cache hit.
        let server = PspServer::new();
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8, y as u8, 5));
        let key = OwnerKey::from_seed([7u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(0, 0, 16, 16)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let a = server
            .upload(protected.bytes.clone(), protected.params.to_bytes())
            .unwrap();
        let b = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        let t = Transformation::FlipHorizontal;
        let ra = server.download_transformed(a, &t).unwrap();
        let rb = server.download_transformed(b, &t).unwrap();
        assert_eq!(ra.0, rb.0);
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cache_disabled_still_serves_correct_bytes() {
        let cached = PspServer::new();
        let uncached = PspServer::with_config(PspConfig::uncached());
        let (id_c, _) = upload_test_photo(&cached);
        let (id_u, _) = upload_test_photo(&uncached);
        let t = Transformation::Rotate270;
        let rc = cached.download_transformed(id_c, &t).unwrap();
        let ru = uncached.download_transformed(id_u, &t).unwrap();
        assert_eq!(rc.0, ru.0);
        assert_eq!(rc.1, ru.1);
        assert_eq!(uncached.cache_stats().hits, 0);
    }

    #[test]
    fn batch_apis_match_serial_results() {
        let server = PspServer::new();
        let (id1, _) = upload_test_photo(&server);
        let (id2, _) = upload_test_photo(&server);
        let requests = vec![
            (id1, Transformation::Rotate90),
            (id2, Transformation::FlipVertical),
            (PhotoId(999), Transformation::Rotate90),
            (id1, Transformation::Rotate90),
        ];
        let batch = server.transform_batch(&requests);
        assert_eq!(batch.len(), 4);
        assert!(batch[2].is_err());
        let serial = server
            .download_transformed(id1, &Transformation::Rotate90)
            .unwrap();
        assert_eq!(batch[0].as_ref().unwrap().0, serial.0);
        assert_eq!(
            batch[3].as_ref().unwrap().0,
            batch[0].as_ref().unwrap().0,
            "duplicate request in one batch serves identical bytes"
        );
        let downloads = server.download_batch(&[id1, PhotoId(999), id2]);
        assert_eq!(
            downloads[0].as_ref().unwrap(),
            &server.download(id1).unwrap()
        );
        assert!(downloads[1].is_err());
        assert_eq!(
            downloads[2].as_ref().unwrap(),
            &server.download(id2).unwrap()
        );
    }

    #[test]
    fn concurrent_uploads_get_distinct_ids() {
        let server = PspServer::new();
        let pool = puppies_core::parallel::WorkerPool::new(4);
        let ids: std::collections::HashSet<_> = pool
            .map_indexed(8, |_| server.upload(vec![1, 2, 3], vec![]).unwrap())
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 8);
        assert_eq!(server.len(), 8);
    }

    #[test]
    fn storage_footprint_counts_both_parts() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let fp = server.storage_footprint(id).unwrap();
        let img = server.download(id).unwrap().len();
        let params = server.download_params(id).unwrap().len();
        assert_eq!(fp, img + params);
    }

    #[test]
    fn footprint_total_tracks_uploads_and_transforms() {
        let server = PspServer::new();
        assert_eq!(server.storage_footprint_total(), 0);
        let (id, _) = upload_test_photo(&server);
        let id2 = server.upload(vec![0u8; 10], vec![0u8; 5]).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
        server.transform(id, &Transformation::Rotate180).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
    }

    #[test]
    fn upload_saturates_instead_of_wrapping_ids() {
        let server = PspServer::new();
        server.next_id.store(u64::MAX - 1, Ordering::Relaxed);
        let id = server.upload(vec![1], vec![]).unwrap();
        assert_eq!(id, PhotoId(u64::MAX - 1));
        // The id space is now spent: further uploads must fail rather than
        // recycle an id, and the failure must not clobber the stored photo.
        assert!(matches!(
            server.upload(vec![2], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert!(matches!(
            server.upload(vec![3], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert_eq!(server.download(id).unwrap().as_ref(), &[1u8][..]);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn restore_photo_replays_uploads_and_overwrites() {
        let server = PspServer::new();
        server.restore_photo(PhotoId(3), vec![1, 2, 3], vec![9]);
        server.restore_photo(PhotoId(7), vec![4, 5], vec![]);
        assert_eq!(server.len(), 2);
        assert_eq!(server.download(PhotoId(3)).unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(server.storage_footprint_total(), 4 + 2);
        // A Transform replay overwrites in place without changing counts.
        server.restore_photo(PhotoId(3), vec![6; 10], vec![7; 2]);
        assert_eq!(server.len(), 2);
        assert_eq!(server.download(PhotoId(3)).unwrap().as_ref(), &[6u8; 10]);
        assert_eq!(server.storage_footprint_total(), 12 + 2);
        // The allocator resumes past the highest restored id.
        let id = server.upload(vec![0], vec![]).unwrap();
        assert_eq!(id, PhotoId(8));
    }

    #[test]
    fn request_log_is_structured_and_bounded() {
        let server = PspServer::new();
        let id = server.upload(vec![7u8; 12], vec![0u8; 3]).unwrap();
        server.download(id).unwrap();
        let _ = server.download(PhotoId(999));
        let log = server.recent_requests();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].op, log[0].bytes, log[0].ok), ("upload", 15, true));
        assert_eq!((log[1].op, log[1].bytes, log[1].ok), ("download", 12, true));
        assert_eq!((log[2].op, log[2].id, log[2].ok), ("download", 999, false));
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // Bounded: hammer one door past capacity and check eviction.
        for _ in 0..(REQUEST_LOG_CAPACITY + 10) {
            server.download(id).unwrap();
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), REQUEST_LOG_CAPACITY);
        assert!(log.iter().all(|e| e.op == "download"));
    }

    #[test]
    fn request_log_capacity_is_configurable() {
        let server = PspServer::with_config(PspConfig {
            request_log_capacity: 8,
            ..PspConfig::default()
        });
        assert_eq!(server.request_log_capacity(), 8);
        let id = server.upload(vec![1u8; 4], vec![]).unwrap();
        for _ in 0..40 {
            server.download(id).unwrap();
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), 8);
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // A zero request stays usable (clamped to 1).
        let min = PspServer::with_config(PspConfig {
            request_log_capacity: 0,
            ..PspConfig::default()
        });
        assert_eq!(min.request_log_capacity(), 1);
    }

    #[test]
    fn request_log_records_cache_outcome() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let t = Transformation::Rotate90;
        server.download_transformed(id, &t).unwrap();
        server.download_transformed(id, &t).unwrap();
        let log = server.recent_requests();
        let served: Vec<_> = log
            .iter()
            .filter(|e| e.op == "download_transformed")
            .collect();
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].cache, CacheOutcome::Miss);
        assert_eq!(served[1].cache, CacheOutcome::Hit);
        assert!(log
            .iter()
            .filter(|e| e.op == "upload" || e.op == "download")
            .all(|e| e.cache == CacheOutcome::NotApplicable));
    }

    /// Re-encodes a stored JPEG at `quality` — the "recompressed copy"
    /// that circulates between platforms: different bytes, same picture.
    fn recompress(bytes: &[u8], quality: u8) -> Vec<u8> {
        let mut coeff = CoeffImage::decode(bytes).unwrap();
        coeff.requantize(quality);
        coeff.encode(&EncodeOptions::default()).unwrap()
    }

    fn protected_fixture(seed: u8) -> (Vec<u8>, Vec<u8>) {
        let img = RgbImage::from_fn(96, 72, |x, y| {
            Rgb::new(
                seed.wrapping_add((x * 5 + y * 3) as u8),
                ((x + 2 * y) % 240) as u8,
                seed ^ (y as u8).wrapping_mul(7),
            )
        });
        let key = OwnerKey::from_seed([seed.max(1); 32]);
        let protected = protect(
            &img,
            &[Rect::new(24, 16, 32, 32)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        (protected.bytes, protected.params.to_bytes())
    }

    #[test]
    fn recompressed_duplicate_serves_from_family_cache() {
        let server = PspServer::new();
        let (bytes, params) = protected_fixture(3);
        let a = server.upload(bytes.clone(), params.clone()).unwrap();
        let b = server
            .upload(recompress(&bytes, 55), params.clone())
            .unwrap();
        assert_eq!(server.sig_index_len(), 2);
        let t = Transformation::Rotate180;
        // Warm the family root, then the duplicate's *first* serve is
        // already a hit — via the signature family key — and returns the
        // root's exact cached bytes.
        let (pair_a, oa, sa) = server.download_transformed_traced(a, &t).unwrap();
        assert_eq!((oa, sa), (CacheOutcome::Miss, ServedPath::CoeffDomain));
        let (pair_b, ob, sb) = server.download_transformed_traced(b, &t).unwrap();
        assert_eq!((ob, sb), (CacheOutcome::Hit, ServedPath::SigCached));
        assert!(Arc::ptr_eq(&pair_a.0, &pair_b.0), "family shares the Arc");
        assert_eq!(pair_a.1, pair_b.1);
        // The root itself keeps serving its own entry under the exact key.
        let (_, oa2, sa2) = server.download_transformed_traced(a, &t).unwrap();
        assert_eq!((oa2, sa2), (CacheOutcome::Hit, ServedPath::Cached));
    }

    #[test]
    fn signature_off_restores_exact_key_only_behaviour() {
        let server = PspServer::with_config(PspConfig {
            signature: false,
            ..PspConfig::default()
        });
        let (bytes, params) = protected_fixture(3);
        let a = server.upload(bytes.clone(), params.clone()).unwrap();
        let b = server
            .upload(recompress(&bytes, 55), params.clone())
            .unwrap();
        assert_eq!(server.sig_index_len(), 0);
        assert_eq!(server.signature_of(a).unwrap(), None);
        let t = Transformation::Rotate180;
        let (_, oa, _) = server.download_transformed_traced(a, &t).unwrap();
        let (_, ob, _) = server.download_transformed_traced(b, &t).unwrap();
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ob, CacheOutcome::Miss, "no signature layer, no sharing");
    }

    #[test]
    fn exact_duplicate_uploads_share_bytes_and_account_once() {
        let server = PspServer::new();
        let (bytes, params) = protected_fixture(9);
        let a = server.upload(bytes.clone(), params.clone()).unwrap();
        let b = server.upload(bytes.clone(), params.clone()).unwrap();
        let da = server.download(a).unwrap();
        let db = server.download(b).unwrap();
        assert!(
            Arc::ptr_eq(&da, &db),
            "exact duplicates share one allocation"
        );
        // Bytes counted once, params per photo; per-photo logical size is
        // unchanged.
        assert_eq!(
            server.storage_footprint_total(),
            (bytes.len() + 2 * params.len()) as u64
        );
        assert_eq!(
            server.storage_footprint(b).unwrap(),
            bytes.len() + params.len()
        );
    }

    #[test]
    fn search_similar_finds_the_family_and_skips_strangers() {
        let server = PspServer::new();
        let (bytes, params) = protected_fixture(3);
        let (other_bytes, other_params) = protected_fixture(200);
        let a = server.upload(bytes.clone(), params.clone()).unwrap();
        let b = server
            .upload(recompress(&bytes, 45), params.clone())
            .unwrap();
        let c = server.upload(other_bytes, other_params).unwrap();
        let probe = PspServer::probe_signature(&bytes, Some(&params)).unwrap();
        let hits = server.search_similar(probe, crate::sig::NEAR_DUP_DISTANCE, 10);
        let ids: Vec<PhotoId> = hits.iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
        assert!(!ids.contains(&c));
        assert_eq!(hits[0], (a, 0), "the exact photo ranks first");
        // Undecodable probes are rejected, not hashed.
        assert_eq!(PspServer::probe_signature(&[1, 2, 3], None), None);
    }

    #[test]
    fn in_place_transform_reindexes_the_photo() {
        let server = PspServer::new();
        let (bytes, params) = protected_fixture(5);
        let id = server.upload(bytes, params).unwrap();
        let before = server.signature_of(id).unwrap().unwrap();
        assert_eq!(server.sig_index_len(), 1);
        server.transform(id, &Transformation::Rotate90).unwrap();
        assert_eq!(server.sig_index_len(), 1, "old entry replaced, not leaked");
        let after = server.signature_of(id).unwrap().unwrap();
        assert_ne!(before, after, "rotation is a different picture");
        assert!(server.search_similar(before, 0, 10).is_empty());
    }

    #[test]
    fn request_log_merges_across_shards_in_order() {
        // Photos land on different shards; the merged log is still one
        // seq-ordered timeline with the newest entries retained.
        let server = PspServer::new();
        let ids: Vec<_> = (0..20)
            .map(|i| server.upload(vec![i as u8; 8], vec![]).unwrap())
            .collect();
        for round in 0..30 {
            for &id in &ids {
                let _ = server.download(id);
                let _ = round;
            }
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), REQUEST_LOG_CAPACITY);
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        // All retained entries are from the tail of the request stream.
        let total_requests = 20 + 30 * 20;
        assert!(log[0].seq >= total_requests - REQUEST_LOG_CAPACITY as u64);
    }
}
