//! The photo-sharing platform: stores perturbed images and public
//! parameters, serves them to any user, and applies standard image
//! transformations on request — all via "general file store and retrieval
//! APIs" (§III-C.3), with zero PuPPIeS-specific logic.

use crate::{PspError, Result};
use parking_lot::RwLock;
use puppies_core::PublicParams;
use puppies_jpeg::{CoeffImage, EncodeOptions};
use puppies_transform::Transformation;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Identifies a stored photo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhotoId(pub u64);

#[derive(Debug, Clone)]
struct StoredPhoto {
    bytes: Vec<u8>,
    /// Opaque public-parameter blob (the PSP never parses it — it lives in
    /// the image "description").
    params: Vec<u8>,
}

/// One entry of the server's bounded per-request log: which API door was
/// hit, for which photo, how many payload bytes moved, how long it took,
/// and whether it succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEntry {
    /// API name: `"upload"`, `"download"`, `"download_params"`, `"transform"`.
    pub op: &'static str,
    /// Photo id the request touched.
    pub id: u64,
    /// Payload bytes moved (image + params for uploads, response size for
    /// downloads, re-encoded size for transforms; 0 on failure).
    pub bytes: u64,
    /// Wall-clock service time in nanoseconds.
    pub dur_ns: u64,
    /// Whether the request succeeded.
    pub ok: bool,
}

/// How many request-log entries the server retains (older ones are evicted
/// first — the log is a bounded ring, never a leak).
pub const REQUEST_LOG_CAPACITY: usize = 256;

/// The PSP server. Thread-safe: uploads, downloads and transformations can
/// run concurrently (the experiment sweeps exploit this).
#[derive(Debug, Default)]
pub struct PspServer {
    photos: RwLock<HashMap<PhotoId, StoredPhoto>>,
    next_id: AtomicU64,
    /// Total stored bytes (image + params across all photos), maintained
    /// incrementally so reading it never walks the map.
    footprint: AtomicU64,
    requests: RwLock<VecDeque<RequestEntry>>,
}

impl PspServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_request(&self, op: &'static str, id: u64, bytes: u64, start: Instant, ok: bool) {
        let entry = RequestEntry {
            op,
            id,
            bytes,
            dur_ns: start.elapsed().as_nanos() as u64,
            ok,
        };
        let mut log = self.requests.write();
        if log.len() == REQUEST_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back(entry);
    }

    /// Publishes the current aggregate storage footprint and photo count as
    /// gauges, when a subscriber is installed.
    fn publish_gauges(&self) {
        if puppies_obs::enabled() {
            puppies_obs::gauge_set(
                "psp.storage_bytes",
                self.footprint.load(Ordering::Relaxed) as i64,
            );
            puppies_obs::gauge_set("psp.photos", self.len() as i64);
        }
    }

    /// Uploads a photo with its public-parameter blob; returns its id.
    ///
    /// # Errors
    /// Returns [`PspError::IdsExhausted`] once the 64-bit id space is spent
    /// — the allocator saturates instead of wrapping, so a stored photo can
    /// never be silently overwritten by a recycled id.
    pub fn upload(&self, bytes: Vec<u8>, params: Vec<u8>) -> Result<PhotoId> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.upload", "psp");
        let mut cur = self.next_id.load(Ordering::Relaxed);
        let id = loop {
            if cur == u64::MAX {
                self.log_request("upload", u64::MAX, 0, start, false);
                return Err(PspError::IdsExhausted);
            }
            match self.next_id.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break PhotoId(cur),
                Err(seen) => cur = seen,
            }
        };
        let size = (bytes.len() + params.len()) as u64;
        self.photos
            .write()
            .insert(id, StoredPhoto { bytes, params });
        self.footprint.fetch_add(size, Ordering::Relaxed);
        puppies_obs::counted!("psp.uploads");
        self.publish_gauges();
        self.log_request("upload", id.0, size, start, true);
        Ok(id)
    }

    /// Downloads the image bytes (any user may call this — the threat
    /// model's "unauthorized access at PSP side" is exactly this door).
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download(&self, id: PhotoId) -> Result<Vec<u8>> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.download", "psp");
        let out = self
            .photos
            .read()
            .get(&id)
            .map(|p| p.bytes.clone())
            .ok_or(PspError::UnknownPhoto(id));
        puppies_obs::counted!("psp.downloads");
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request("download", id.0, bytes, start, out.is_ok());
        out
    }

    /// Downloads the public-parameter blob.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn download_params(&self, id: PhotoId) -> Result<Vec<u8>> {
        let start = Instant::now();
        let out = self
            .photos
            .read()
            .get(&id)
            .map(|p| p.params.clone())
            .ok_or(PspError::UnknownPhoto(id));
        let bytes = out.as_ref().map(|b| b.len() as u64).unwrap_or(0);
        self.log_request("download_params", id.0, bytes, start, out.is_ok());
        out
    }

    /// Applies a transformation to a stored photo *in place*, recording it
    /// in the public parameters so receivers can mirror it (§III-C
    /// scenario 2). Uses the lossless coefficient path when possible and
    /// the ordinary decode–transform–re-encode pipeline otherwise, exactly
    /// like a jpegtran-aware production service.
    ///
    /// # Errors
    /// Fails for unknown photos, undecodable streams, or invalid
    /// transformations.
    pub fn transform(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        let start = Instant::now();
        let _span = puppies_obs::span("psp.transform", "psp");
        let out = self.transform_inner(id, t);
        puppies_obs::counted!("psp.transforms");
        self.publish_gauges();
        self.log_request("transform", id.0, 0, start, out.is_ok());
        out
    }

    fn transform_inner(&self, id: PhotoId, t: &Transformation) -> Result<()> {
        let stored = self
            .photos
            .read()
            .get(&id)
            .cloned()
            .ok_or(PspError::UnknownPhoto(id))?;
        let coeff = CoeffImage::decode(&stored.bytes).map_err(puppies_core::PuppiesError::from)?;
        let new_bytes = if t.is_coeff_domain(coeff.width(), coeff.height()) {
            t.apply_to_coeff(&coeff)?
                .encode(&EncodeOptions::default())
                .map_err(puppies_core::PuppiesError::from)?
        } else {
            let rgb = coeff.to_rgb();
            let transformed = t.apply_to_rgb(&rgb)?;
            puppies_jpeg::encode_rgb(&transformed, 75).map_err(puppies_core::PuppiesError::from)?
        };
        // Record the transformation in the public parameters. The PSP
        // treats the blob as opaque except for this append-only note; in
        // our wire format that means re-encoding via PublicParams.
        let mut params = PublicParams::from_bytes(&stored.params)?;
        if params.transformation.is_some() {
            return Err(PspError::Transform(
                puppies_transform::TransformError::InvalidParameter(
                    "photo already transformed once; chain not supported".into(),
                ),
            ));
        }
        params.transformation = Some(t.clone());
        let old_size = (stored.bytes.len() + stored.params.len()) as u64;
        let replacement = StoredPhoto {
            bytes: new_bytes,
            params: params.to_bytes(),
        };
        let new_size = (replacement.bytes.len() + replacement.params.len()) as u64;
        self.photos.write().insert(id, replacement);
        // Two wrapping steps net out to `footprint + new - old`; the total
        // stays exact even though the two updates are not one atomic op.
        self.footprint.fetch_add(new_size, Ordering::Relaxed);
        self.footprint.fetch_sub(old_size, Ordering::Relaxed);
        Ok(())
    }

    /// Number of stored photos.
    pub fn len(&self) -> usize {
        self.photos.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.photos.read().is_empty()
    }

    /// Total bytes stored for a photo (image + parameter blob) — the
    /// cloud-storage usage the paper's overhead experiments track.
    ///
    /// # Errors
    /// Fails for unknown photos.
    pub fn storage_footprint(&self, id: PhotoId) -> Result<usize> {
        self.photos
            .read()
            .get(&id)
            .map(|p| p.bytes.len() + p.params.len())
            .ok_or(PspError::UnknownPhoto(id))
    }

    /// Aggregate bytes stored across every photo (images + parameter
    /// blobs). Maintained incrementally on upload/transform, so this is an
    /// O(1) read — it backs the `psp.storage_bytes` gauge.
    pub fn storage_footprint_total(&self) -> u64 {
        self.footprint.load(Ordering::Relaxed)
    }

    /// The most recent requests served (oldest first), up to
    /// [`REQUEST_LOG_CAPACITY`].
    pub fn recent_requests(&self) -> Vec<RequestEntry> {
        self.requests.read().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puppies_core::{protect, OwnerKey, ProtectOptions};
    use puppies_image::{Rect, Rgb, RgbImage};

    fn upload_test_photo(server: &PspServer) -> (PhotoId, OwnerKey) {
        let img = RgbImage::from_fn(64, 64, |x, y| Rgb::new(x as u8 * 2, y as u8 * 2, 77));
        let key = OwnerKey::from_seed([4u8; 32]);
        let protected = protect(
            &img,
            &[Rect::new(16, 16, 24, 24)],
            &key,
            &ProtectOptions::default(),
        )
        .unwrap();
        let id = server
            .upload(protected.bytes, protected.params.to_bytes())
            .unwrap();
        (id, key)
    }

    #[test]
    fn upload_download_roundtrip() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let bytes = server.download(id).unwrap();
        assert!(CoeffImage::decode(&bytes).is_ok());
        assert!(server.download_params(id).is_ok());
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn unknown_photo_errors() {
        let server = PspServer::new();
        assert!(matches!(
            server.download(PhotoId(99)),
            Err(PspError::UnknownPhoto(PhotoId(99)))
        ));
    }

    #[test]
    fn transform_updates_bytes_and_params() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let before = server.download(id).unwrap();
        server.transform(id, &Transformation::Rotate180).unwrap();
        let after = server.download(id).unwrap();
        assert_ne!(before, after);
        let params = PublicParams::from_bytes(&server.download_params(id).unwrap()).unwrap();
        assert_eq!(params.transformation, Some(Transformation::Rotate180));
    }

    #[test]
    fn double_transform_rejected() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server.transform(id, &Transformation::Rotate90).unwrap();
        assert!(server.transform(id, &Transformation::Rotate90).is_err());
    }

    #[test]
    fn pixel_domain_transform_supported() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        server
            .transform(
                id,
                &Transformation::Scale {
                    width: 32,
                    height: 32,
                    filter: puppies_transform::ScaleFilter::Bilinear,
                },
            )
            .unwrap();
        let bytes = server.download(id).unwrap();
        let coeff = CoeffImage::decode(&bytes).unwrap();
        assert_eq!((coeff.width(), coeff.height()), (32, 32));
    }

    #[test]
    fn concurrent_uploads_get_distinct_ids() {
        let server = PspServer::new();
        let pool = puppies_core::parallel::WorkerPool::new(4);
        let ids: std::collections::HashSet<_> = pool
            .map_indexed(8, |_| server.upload(vec![1, 2, 3], vec![]).unwrap())
            .into_iter()
            .collect();
        assert_eq!(ids.len(), 8);
        assert_eq!(server.len(), 8);
    }

    #[test]
    fn storage_footprint_counts_both_parts() {
        let server = PspServer::new();
        let (id, _) = upload_test_photo(&server);
        let fp = server.storage_footprint(id).unwrap();
        let img = server.download(id).unwrap().len();
        let params = server.download_params(id).unwrap().len();
        assert_eq!(fp, img + params);
    }

    #[test]
    fn footprint_total_tracks_uploads_and_transforms() {
        let server = PspServer::new();
        assert_eq!(server.storage_footprint_total(), 0);
        let (id, _) = upload_test_photo(&server);
        let id2 = server.upload(vec![0u8; 10], vec![0u8; 5]).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
        server.transform(id, &Transformation::Rotate180).unwrap();
        let expect = server.storage_footprint(id).unwrap() as u64
            + server.storage_footprint(id2).unwrap() as u64;
        assert_eq!(server.storage_footprint_total(), expect);
    }

    #[test]
    fn upload_saturates_instead_of_wrapping_ids() {
        let server = PspServer::new();
        server.next_id.store(u64::MAX - 1, Ordering::Relaxed);
        let id = server.upload(vec![1], vec![]).unwrap();
        assert_eq!(id, PhotoId(u64::MAX - 1));
        // The id space is now spent: further uploads must fail rather than
        // recycle an id, and the failure must not clobber the stored photo.
        assert!(matches!(
            server.upload(vec![2], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert!(matches!(
            server.upload(vec![3], vec![]),
            Err(PspError::IdsExhausted)
        ));
        assert_eq!(server.download(id).unwrap(), vec![1]);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn request_log_is_structured_and_bounded() {
        let server = PspServer::new();
        let id = server.upload(vec![7u8; 12], vec![0u8; 3]).unwrap();
        server.download(id).unwrap();
        let _ = server.download(PhotoId(999));
        let log = server.recent_requests();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].op, log[0].bytes, log[0].ok), ("upload", 15, true));
        assert_eq!((log[1].op, log[1].bytes, log[1].ok), ("download", 12, true));
        assert_eq!((log[2].op, log[2].id, log[2].ok), ("download", 999, false));
        // Bounded: hammer one door past capacity and check eviction.
        for _ in 0..(REQUEST_LOG_CAPACITY + 10) {
            server.download(id).unwrap();
        }
        let log = server.recent_requests();
        assert_eq!(log.len(), REQUEST_LOG_CAPACITY);
        assert!(log.iter().all(|e| e.op == "download"));
    }
}
